"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure.
Each benchmark prints a paper-vs-measured report and also writes it under
``benchmarks/results/`` so the comparisons survive output capture.

The Section 7 trial corpus (the paper's "about 400 such trials") is run once
per session and shared by the Figure 14/15/16 and threshold-ablation
benchmarks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.reporting import ExperimentReport
from repro.experiments.trials import run_trials

RESULTS_DIR = Path(__file__).parent / "results"

#: Default machine-readable perf artifact, at the repo root so CI can pick
#: it up without knowing the benchmark layout.
BENCH_JSON_DEFAULT = Path(__file__).parent.parent / "BENCH_throughput.json"

#: The paper collected "about 400 such trials"; we match it.  Override with
#: REPRO_TRIALS=nnn for quicker iterations.
NUM_TRIALS = int(os.environ.get("REPRO_TRIALS", "400"))

#: Worker processes for the shared trial corpus (results are identical at
#: any worker count; see run_trials).  REPRO_TRIAL_JOBS=N to parallelise.
TRIAL_JOBS = int(os.environ.get("REPRO_TRIAL_JOBS", "1"))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", metavar="PATH", default=str(BENCH_JSON_DEFAULT),
        help="where the perf benchmarks write their machine-readable "
             "results (merged per benchmark key; default: "
             "BENCH_throughput.json at the repo root)")


def warn_if_oversubscribed(jobs: int, what: str = "benchmark") -> bool:
    """Warn (and return True) when ``jobs`` exceeds the machine's cores.

    Speedup numbers recorded with more workers than cores measure context
    switching, not scaling — the shard_sweep history has been bitten by
    exactly this, so every parallel benchmark calls through here before
    recording.
    """
    cores = os.cpu_count() or 1
    if jobs > cores:
        import warnings

        warnings.warn(
            f"{what}: jobs={jobs} oversubscribes this {cores}-core box; "
            f"recorded speedups measure contention, not scaling",
            stacklevel=2)
        return True
    return False


@pytest.fixture
def bench_json_sink(request):
    """Returns ``sink(key, payload, summary=None)``.

    Merges ``payload`` under ``key`` into the ``--bench-json`` file (so the
    throughput and scale benchmarks can share one artifact), and, when
    ``summary`` is given, appends it as a one-line row to
    ``benchmarks/results/meta_throughput.txt`` — the human-skimmable perf
    trajectory that survives across runs.

    Every payload is stamped with the recording box's ``cpu_count``:
    speedup entries are meaningless without knowing how many cores were
    available, and the artifact is long-lived.  Benchmarks that measure
    *parallel* scaling pass ``parallel=True``; recorded on a single-core
    box, their entry gains ``"note": "1-core container"`` so readers (and
    the CI gates' skip lines) see at a glance why the numbers show no
    scaling.
    """
    path = Path(request.config.getoption("--bench-json"))

    def sink(key: str, payload: dict, summary: str | None = None,
             parallel: bool = False) -> None:
        data = {}
        if path.exists():
            try:
                data = json.loads(path.read_text())
            except ValueError:
                data = {}  # corrupt artifact: rebuild rather than crash
        payload = dict(payload)
        payload.setdefault("cpu_count", os.cpu_count() or 1)
        if parallel and payload["cpu_count"] == 1:
            payload.setdefault("note", "1-core container")
        data[key] = payload
        path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        if summary is not None:
            RESULTS_DIR.mkdir(exist_ok=True)
            with open(RESULTS_DIR / "meta_throughput.txt", "a") as fh:
                fh.write(summary.rstrip("\n") + "\n")

    return sink


@pytest.fixture(scope="session")
def section7_trials():
    """The shared Section 7 manual-capping trial corpus."""
    if TRIAL_JOBS > 1:
        warn_if_oversubscribed(TRIAL_JOBS, "section7 trial corpus")
    return run_trials(NUM_TRIALS, jobs=TRIAL_JOBS)


@pytest.fixture
def report_sink():
    """Returns a function that prints a report and persists it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(report: ExperimentReport) -> None:
        report.show()
        path = RESULTS_DIR / f"{report.experiment}.txt"
        path.write_text(report.render() + "\n")

    return sink


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
