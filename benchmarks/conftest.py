"""Shared fixtures for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure.
Each benchmark prints a paper-vs-measured report and also writes it under
``benchmarks/results/`` so the comparisons survive output capture.

The Section 7 trial corpus (the paper's "about 400 such trials") is run once
per session and shared by the Figure 14/15/16 and threshold-ablation
benchmarks.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.reporting import ExperimentReport
from repro.experiments.trials import run_trials

RESULTS_DIR = Path(__file__).parent / "results"

#: The paper collected "about 400 such trials"; we match it.  Override with
#: REPRO_TRIALS=nnn for quicker iterations.
NUM_TRIALS = int(os.environ.get("REPRO_TRIALS", "400"))


@pytest.fixture(scope="session")
def section7_trials():
    """The shared Section 7 manual-capping trial corpus."""
    return run_trials(NUM_TRIALS)


@pytest.fixture
def report_sink():
    """Returns a function that prints a report and persists it to disk."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def sink(report: ExperimentReport) -> None:
        report.show()
        path = RESULTS_DIR / f"{report.experiment}.txt"
        path.write_text(report.render() + "\n")

    return sink


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
