"""Ablation: the 0.9/day history age-weighting in spec learning.

"Historical data about prior runs is incorporated using age-weighting, by
multiplying the CPI value from the previous day by about 0.9."  Against a
drifting-and-jittering true CPI, no history (0.0) chases daily jitter and
full history (1.0) lags the drift; the paper's 0.9 sits near the optimum.
"""

from conftest import run_once

from repro.experiments.ablations import age_weight_sweep
from repro.experiments.reporting import ExperimentReport


def test_ablation_age_weighting(benchmark, report_sink):
    results = run_once(benchmark, age_weight_sweep)

    report = ExperimentReport("ablation_age_weight",
                              "Spec history age-weighting")
    for r in results:
        report.add(f"weight {r.age_weight:.1f}: mean abs error",
                   "0.9 near-optimal", r.mean_abs_error)
    report_sink(report)

    by_weight = {r.age_weight: r for r in results}
    # Using history beats ignoring it under daily jitter...
    assert by_weight[0.9].mean_abs_error < by_weight[0.0].mean_abs_error
    # ...and the paper's 0.9 is within 25% of the best weight tried.
    best = min(r.mean_abs_error for r in results)
    assert by_weight[0.9].mean_abs_error <= 1.25 * best
