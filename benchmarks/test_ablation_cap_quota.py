"""Ablation: the hard-cap quota (paper fixes 0.1 / 0.01 CPU-sec/sec).

The sweep shows why 0.1 is a sane default: victim relief saturates below
~0.1 (capping harder buys almost nothing) and erodes quickly above it.
"""

from conftest import run_once

from repro.experiments.ablations import cap_quota_sweep
from repro.experiments.reporting import ExperimentReport


def test_ablation_cap_quota(benchmark, report_sink):
    results = run_once(benchmark, cap_quota_sweep)

    report = ExperimentReport("ablation_cap_quota", "Hard-cap quota sweep")
    for r in results:
        report.add(
            f"quota {r.quota:.2f}: victim relative CPI / antagonist CPU",
            "knee near 0.1",
            f"{r.victim_relative_cpi:.2f} / "
            f"{r.antagonist_usage_during_cap:.2f}")
    report_sink(report)

    by_quota = {r.quota: r for r in results}
    # Relief degrades as the cap loosens.
    reliefs = [r.victim_relative_cpi
               for r in sorted(results, key=lambda r: r.quota)]
    assert reliefs[0] <= reliefs[-1]
    # 0.1 achieves nearly the same relief as 0.01 while leaving the
    # antagonist ~10x the CPU — the paper's conservative choice.
    assert (by_quota[0.1].victim_relative_cpi
            <= by_quota[0.01].victim_relative_cpi + 0.1)
    assert (by_quota[0.1].antagonist_usage_during_cap
            > 5 * by_quota[0.01].antagonist_usage_during_cap)
    # Loose caps stop helping.
    assert by_quota[2.0].victim_relative_cpi > by_quota[0.1].victim_relative_cpi
