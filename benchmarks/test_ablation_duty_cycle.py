"""Ablation: CFS hard-capping vs hardware duty-cycle modulation (Section 8).

"An alternative would be to use hardware mechanisms like duty-cycle
modulation ... it is Intel-specific and operates on a per-core basis,
forcing hyper-threaded cores to the same duty-cycle level, so we chose not
to use it."  Measured: both actuators restore the victim, but only the
duty-cycle one taxes innocent co-tenants.
"""

from conftest import run_once

from repro.experiments.ablations import cfs_vs_duty_cycle
from repro.experiments.reporting import ExperimentReport


def test_ablation_cfs_vs_duty_cycle(benchmark, report_sink):
    result = run_once(benchmark, cfs_vs_duty_cycle)

    report = ExperimentReport("ablation_duty_cycle",
                              "CFS capping vs duty-cycle modulation")
    report.add("victim relative CPI, CFS cap", "recovers",
               result.victim_relative_cpi_cfs)
    report.add("victim relative CPI, duty-cycle", "recovers too",
               result.victim_relative_cpi_duty)
    report.add("bystander CPU loss, CFS cap", 0.0,
               result.bystander_cpu_loss_cfs)
    report.add("bystander CPU loss, duty-cycle", "collateral (per-core)",
               result.bystander_cpu_loss_duty)
    report.add("duty level applied", "-", result.duty_level)
    report.add("core share gated", "-", result.duty_core_share)
    report_sink(report)

    # Both actuators fix the victim...
    assert result.victim_relative_cpi_cfs < 0.7
    assert result.victim_relative_cpi_duty < 0.7
    # ...but CFS confines the damage to the target cgroup, while gating
    # cores taxes the innocent bystander — the paper's reason to pick CFS.
    assert result.bystander_cpu_loss_cfs < 0.02
    assert result.bystander_cpu_loss_duty > 0.10
