"""Ablation: groups of antagonists that take turns (Section 4.2's caveat).

"[The algorithm] would fare less well if faced with a group of antagonists
that together cause significant performance interference, but which
individually did not have much effect (e.g., a set of tasks that took turns
filling the cache)."  Measured: capping the single top suspect barely moves
the victim; capping the group as a unit restores it — the paper's suggested
extension.
"""

from conftest import run_once

from repro.experiments.ablations import group_antagonists
from repro.experiments.reporting import ExperimentReport


def test_ablation_group_antagonists(benchmark, report_sink):
    result = run_once(benchmark, group_antagonists)

    report = ExperimentReport("ablation_group", "Take-turns antagonist group")
    report.add("group size", 4, result.num_antagonists)
    report.add("victim CPI inflation", "significant",
               result.victim_cpi_inflation)
    report.add("max individual correlation", "-",
               result.max_individual_correlation)
    report.add("group-as-a-unit correlation", "-",
               result.group_correlation)
    report.add("relative CPI, top-1 capped", "barely helps",
               result.relative_cpi_top1_capped)
    report.add("relative CPI, group capped", "restores victim",
               result.relative_cpi_group_capped)
    report_sink(report)

    # The group genuinely hurts the victim.
    assert result.victim_cpi_inflation > 1.5
    # Capping one member barely helps; capping the unit fixes it.
    assert result.relative_cpi_top1_capped > 0.75
    assert result.relative_cpi_group_capped < 0.6
    assert (result.relative_cpi_group_capped
            < result.relative_cpi_top1_capped - 0.2)
