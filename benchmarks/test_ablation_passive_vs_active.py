"""Ablation: passive correlation vs the active probing scheme (Section 4.2).

"An active scheme might rank-order a list of suspects based on heuristics
like CPU usage ... and temporarily throttle them back one by one ...
Unfortunately, this simple approach may disrupt many innocent tasks."
Quantified: both schemes find the culprit here, but the active one gets
there by throttling an innocent CPU hog and denying it real CPU time.
"""

from conftest import run_once

from repro.experiments.ablations import passive_vs_active
from repro.experiments.reporting import ExperimentReport


def test_ablation_passive_vs_active(benchmark, report_sink):
    result = run_once(benchmark, passive_vs_active)

    report = ExperimentReport("ablation_passive_active",
                              "Passive correlation vs active probing")
    report.add("passive: correct identification", True,
               result.passive_identified_correctly)
    report.add("passive: CPU denied to innocents (CPU-s)", 0.0,
               result.passive_cpu_seconds_denied)
    report.add("active: correct identification", True,
               result.active_identified_correctly)
    report.add("active: probes run", ">1 (hungriest-first)",
               result.active_probes)
    report.add("active: innocents throttled", ">0",
               result.active_innocents_disrupted)
    report.add("active: CPU denied (CPU-s)", ">0",
               result.active_cpu_seconds_denied)
    report.add("active: wall-clock spent (s)", "minutes",
               result.active_seconds_elapsed)
    report_sink(report)

    assert result.passive_identified_correctly
    assert result.passive_cpu_seconds_denied == 0.0
    # The active scheme disrupts the innocent big consumer on its way.
    assert result.active_innocents_disrupted >= 1
    assert result.active_cpu_seconds_denied > 100.0
