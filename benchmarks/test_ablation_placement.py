"""Ablation: antagonist-aware placement (Section 9 future work, closed).

The paper's scheduler "will not place a task on the same machine as a
user-specified antagonist job"; CPI2's forensics can supply those pairs
automatically.  Measured: install the hints, replace the antagonists, and
interference incidents against the hinted victims drop.
"""

from conftest import run_once

from repro.experiments.placement import antagonist_aware_placement
from repro.experiments.reporting import ExperimentReport


def test_ablation_antagonist_aware_placement(benchmark, report_sink):
    result = run_once(benchmark,
                      lambda: antagonist_aware_placement(phase_hours=1.5))

    report = ExperimentReport("ablation_placement",
                              "Antagonist-aware placement")
    report.add("anti-affinity hints installed", ">=1",
               result.hints_installed)
    report.add("antagonist tasks re-placed", "-",
               result.antagonists_replaced)
    report.add("hinted-pair co-locations (before -> after)", "-> 0",
               f"{result.collisions_before} -> {result.collisions_after}")
    report.add("incidents per phase (before -> after)", "drops",
               f"{result.incidents_before} -> {result.incidents_after}")
    report.add("throttle actions per phase (before -> after)", "drops",
               f"{result.throttles_before} -> {result.throttles_after}")
    report_sink(report)

    assert result.hints_installed >= 1
    assert result.antagonists_replaced >= 1
    # The loop's point: hinted pairs no longer share machines, and the
    # incident pressure falls materially (interference may migrate to
    # not-yet-hinted victims, so it need not reach zero).
    assert result.collisions_after < result.collisions_before
    assert result.collisions_after == 0
    assert result.incidents_after < 0.75 * result.incidents_before
    assert result.throttles_after <= result.throttles_before
