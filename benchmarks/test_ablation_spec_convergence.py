"""Ablation: how many samples make a CPI spec statistically robust?

Paper Section 3.1: "it is easy to generate tens of thousands of samples
within a few hours, which helps make the CPI spec statistically robust."
Measured: spec estimation error vs population size shrinks ~1/sqrt(n); at
the tens-of-thousands scale the error is two orders of magnitude below the
2-sigma threshold's width.
"""

import math

from conftest import run_once

from repro.experiments.ablations import spec_convergence
from repro.experiments.reporting import ExperimentReport


def test_ablation_spec_convergence(benchmark, report_sink):
    results = run_once(benchmark, spec_convergence)

    report = ExperimentReport("ablation_spec_convergence",
                              "Spec robustness vs sample count")
    for r in results:
        report.add(f"n={r.num_samples}: |mean err| / |stddev err|",
                   "shrinks ~1/sqrt(n)",
                   f"{r.mean_error:.4f} / {r.stddev_error:.4f}")
    report_sink(report)

    errors = [r.mean_error for r in results]
    # Monotone improvement with population size.
    assert errors == sorted(errors, reverse=True)
    # Roughly root-n: 400x the samples buys at least ~10x the accuracy.
    assert errors[-1] < errors[0] / 10
    # At the paper's tens-of-thousands scale, the spec mean is pinned far
    # more tightly than the 2-sigma threshold it feeds (~0.32 wide here).
    assert results[-1].mean_error < 0.32 / 50
