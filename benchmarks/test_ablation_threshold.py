"""Ablation: the antagonist-correlation threshold (paper picks 0.35).

"Based on these results, declaring an antagonist only when the detector
correlation is 0.35 or above seems a good threshold."  The sweep shows the
trade the paper made: lower thresholds declare more (coverage) at more
false/noise declarations; higher thresholds declare almost nothing extra.
"""

from conftest import run_once

from repro.experiments.analyses import rates_by_threshold
from repro.experiments.reporting import ExperimentReport


def test_ablation_correlation_threshold(benchmark, report_sink,
                                        section7_trials):
    rates = run_once(
        benchmark,
        lambda: rates_by_threshold(
            section7_trials,
            thresholds=(0.1, 0.2, 0.3, 0.35, 0.4, 0.5, 0.6)))

    report = ExperimentReport("ablation_threshold",
                              "Correlation-threshold sweep")
    for r in rates:
        report.add(
            f"threshold {r.threshold:.2f}: declared / TP / FP",
            "0.35 is the paper's knee",
            f"{r.declared} / {r.true_positive_rate:.2f} / "
            f"{r.false_positive_rate:.2f}")
    report_sink(report)

    by_threshold = {r.threshold: r for r in rates}
    # Coverage declines monotonically with the threshold.
    declared = [r.declared for r in rates]
    assert declared == sorted(declared, reverse=True)
    # At the paper's threshold: solid TP, low FP, non-trivial coverage.
    knee = by_threshold[0.35]
    assert knee.true_positive_rate > 0.6
    assert knee.false_positive_rate < 0.25
    assert knee.declared >= 10
    # Loosening to 0.1 buys coverage but with no better precision.
    loose = by_threshold[0.1]
    assert loose.declared > knee.declared
    assert loose.true_positive_rate <= knee.true_positive_rate + 0.1
