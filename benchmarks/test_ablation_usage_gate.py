"""Ablation: the 0.25 CPU-sec/sec minimum-usage gate.

Case 3 motivated it; the sweep shows the gate kills the bimodal false
alarms without losing genuinely interfered victims (which run well above
the gate).
"""

from conftest import run_once

from repro.experiments.ablations import usage_gate_sweep
from repro.experiments.reporting import ExperimentReport


def test_ablation_usage_gate(benchmark, report_sink):
    results = run_once(benchmark, usage_gate_sweep)

    report = ExperimentReport("ablation_usage_gate", "Minimum-usage gate")
    for r in results:
        report.add(
            f"gate {r.min_cpu_usage:.2f}: false (bimodal) / true (interfered)",
            "0.25 kills false alarms, keeps real ones",
            f"{r.false_anomalies_bimodal} / {r.true_anomalies_interfered}")
    report_sink(report)

    by_gate = {r.min_cpu_usage: r for r in results}
    # No gate: the case-3 false alarm fires.
    assert by_gate[0.0].false_anomalies_bimodal > 0
    # Paper's gate: false alarms gone, real detections intact.
    assert by_gate[0.25].false_anomalies_bimodal == 0
    assert (by_gate[0.25].true_anomalies_interfered
            == by_gate[0.0].true_anomalies_interfered)
    # False alarms never increase as the gate tightens.
    ordered = [r.false_anomalies_bimodal
               for r in sorted(results, key=lambda r: r.min_cpu_usage)]
    assert ordered == sorted(ordered, reverse=True)
