"""Ablation: the 3-violations-in-5-minutes anomaly window.

"To reduce occasional false alarms from noisy data, a task is considered to
be suffering anomalous behavior only if it is flagged as an outlier at
least 3 times in a 5 minute window."  The sweep replays an interfered and a
noise-only stream through 1-shot / paper / stricter policies.
"""

from conftest import run_once

from repro.experiments.ablations import anomaly_window_policies
from repro.experiments.reporting import ExperimentReport


def test_ablation_anomaly_window(benchmark, report_sink):
    results = run_once(benchmark, anomaly_window_policies)

    report = ExperimentReport("ablation_window", "Anomaly-window policies")
    for r in results:
        report.add(f"{r.policy}: anomalies (interference / noise-only)",
                   "paper rule keeps signal, drops noise",
                   f"{r.anomalies_interference} / {r.anomalies_noise_only}")
    report_sink(report)

    by_name = {r.policy: r for r in results}
    one_shot = by_name["1-shot"]
    paper = by_name["3-in-5-min (paper)"]
    strict = by_name["5-in-5-min"]
    # The paper's rule suppresses noise-only alarms the 1-shot rule raises...
    assert one_shot.anomalies_noise_only > 0
    assert paper.anomalies_noise_only < one_shot.anomalies_noise_only
    # ...while keeping nearly all the genuine ones.
    assert paper.anomalies_interference >= 0.8 * one_shot.anomalies_interference
    # Stricter policies only lose more signal.
    assert strict.anomalies_interference <= paper.anomalies_interference
