"""Meta-benchmark: the analysis plane (identification and detection).

The identification hot path — Section 4.2 suspect ranking — used to be one
Python loop per suspect with one deque scan per suspect per victim
timestamp.  The matrix engine (``repro.core.identify``) computes the same
ranking from the cgroups' columnar usage ledgers in a handful of array
passes; the agent's detection path likewise batches a whole sampling
window through :meth:`OutlierDetector.observe_batch`.  Both are
bit-identical to their scalar references (``tests/test_analysis_plane.py``
pins that), so these benchmarks only have to prove they are *faster* —
they write the before/after trajectory to ``BENCH_throughput.json``
(``analysis_plane`` and ``trials_parallel`` keys) for CI to gate.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import run_once

from repro.cluster.cgroup import Cgroup
from repro.core.agent import MachineAgent
from repro.core.config import CpiConfig
from repro.core.correlation import rank_suspects
from repro.core.identify import rank_suspects_matrix, suspect_usage_matrix
from repro.experiments.reporting import ExperimentReport
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import CpiSpec

NUM_SUSPECTS = 100
NUM_POINTS = 30
DURATION = 10
RANK_REPEATS = 30


def _hex_ranking(scores) -> list[tuple[str, str, str]]:
    return [(s.taskname, s.jobname, float(s.correlation).hex())
            for s in scores]


def _build_suspect_cgroups(seconds: int = 720):
    rng = np.random.default_rng(17)
    cgroups = [Cgroup(f"suspect-{i}/0", 4.0) for i in range(NUM_SUSPECTS)]
    for cgroup in cgroups:
        for t in range(seconds):
            cgroup.charge(t, float(rng.uniform(0.0, 3.0)))
    timestamps = [seconds - 60 * (NUM_POINTS - k) for k in range(NUM_POINTS)]
    victim_cpi = [float(rng.uniform(0.5, 3.0)) for _ in range(NUM_POINTS)]
    return cgroups, timestamps, victim_cpi


def _bench_rank_suspects() -> dict:
    """Scalar vs matrix ranking at 100 suspects x 30 victim samples."""
    cgroups, timestamps, victim_cpi = _build_suspect_cgroups()
    threshold = 1.5
    labels = [(cgroup.name, f"job-{i}") for i, cgroup in enumerate(cgroups)]

    def scalar() -> list:
        suspects = {
            cgroup.name: (
                f"job-{i}",
                [cgroup.usage_between(t - DURATION, t) for t in timestamps],
            )
            for i, cgroup in enumerate(cgroups)
        }
        return rank_suspects(victim_cpi, threshold, suspects)

    def vector() -> list:
        usage = suspect_usage_matrix(cgroups, timestamps, DURATION)
        return rank_suspects_matrix(victim_cpi, threshold, labels, usage)

    assert _hex_ranking(scalar()) == _hex_ranking(vector())

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(RANK_REPEATS):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar_seconds = best_of(scalar)
    vector_seconds = best_of(vector)
    return {
        "workload": (f"{NUM_SUSPECTS} suspects x {NUM_POINTS} victim "
                     f"samples, {DURATION}s windows"),
        "scalar_seconds": scalar_seconds,
        "vector_seconds": vector_seconds,
        "speedup": scalar_seconds / vector_seconds,
    }


def _build_ingest_replay():
    """A ~100-task machine plus its closed sampling windows, pre-recorded."""
    from repro.cluster.interference import ResourceProfile
    from repro.cluster.job import Job, JobSpec
    from repro.cluster.task import PriorityBand, SchedulingClass
    from repro.testing import make_quiet_machine
    from repro.workloads.base import SyntheticWorkload
    from repro.workloads.demand import constant

    config = CpiConfig()
    machine = make_quiet_machine()
    rng = np.random.default_rng(23)
    profile = ResourceProfile(cache_mib_per_cpu=1.0, membw_gbps_per_cpu=0.5)
    num_jobs, tasks_per_job = 10, 10
    for j in range(num_jobs):
        base_cpi = float(rng.uniform(0.9, 1.4))
        job = Job(JobSpec(
            name=f"job-{j}", num_tasks=tasks_per_job,
            scheduling_class=SchedulingClass.BATCH,
            priority_band=PriorityBand.NONPRODUCTION,
            cpu_limit_per_task=1.0,
            workload_factory=lambda index, cpi=base_cpi: SyntheticWorkload(
                base_cpi=cpi, profile=profile,
                demand=constant(float(rng.uniform(0.4, 0.9))))))
        for task in job.tasks:
            machine.place(task)
    sampler = CpiSampler(machine, SamplerConfig(
        config.sampling_duration, config.sampling_period))
    batches = []
    for t in range(900):
        machine.tick(t)
        samples = sampler.tick(t)
        if samples:
            batches.append((t, samples))
    # Tight specs so a realistic share of samples flag as outliers and the
    # whole anomaly -> identify path runs, not just the clean fast path.
    specs = {}
    for j in range(num_jobs):
        spec = CpiSpec(jobname=f"job-{j}", platforminfo=machine.platform.name,
                       num_samples=10_000, cpu_usage_mean=1.0,
                       cpi_mean=1.0, cpi_stddev=0.02)
        specs[spec.key()] = spec
    return config, machine, batches, specs


def _bench_ingest(config, machine, batches, specs, engine: str) -> dict:
    agent = MachineAgent(machine=machine, config=config,
                         analysis_engine=engine)
    agent.update_specs(specs)
    total = sum(len(samples) for _t, samples in batches)
    start = time.perf_counter()
    incidents = []
    for t, samples in batches:
        incidents.extend(agent.ingest_samples(t, samples))
    elapsed = time.perf_counter() - start
    return {
        "engine": engine,
        "samples": total,
        "incidents": len(incidents),
        "anomalies_seen": agent.anomalies_seen,
        "wall_seconds": elapsed,
        "samples_per_second": total / elapsed,
    }


def test_analysis_plane_throughput(benchmark, report_sink, bench_json_sink):
    def workload():
        ranking = _bench_rank_suspects()
        replay = _build_ingest_replay()
        scalar_ingest = _bench_ingest(*replay, engine="scalar")
        vector_ingest = _bench_ingest(*replay, engine="vector")
        return ranking, scalar_ingest, vector_ingest

    ranking, scalar_ingest, vector_ingest = run_once(benchmark, workload)
    ingest_speedup = (vector_ingest["samples_per_second"]
                      / scalar_ingest["samples_per_second"])

    report = ExperimentReport("meta_analysis_plane", "Analysis-plane throughput")
    report.add("rank_suspects scalar (s)", "-", ranking["scalar_seconds"],
               ranking["workload"])
    report.add("rank_suspects matrix (s)", "-", ranking["vector_seconds"])
    report.add("rank_suspects speedup", ">= 3", ranking["speedup"])
    report.add("ingest scalar (samples/s)", "-",
               scalar_ingest["samples_per_second"],
               f"{scalar_ingest['samples']} samples, "
               f"{scalar_ingest['anomalies_seen']} anomalies")
    report.add("ingest vector (samples/s)", "-",
               vector_ingest["samples_per_second"])
    report.add("ingest speedup", ">= 1", ingest_speedup)
    report_sink(report)

    bench_json_sink(
        "analysis_plane",
        {
            "rank_suspects": ranking,
            "ingest": {
                "workload": (f"{scalar_ingest['samples']} samples from a "
                             f"100-task machine, anomalies firing"),
                "scalar_samples_per_second":
                    scalar_ingest["samples_per_second"],
                "vector_samples_per_second":
                    vector_ingest["samples_per_second"],
                "speedup": ingest_speedup,
            },
        },
        summary=(f"analysis plane: rank_suspects {ranking['speedup']:.1f}x, "
                 f"ingest {scalar_ingest['samples_per_second']:,.0f} -> "
                 f"{vector_ingest['samples_per_second']:,.0f} samples/s "
                 f"({ingest_speedup:.2f}x)"))

    # Both engines must walk the same trajectory (parity tests pin the
    # bytes; this pins the counts on the benchmark workload too).
    assert scalar_ingest["incidents"] == vector_ingest["incidents"]
    assert scalar_ingest["anomalies_seen"] == vector_ingest["anomalies_seen"]
    assert scalar_ingest["anomalies_seen"] > 0, "workload produced no anomalies"
    # Gates mirrored in CI perf-smoke: the matrix engine must hold >= 3x on
    # the 100-suspect ranking, and batch ingest must not regress.
    assert ranking["speedup"] >= 3.0
    assert ingest_speedup >= 1.0
    assert vector_ingest["samples_per_second"] > 20_000


def test_trials_parallel(benchmark, report_sink, bench_json_sink):
    from conftest import warn_if_oversubscribed

    from repro.experiments.trials import (TRIALS_PARALLEL_MIN_PER_JOB,
                                          TrialConfig, run_trials)
    from repro.experiments.workerpool import shared_pool
    from repro.obs import default_observability

    num_trials, jobs = 6, 2
    warn_if_oversubscribed(jobs, "trials_parallel")
    config = TrialConfig(calibration_seconds=300, interference_seconds=360,
                         cap_seconds=120)

    def workload():
        # The persistent pool is spawned outside the timed region — that
        # is its contract: one spawn per process, reused by every
        # fan-out, so short corpora no longer pay it per call.
        shared_pool(jobs)
        start = time.perf_counter()
        serial = run_trials(num_trials, config, seed_base=11)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_trials(num_trials, config, seed_base=11, jobs=jobs,
                              min_per_job=0)
        parallel_seconds = time.perf_counter() - start
        return serial, serial_seconds, parallel, parallel_seconds

    serial, serial_seconds, parallel, parallel_seconds = run_once(
        benchmark, workload)
    identical = [repr(t) for t in serial] == [repr(t) for t in parallel]
    speedup = serial_seconds / parallel_seconds

    # This corpus sits under the documented fallback floor, so a plain
    # jobs=2 call (no min_per_job override) must take the serial path and
    # count it.
    registry = default_observability().metrics
    fallbacks_before = registry.value("trials_serial_fallback") or 0
    run_trials(num_trials, config, seed_base=11, jobs=jobs)
    fallback_counted = (registry.value("trials_serial_fallback")
                        or 0) == fallbacks_before + 1

    report = ExperimentReport("meta_trials_parallel",
                              "Parallel trial execution")
    report.add("serial wall (s)", "-", serial_seconds,
               f"{num_trials} short trials")
    report.add(f"--jobs {jobs} wall (s)", "-", parallel_seconds,
               "warm persistent pool, min_per_job=0")
    report.add("speedup", "~cores", speedup)
    report.add("results identical", "True", identical)
    report.add("short corpus falls back to serial", "True", fallback_counted)
    report_sink(report)

    bench_json_sink(
        "trials_parallel",
        {
            "workload": (f"{num_trials} short Section-7 trials, "
                         "warm persistent pool"),
            "jobs": jobs,
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": speedup,
            "identical": identical,
            "fallback_threshold_per_job": TRIALS_PARALLEL_MIN_PER_JOB,
            "fallback_counted": fallback_counted,
        },
        summary=(f"trials: {serial_seconds:.1f}s serial -> "
                 f"{parallel_seconds:.1f}s at --jobs {jobs} "
                 f"({speedup:.2f}x, identical={identical})"),
        parallel=True)

    # Identity is the hard gate; speedup depends on the runner's cores and
    # is gated in CI only when >= 2 cores are present.
    assert identical
    assert fallback_counted
