"""Case 1 (Figure 8): suspect ranking picks the video-processing batch job.

Paper: top-5 suspects led by video processing (corr 0.46, the only
non-latency-sensitive one); killing it returned the victim to normal.
"""

from conftest import run_once

from repro.experiments.casestudies import case1_suspect_ranking
from repro.experiments.reporting import ExperimentReport


def test_case1_video_processing_identified(benchmark, report_sink):
    result = run_once(benchmark, case1_suspect_ranking)

    report = ExperimentReport("case1", "Suspect ranking (Figure 8)")
    report.add("chosen antagonist", "video processing (batch)",
               f"{result.chosen_job} ({result.chosen_class})")
    report.add("top suspect correlation", 0.46,
               result.suspects[0].correlation)
    report.add("batch jobs in top-5", 1, sum(
        1 for s in result.suspects if s.scheduling_class != "latency-sensitive"))
    report.add("victim CPI while suffering", "5.0 (peak)",
               result.victim_cpi_during)
    report.add("victim CPI after kill", "back to normal",
               result.victim_cpi_after_kill)
    for s in result.suspects:
        report.add(f"suspect {s.jobname} ({s.scheduling_class})",
                   "-", s.correlation)
    report_sink(report)

    assert result.chosen_job == "video-processing"
    assert result.chosen_class == "batch"
    assert result.suspects[0].jobname == "video-processing"
    assert result.suspects[0].correlation >= 0.35
    # Killing the antagonist restores most of the victim's performance.
    assert result.victim_cpi_after_kill < 0.75 * result.victim_cpi_during
