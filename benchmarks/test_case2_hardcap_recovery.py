"""Case 2 (Figure 9): hard-capping halves the victim's CPI; it rises after.

Paper: "the victim's CPI improved from about 2.0 to about 1.0.  Once the
hard-capping stopped and the antagonist was allowed to run normally, the
victim's CPI rose again."
"""

from conftest import run_once

from repro.experiments.casestudies import case2_hardcap_recovery
from repro.experiments.reporting import ExperimentReport


def test_case2_capping_restores_victim(benchmark, report_sink):
    result = run_once(benchmark, case2_hardcap_recovery)

    report = ExperimentReport("case2", "Hard-cap recovery (Figure 9)")
    report.add("suspect correlation", "0.31-0.34 band", result.correlation)
    report.add("victim CPI before cap", 2.0, result.cpi_before)
    report.add("victim CPI during cap", 1.0, result.cpi_during_cap)
    report.add("victim CPI after cap lapses", "rises again",
               result.cpi_after_cap)
    report.add("antagonist CPU before cap", "-",
               result.antagonist_usage_before)
    report.add("antagonist CPU during cap", "drastically reduced",
               result.antagonist_usage_during)
    report_sink(report)

    assert result.correlation >= 0.3
    assert result.cpi_during_cap < 0.75 * result.cpi_before
    assert result.cpi_after_cap > 1.2 * result.cpi_during_cap
    assert result.antagonist_usage_during < 0.2 * result.antagonist_usage_before
