"""Case 3 (Figure 10): self-inflicted CPI swings raise no (false) alarm.

Paper: "the highest correlation value produced by our algorithm was only
0.07, so CPI2 took no action ... high CPI corresponds to periods of low CPU
usage ... The minimum CPU usage threshold was developed to filter out this
kind of false alarm."
"""

from conftest import run_once

from repro.experiments.casestudies import case3_bimodal_false_alarm
from repro.experiments.reporting import ExperimentReport


def test_case3_usage_gate_suppresses_false_alarm(benchmark, report_sink):
    result = run_once(benchmark, case3_bimodal_false_alarm)

    report = ExperimentReport("case3", "Bimodal false alarm (Figure 10)")
    report.add("CPI vs own-usage correlation", "negative (self-inflicted)",
               result.cpi_usage_correlation)
    report.add("anomalies with 0.25 usage gate", 0,
               result.anomalies_with_gate)
    report.add("low-usage samples filtered", ">0",
               result.low_usage_samples_skipped)
    report.add("anomalies with gate disabled", ">0",
               result.anomalies_without_gate)
    report.add("best suspect correlation (gate off)", 0.07,
               result.best_correlation_without_gate)
    report.add("throttle actions taken", 0, result.actions_taken)
    report_sink(report)

    # High CPI coincides with low own usage: the signature of case 3.
    assert result.cpi_usage_correlation < -0.5
    # The paper's gate suppresses the alarm entirely...
    assert result.anomalies_with_gate == 0
    assert result.low_usage_samples_skipped > 0
    # ...without it, alarms fire, but no suspect clears the threshold and
    # nothing gets throttled.
    assert result.anomalies_without_gate > 0
    assert result.best_correlation_without_gate < 0.35
    assert result.actions_taken == 0
