"""Case 4 (Figure 11): one batch suspect among many LS ones; modest relief.

Paper: 9 suspects, "only one antagonist was eligible for throttling
(scientific simulation), since it was the only non-latency-sensitive task
... a modest improvement: the victim's CPI dropped from 1.6 to 1.3.  The
correct response in a case like this would be to migrate the victim."
"""

from conftest import run_once

from repro.experiments.casestudies import case4_modest_relief
from repro.experiments.reporting import ExperimentReport


def test_case4_migration_is_the_answer(benchmark, report_sink):
    result = run_once(benchmark, case4_modest_relief)

    report = ExperimentReport("case4", "Modest relief (Figure 11)")
    report.add("throttle-eligible suspects", "1 of 9", result.batch_suspects)
    report.add("chosen antagonist", "scientific simulation",
               result.chosen_job)
    report.add("relative CPI after capping", "0.81 (1.6 -> 1.3)",
               result.relative_cpi)
    report.add("eventual policy decision", "migrate the victim",
               result.final_decision)
    report_sink(report)

    assert result.batch_suspects == 1
    assert result.chosen_job == "scientific-simulation"
    # Relief exists but is modest: the LS neighbours keep interfering.
    assert result.relative_cpi > 0.7
    assert result.final_decision == "migrate-victim"
