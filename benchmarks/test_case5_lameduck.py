"""Case 5 (Figure 12): the antagonist's lame-duck mode under capping.

Paper: "During normal execution, it has about 8 active threads.  When it is
hard-capped, the number of threads rapidly grows to around 80.  After the
hard-capping stops, the thread count drops to 2 ... for tens of minutes
before reverting to its normal 8 threads."
"""

from conftest import run_once

from repro.experiments.casestudies import case5_lame_duck
from repro.experiments.reporting import ExperimentReport


def test_case5_thread_dynamics(benchmark, report_sink):
    result = run_once(benchmark, case5_lame_duck)

    report = ExperimentReport("case5", "Lame-duck mode (Figure 12)")
    report.add("threads, normal", 8, result.threads_normal)
    report.add("threads, while capped", 80, result.threads_capped)
    report.add("threads, lame-duck", 2, result.threads_lame_duck)
    report.add("threads, recovered", 8, result.threads_recovered)
    report.add("victim CPI before cap", "-", result.victim_cpi_before)
    report.add("victim CPI during cap", "drops", result.victim_cpi_capped)
    report_sink(report)

    assert result.threads_normal == 8
    assert result.threads_capped == 80
    assert result.threads_lame_duck == 2
    assert result.threads_recovered == 8
    assert result.victim_cpi_capped < 0.75 * result.victim_cpi_before
