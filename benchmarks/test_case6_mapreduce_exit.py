"""Case 6 (Figure 13): the MapReduce worker quits during its second cap.

Paper: the worker "survived the first hard-capping (perhaps because it was
inactive at the time) but during the second one it either quit or was
terminated by the MapReduce master."
"""

from conftest import run_once

from repro.experiments.casestudies import case6_mapreduce_exit
from repro.experiments.reporting import ExperimentReport


def test_case6_worker_gives_up(benchmark, report_sink):
    result = run_once(benchmark, case6_mapreduce_exit)

    report = ExperimentReport("case6", "MapReduce exit (Figure 13)")
    report.add("capping episodes", 2, result.cap_episodes)
    report.add("survived first cap", True, result.survived_first_cap)
    report.add("exited during second cap", True, result.exited_during_second)
    report.add("final task state", "exited", result.final_state)
    report_sink(report)

    assert result.cap_episodes == 2
    assert result.survived_first_cap
    assert result.exited_during_second
    assert result.final_state == "exited"
