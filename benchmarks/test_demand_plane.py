"""Meta-benchmark: the demand/allocation plane (tick phases 1-3 and 5b-6).

After the tick physics fused (PR 3) and analysis vectorized (PR 5), the
demand plane — per-task demand closures, cgroup clipping, charging, and
``on_tick`` accounting — was the last big Python loop on the hot path:
three closure calls per task per simulated second.  The compiled demand
engine (``repro.cluster.demandplane``) lowers the combinators' spec forms
into struct-of-arrays programs, bit-identical to the closures
(``tests/test_demand_plane.py`` pins that), so this benchmark only has to
prove it is *faster*: it times exactly the input/finish phases on a
100-task machine under both engines and writes the ``demand_plane`` entry
of ``BENCH_throughput.json`` for CI to gate at >= 2x.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.job import Job, JobSpec
from repro.cluster.machine import Machine, TickResult
from repro.cluster.platform import get_platform
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.testing import QUIET_PROFILE
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import constant, on_off, phased, scaled, with_noise
from repro.workloads.diurnal import DiurnalPattern

NUM_JOBS = 10
TASKS_PER_JOB = 10
TICKS = 600
MIN_SPEEDUP = 2.0


def _demand_for(job: int, index: int, rng: np.random.Generator):
    """A realistic mix: noisy services, bursty batch, diurnal frontends."""
    kind = job % 4
    if kind == 0:
        return with_noise(constant(0.4 + 0.05 * index), 0.08, rng)
    if kind == 1:
        return with_noise(
            on_off(1.2, 0.2, 300, duty=0.4, phase=int(rng.integers(300))),
            0.1, rng)
    if kind == 2:
        return with_noise(
            scaled(constant(0.6), DiurnalPattern(amplitude=0.25)), 0.08, rng)
    return phased([(120, 0.3), (240, 0.9), (120, 0.5)])


def _build_machine(demand_engine: str) -> Machine:
    machine = Machine("bench", get_platform("westmere-2.6"),
                      cpi_noise_sigma=0.0, demand_engine=demand_engine)
    for j in range(NUM_JOBS):
        tier = (SchedulingClass.LATENCY_SENSITIVE if j % 3 == 0 else
                SchedulingClass.BATCH if j % 3 == 1 else
                SchedulingClass.BEST_EFFORT)
        job = Job(JobSpec(
            name=f"job-{j}", num_tasks=TASKS_PER_JOB,
            scheduling_class=tier,
            priority_band=PriorityBand.NONPRODUCTION,
            cpu_limit_per_task=1.5,
            workload_factory=lambda i, j=j: SyntheticWorkload(
                base_cpi=1.0 + 0.01 * i, profile=QUIET_PROFILE,
                demand=_demand_for(j, i, np.random.default_rng(
                    np.random.SeedSequence((j, i)))))))
        for task in job.tasks:
            machine.place(task)
    return machine


def _time_phases(machine: Machine) -> float:
    """Seconds for TICKS rounds of the input + finish phases only."""
    table = machine._task_table()
    start = time.perf_counter()
    for t in range(TICKS):
        result = TickResult(t=t, departures=[])
        grants, capped, _ = machine._tick_inputs(t, table)
        machine._tick_finish(t, table, result, grants, capped)
    return time.perf_counter() - start


def test_demand_plane_speedup(bench_json_sink):
    scalar_m = _build_machine("scalar")
    vector_m = _build_machine("vector")
    assert vector_m._task_table().demand_columns is not None
    assert scalar_m._task_table().demand_columns is None

    # Same seeds, same closures: one parity spot-check before timing (the
    # exhaustive bit-parity suite lives in tests/test_demand_plane.py).
    g_s, c_s, b_s = scalar_m._tick_inputs(0, scalar_m._task_table())
    g_v, c_v, b_v = vector_m._tick_inputs(0, vector_m._task_table())
    assert [float(g).hex() for g in g_s] == [float(g).hex() for g in g_v]
    assert c_s == list(c_v) and list(b_s) == list(b_v)

    # Warm, then take the best of three (1-core CI boxes are noisy).
    scalar_s = min(_time_phases(scalar_m) for _ in range(3))
    vector_s = min(_time_phases(vector_m) for _ in range(3))

    n = NUM_JOBS * TASKS_PER_JOB
    payload = {
        "workload": (f"{n}-task machine, {TICKS} ticks of the input/finish "
                     f"phases (demand, clipping, allocation, charging, "
                     f"on_tick accounting)"),
        "scalar_task_ticks_per_second": n * TICKS / scalar_s,
        "vector_task_ticks_per_second": n * TICKS / vector_s,
        "speedup": scalar_s / vector_s,
    }
    bench_json_sink(
        "demand_plane", payload,
        summary=(f"demand_plane: {payload['speedup']:.1f}x "
                 f"({payload['scalar_task_ticks_per_second']:,.0f} -> "
                 f"{payload['vector_task_ticks_per_second']:,.0f} "
                 f"task-ticks/s, {n} tasks)"))
    print(f"\ndemand plane: scalar {scalar_s:.3f}s, vector {vector_s:.3f}s "
          f"-> {payload['speedup']:.2f}x")
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"demand plane speedup {payload['speedup']:.2f}x < {MIN_SPEEDUP}x")
