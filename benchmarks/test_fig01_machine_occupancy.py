"""Figure 1: tasks and threads per machine across the fleet (CDFs).

Paper: the vast majority of machines run multiple tasks — the task-count CDF
spans roughly 5 to 95 tasks per machine and the thread count reaches
thousands.  Our fleet is smaller, so we check the shape: every machine
multi-tenant, an order of magnitude between task count and thread count, and
wide spread across machines.
"""

from conftest import run_once

from repro.experiments.fleet import (
    machine_occupancy,
    machine_occupancy_from_trace_mix,
)
from repro.experiments.reporting import ExperimentReport


def test_fig1_machine_occupancy(benchmark, report_sink):
    result = run_once(benchmark, lambda: machine_occupancy(num_machines=16))

    quantiles = result.quantiles()
    report = ExperimentReport("fig01", "Tasks and threads per machine")
    report.add("machines multi-tenant (tasks >= 2)", "~100%",
               f"{100 * (1 - result.tasks_per_machine(1.99)):.0f}%")
    report.add("median tasks/machine", "10-30 (paper CDF)",
               quantiles["tasks"][1], "scaled-down fleet")
    report.add("p90 tasks/machine", "up to ~90", quantiles["tasks"][2])
    report.add("median threads/machine", "hundreds-thousands",
               quantiles["threads"][1])
    report.add("threads >> tasks", ">= 8x",
               quantiles["threads"][1] / max(1.0, quantiles["tasks"][1]))
    report_sink(report)

    # Shape assertions: multi-tenancy everywhere, real spread, threads
    # an order of magnitude above tasks.
    assert result.tasks_per_machine.quantile(0.0) >= 2
    assert result.tasks_per_machine.quantile(0.9) > result.tasks_per_machine.quantile(0.1)
    assert quantiles["threads"][1] >= 8 * quantiles["tasks"][1]


def test_fig1_trace_mix_population(benchmark, report_sink):
    """Figure 1 re-measured against a population whose aggregate statistics
    match the cluster-trace numbers the paper cites (Section 2)."""
    result = run_once(benchmark,
                      lambda: machine_occupancy_from_trace_mix(
                          num_machines=16))
    quantiles = result.quantiles()
    report = ExperimentReport("fig01_trace_mix",
                              "Occupancy under the trace-statistics mix")
    report.add("median tasks/machine", "10-30", quantiles["tasks"][1])
    report.add("median threads/machine", "hundreds+", quantiles["threads"][1])
    report_sink(report)
    assert result.tasks_per_machine.quantile(0.0) >= 2
    assert quantiles["threads"][1] >= 8 * quantiles["tasks"][1]
