"""Figure 2: batch-job transactions/s vs instructions/s, r = 0.97.

"The rates track one another well, with a coefficient of correlation of
0.97."  We run a scaled-down batch job (60 tasks vs the paper's 2600) over
two hours with 10-minute windows and require r in the same high band.
"""

from conftest import run_once

from repro.experiments.metric_validation import tps_vs_ips
from repro.experiments.reporting import ExperimentReport


def test_fig2_tps_tracks_ips(benchmark, report_sink):
    series = run_once(benchmark, lambda: tps_vs_ips(num_tasks=60, hours=2.0))

    report = ExperimentReport("fig02", "Batch TPS vs IPS correlation")
    report.add("correlation coefficient", 0.97, series.correlation)
    report.add("windows", "12 x 10 min", len(series.series_a))
    report.add("rate swing (min/max IPS)", "~0.5x (figure spans 1x-2x)",
               min(series.series_a) / max(series.series_a))
    report_sink(report)

    assert series.correlation > 0.9
    assert len(series.series_a) == 12
    # The job's load genuinely varies (the figure's 1x..2x span).
    assert min(series.series_a) / max(series.series_a) < 0.8
