"""Figure 3: web-search leaf request latency vs CPI over 24 hours, r = 0.97.

"Figure 3 shows data for average CPI and request latency in a
latency-sensitive application (a web-search leaf node) ... a coefficient of
correlation of 0.97."
"""

from conftest import run_once

from repro.experiments.metric_validation import latency_vs_cpi_timeseries
from repro.experiments.reporting import ExperimentReport


def test_fig3_leaf_latency_tracks_cpi(benchmark, report_sink):
    series = run_once(benchmark,
                      lambda: latency_vs_cpi_timeseries(num_tasks=8,
                                                        hours=24.0))

    report = ExperimentReport("fig03", "Leaf latency vs CPI over 24 h")
    report.add("correlation coefficient", 0.97, series.correlation)
    report.add("windows", "144 x 10 min", len(series.series_a))
    report_sink(report)

    assert series.correlation > 0.9
    assert len(series.series_a) >= 140
