"""Figure 4: per-task latency-vs-CPI correlation by search tier.

"Two of the jobs are fairly computation-intensive and show high correlation
coefficients (0.68-0.75), but the third job exhibits poor correlation
because CPI does not capture I/O behavior: it is a web-search root node."
"""

from conftest import run_once

from repro.experiments.metric_validation import per_task_latency_correlations
from repro.experiments.reporting import ExperimentReport
from repro.workloads.websearch import SearchTier


def test_fig4_tier_correlations(benchmark, report_sink):
    corrs = run_once(benchmark, per_task_latency_correlations)

    report = ExperimentReport("fig04", "Latency-CPI correlation per tier")
    report.add("leaf (a)", 0.75, corrs[SearchTier.LEAF])
    report.add("intermediate (b)", 0.68, corrs[SearchTier.INTERMEDIATE])
    report.add("root (c)", "poor (I/O-dominated)", corrs[SearchTier.ROOT])
    report_sink(report)

    # Shape: both compute tiers correlate strongly; the root does not.
    assert corrs[SearchTier.LEAF] > 0.55
    assert corrs[SearchTier.INTERMEDIATE] > 0.45
    assert abs(corrs[SearchTier.ROOT]) < 0.3
    assert corrs[SearchTier.LEAF] > corrs[SearchTier.ROOT]
    assert corrs[SearchTier.INTERMEDIATE] > corrs[SearchTier.ROOT]
