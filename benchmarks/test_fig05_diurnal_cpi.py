"""Figure 5: mean web-search CPI over days shows a diurnal pattern, CV ~ 4%.

"It demonstrates a diurnal pattern, with about a 4% coefficient of variation
(standard deviation divided by mean)."
"""

from conftest import run_once

from repro.experiments.metric_validation import diurnal_cpi
from repro.experiments.reporting import ExperimentReport


def test_fig5_diurnal_pattern(benchmark, report_sink):
    result = run_once(benchmark, lambda: diurnal_cpi(num_tasks=10, days=2.0))

    report = ExperimentReport("fig05", "Diurnal mean CPI across leaf tasks")
    report.add("coefficient of variation", "~0.04", result.cv)
    report.add("CPI follows load curve (corr)", "diurnal shape",
               result.load_correlation)
    report.add("buckets", "2 days x 30 min", len(result.mean_cpi))
    report_sink(report)

    # CV in the paper's low-single-digit-percent band; not flat, not wild.
    assert 0.015 < result.cv < 0.10
    # The cycle must actually track time-of-day load.
    assert result.load_correlation > 0.8
