"""Figure 7: the CPI distribution of a big web-search job and its GEV fit.

"The graph includes more than 450k CPI samples and has mean 1.8 and standard
deviation 0.16 ... We fitted the data against normal, log-normal, Gamma, and
generalized extreme value (GEV) distributions; the last one fit the best."
Also the skew claim: "the rightmost tail is longer than the leftmost one".
"""

import numpy as np
from conftest import run_once

from repro.experiments.metric_validation import cpi_distribution_fits
from repro.experiments.reporting import ExperimentReport


def test_fig7_gev_fits_best(benchmark, report_sink):
    result = run_once(benchmark,
                      lambda: cpi_distribution_fits(num_tasks=40, hours=5.0))

    gev = result.fits["gev"]
    report = ExperimentReport("fig07", "CPI distribution and GEV fit")
    report.add("samples", "450k (fleet scale)", result.num_samples,
               "scaled-down population")
    report.add("mean CPI", 1.8, result.mean)
    report.add("stddev", 0.16, result.stddev)
    report.add("best-fitting family", "gev", result.best_family)
    report.add("GEV location mu", 1.73, gev.location)
    report.add("GEV scale sigma", 0.133, gev.scale)
    report.add("GEV shape xi", -0.0534, gev.shape,
               "sign differs: our tail is heavier than the paper's")
    for family, fit in sorted(result.fits.items(),
                              key=lambda kv: kv[1].ks_statistic):
        report.add(f"KS distance: {family}", "-", fit.ks_statistic)
    report_sink(report)

    assert result.best_family == "gev"
    assert result.fits["gev"].ks_statistic < result.fits["normal"].ks_statistic
    assert 1.4 < result.mean < 2.3
    assert result.num_samples > 5000
