"""Figure 14: antagonism is not correlated with machine load.

Paper: "Antagonism is not correlated with machine load: it happens fairly
uniformly at all utilization levels and the extent of damage to victims is
also not related to the utilization" — and (d): the CPI-increase CDF for
identified-antagonist cases has a long tail versus the no-antagonist cases.
"""

from conftest import run_once

from repro.experiments.analyses import cpi_rel_cdfs, utilization_correlation
from repro.experiments.reporting import ExperimentReport


def test_fig14_antagonism_vs_load(benchmark, report_sink, section7_trials):
    def analyse():
        corr_util, cpi_util = utilization_correlation(section7_trials)
        with_ant, without = cpi_rel_cdfs(section7_trials)
        return corr_util, cpi_util, with_ant, without

    corr_util, cpi_util, with_ant, without = run_once(benchmark, analyse)

    report = ExperimentReport("fig14", "Antagonism vs machine load")
    report.add("(a) corr(utilization, antagonist correlation)",
               "~0 (uniform across load)", corr_util)
    report.add("(c) corr(utilization, victim CPI degradation)",
               "~0", cpi_util)
    report.add("(b) utilization spread p10-p90", "20%-90%",
               f"{100 * min(t.utilization for t in section7_trials):.0f}%-"
               f"{100 * max(t.utilization for t in section7_trials):.0f}%")
    report.add("(d) median CPI degradation, antagonist identified",
               ">1 with long tail", with_ant.median())
    report.add("(d) p95 CPI degradation, antagonist identified",
               "long tail", with_ant.quantile(0.95))
    report.add("(d) median CPI degradation, no antagonist",
               "near 1", without.median())
    report_sink(report)

    # Load-independence: |r| small for both relations.
    assert abs(corr_util) < 0.35
    assert abs(cpi_util) < 0.35
    # The identified population's CPI degradation dominates stochastically
    # and carries the longer tail.
    assert with_ant.median() > without.median()
    assert with_ant.quantile(0.95) > without.quantile(0.95)
    assert with_ant.quantile(0.95) > 1.5 * with_ant.median() * 0.5  # tail exists
