"""Figure 15: antagonist-detection accuracy for all jobs.

Paper: (a) production jobs show a much better true-positive rate than
non-production ones; 0.35 is a good threshold.  (b) throttling the top
suspect takes a true-positive victim's CPI to 0.52x (production) / 0.82x
(non-production).  (c) relative L3 misses/instruction tracks relative CPI
with a 0.87 linear correlation.
"""

import math

from conftest import run_once

from repro.cluster.task import PriorityBand
from repro.experiments.analyses import (
    l3_vs_cpi_correlation,
    memory_metric_correlations,
    rates_by_threshold,
    relative_cpi_by_threshold,
    tp_rate_confidence_interval,
)
from repro.experiments.reporting import ExperimentReport


def test_fig15_detection_accuracy(benchmark, report_sink, section7_trials):
    def analyse():
        prod = rates_by_threshold(section7_trials,
                                  band=PriorityBand.PRODUCTION)
        nonprod = rates_by_threshold(section7_trials,
                                     band=PriorityBand.NONPRODUCTION)
        rel_prod = relative_cpi_by_threshold(section7_trials,
                                             band=PriorityBand.PRODUCTION)
        rel_nonprod = relative_cpi_by_threshold(
            section7_trials, band=PriorityBand.NONPRODUCTION)
        l3_corr = l3_vs_cpi_correlation(section7_trials)
        metric_corrs = memory_metric_correlations(section7_trials)
        return prod, nonprod, rel_prod, rel_nonprod, l3_corr, metric_corrs

    (prod, nonprod, rel_prod, rel_nonprod, l3_corr,
     metric_corrs) = run_once(benchmark, analyse)

    report = ExperimentReport("fig15", "Detection accuracy, all jobs")
    at_035_prod = next(r for r in prod if math.isclose(r.threshold, 0.35))
    at_035_nonprod = next(r for r in nonprod
                          if math.isclose(r.threshold, 0.35))
    prod_ci = tp_rate_confidence_interval(section7_trials,
                                          band=PriorityBand.PRODUCTION)
    report.add("(a) production TP rate @0.35", "~0.7",
               at_035_prod.true_positive_rate,
               f"n={at_035_prod.declared}, 95% CI "
               f"[{prod_ci[0]:.2f}, {prod_ci[1]:.2f}]")
    report.add("(a) non-production TP rate @0.35", "lower than production",
               at_035_nonprod.true_positive_rate,
               f"n={at_035_nonprod.declared}")
    report.add("(a) production FP rate @0.35", "small",
               at_035_prod.false_positive_rate)
    rel_p = next(v for th, v in rel_prod if math.isclose(th, 0.35))
    rel_n = next(v for th, v in rel_nonprod if math.isclose(th, 0.35))
    report.add("(b) production TP relative CPI @0.35", 0.52, rel_p)
    report.add("(b) non-production TP relative CPI @0.35", 0.82, rel_n)
    report.add("(c) corr(relative L3 MPI, relative CPI)", 0.87, l3_corr)
    report.add("(c) corr for L2 MPI", "weaker than L3",
               metric_corrs["l2_mpi"])
    report.add("(c) corr for memory requests/cycle", "weaker than L3",
               metric_corrs["mem_req_per_cycle"])
    for r in prod:
        report.add(f"(a) production TP rate @{r.threshold:.2f}", "-",
                   r.true_positive_rate, f"n={r.declared}")
    report_sink(report)

    # Production beats non-production.  The gap is widest at the loose end
    # of the sweep where the sample is biggest; at 0.35 we allow sampling
    # slack but never let non-production come out meaningfully ahead.
    at_02_prod = next(r for r in prod if math.isclose(r.threshold, 0.2))
    at_02_nonprod = next(r for r in nonprod
                         if math.isclose(r.threshold, 0.2))
    assert at_02_prod.true_positive_rate > at_02_nonprod.true_positive_rate
    assert (at_035_prod.true_positive_rate
            >= at_035_nonprod.true_positive_rate - 0.05)
    assert at_035_prod.true_positive_rate > 0.5
    assert at_035_prod.false_positive_rate < 0.2
    # Throttling a true positive meaningfully lowers the victim's CPI, and
    # production victims benefit at least as much as non-production ones.
    assert rel_p < 0.85
    assert rel_p < rel_n + 0.1
    # L3 misses/instruction is the memory metric that tracks CPI best
    # (Section 7.2's comparison against L2 MPI and memory-requests/cycle).
    assert l3_corr > 0.6
    assert metric_corrs["l3_mpi"] >= metric_corrs["l2_mpi"]
    assert metric_corrs["l3_mpi"] >= metric_corrs["mem_req_per_cycle"]
