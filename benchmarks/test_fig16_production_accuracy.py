"""Figure 16: accuracy and CPI improvement for production jobs.

Paper: (a) ~70% true-positive rate above the 0.35 threshold; (b) "an
anomalous event should not be declared until the victim has a CPI that is
at least 3 standard deviations above the mean"; (c) relative CPI is
significantly below 1 across the degradation range; (d) "the median victim
production job's CPI is reduced to 0.63x its pre-throttling value"
(true and false positives included).
"""

import math

from conftest import run_once

from repro.cluster.task import PriorityBand
from repro.experiments.analyses import (
    median_relative_cpi,
    rates_by_cpi_increase,
    rates_by_threshold,
    relative_cpi_by_degradation,
)
from repro.experiments.reporting import ExperimentReport


def test_fig16_production_jobs(benchmark, report_sink, section7_trials):
    def analyse():
        rates = rates_by_threshold(
            section7_trials, thresholds=(0.35, 0.4, 0.45, 0.5),
            band=PriorityBand.PRODUCTION)
        by_sigma = rates_by_cpi_increase(section7_trials)
        by_degradation = relative_cpi_by_degradation(section7_trials)
        median_rel = median_relative_cpi(section7_trials)
        return rates, by_sigma, by_degradation, median_rel

    rates, by_sigma, by_degradation, median_rel = run_once(benchmark, analyse)

    report = ExperimentReport("fig16", "Production-job accuracy")
    for r in rates:
        report.add(f"(a) TP rate @threshold {r.threshold:.2f}", "~0.7",
                   r.true_positive_rate, f"n={r.declared}")
    for lo, tp, n in by_sigma:
        report.add(f"(b) TP rate, CPI increase >= {lo:.0f} sigma", "-",
                   tp, f"n={n}")
    for lo, rel, n in by_degradation:
        report.add(f"(c) relative CPI, degradation >= {lo:.0f}x", "<1",
                   rel, f"n={n}")
    report.add("(d) median victim relative CPI", 0.63, median_rel)
    report_sink(report)

    # (a) TP rate in the paper's band, roughly flat above the threshold.
    tp_rates = [r.true_positive_rate for r in rates if r.declared >= 5]
    assert all(tp > 0.5 for tp in tp_rates)
    # (b) declarations at small sigma-increases are the unreliable ones.
    small = [tp for lo, tp, n in by_sigma if lo < 3 and n >= 3]
    large = [tp for lo, tp, n in by_sigma if lo >= 3 and n >= 3
             and not math.isnan(tp)]
    if small and large:
        assert max(large) >= max(small) - 0.05
    # (c) relief across the degradation range.
    populated = [(rel, n) for _lo, rel, n in by_degradation if n >= 3]
    assert all(rel < 1.0 for rel, _n in populated)
    # (d) the headline number: median relative CPI well below 1.
    assert median_rel < 0.85
