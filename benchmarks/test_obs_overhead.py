"""Meta-benchmark: telemetry-plane overhead (regression guard).

The fleet telemetry plane (``--telemetry``: per-window TSDB scrapes plus
alert evaluation) must stay in the noise — the acceptance bar is < 3%
wall-clock overhead over the same run with the plane off.  Each arm is
run several times and the best (minimum) wall time is compared, so a
single scheduler hiccup cannot fail the gate; the CI perf smoke enforces
the bar from the ``obs_overhead`` entry in ``BENCH_throughput.json``.
"""

import time

from conftest import run_once

from repro.core.config import CpiConfig
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import build_cluster
from repro.workloads import make_batch_job_spec
from repro.workloads.services import make_service_job_spec

SIM_MINUTES = 20
NUM_MACHINES = 10
NUM_TASKS = 100
ROUNDS = 3

#: The acceptance bar, shared with CI (which re-checks the JSON artifact).
MAX_OVERHEAD_FRACTION = 0.03


def _run_arm(telemetry: bool) -> dict:
    """One timed run of the reference workload; returns timing + checksums."""
    scenario = build_cluster(NUM_MACHINES, seed=3, config=CpiConfig(),
                             telemetry=telemetry)
    scenario.submit(make_service_job_spec("svc", num_tasks=50, seed=1))
    scenario.submit(make_batch_job_spec("batch", num_tasks=50, seed=2))
    start = time.perf_counter()
    scenario.simulation.run_minutes(SIM_MINUTES)
    elapsed = time.perf_counter() - start
    pipeline = scenario.pipeline
    return {
        "wall_seconds": elapsed,
        "samples": pipeline.total_samples,
        "incidents": len(pipeline.all_incidents()),
        "scrapes": (pipeline.obs.timeseries.scrapes
                    if pipeline.obs.timeseries else 0),
    }


def _best_of(telemetry: bool, rounds: int = ROUNDS) -> dict:
    arms = [_run_arm(telemetry) for _ in range(rounds)]
    best = min(arms, key=lambda a: a["wall_seconds"])
    return best


def test_obs_overhead(benchmark, report_sink, bench_json_sink):
    off, on = run_once(
        benchmark, lambda: (_best_of(False), _best_of(True)))
    overhead = on["wall_seconds"] / off["wall_seconds"] - 1.0

    report = ExperimentReport("meta_obs_overhead", "Telemetry-plane overhead")
    report.add("wall seconds (telemetry off)", "-", off["wall_seconds"],
               f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
               f"{SIM_MINUTES} sim-minutes, best of {ROUNDS}")
    report.add("wall seconds (telemetry on)", "-", on["wall_seconds"])
    report.add("overhead fraction", f"< {MAX_OVERHEAD_FRACTION}", overhead)
    report.add("scrapes recorded", f"{SIM_MINUTES}", on["scrapes"])
    report_sink(report)
    bench_json_sink(
        "obs_overhead",
        {
            "workload": (f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
                         f"full CPI2 pipeline, {SIM_MINUTES} sim-minutes, "
                         f"best of {ROUNDS}"),
            "telemetry_off": off,
            "telemetry_on": on,
            "overhead_fraction": overhead,
            "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        },
        summary=(f"obs overhead: off {off['wall_seconds']:.3f}s -> on "
                 f"{on['wall_seconds']:.3f}s ({overhead:+.2%})"))

    # The plane must observe, never perturb: identical simulation outputs.
    assert on["samples"] == off["samples"] == NUM_TASKS * SIM_MINUTES
    assert on["incidents"] == off["incidents"]
    # One scrape per sampling-window close.
    assert on["scrapes"] == SIM_MINUTES
    assert off["scrapes"] == 0
    assert overhead < MAX_OVERHEAD_FRACTION
