"""Meta-benchmark: the columnar sampling plane (window close).

The CPI2 duty cycle closes every machine's sampling window on the same
tick — once a simulated minute the whole fleet pays a per-task Python loop
(counter-snapshot dicts, per-event deltas, a deque-walking usage average,
one ``CpiSample`` object per survivor).  The vector sampler engine
(``REPRO_SAMPLER_ENGINE=vector``) turns that into array passes over the
counter matrix and the usage-ring matrix, emitting ``SampleColumns``
directly; ``tests/test_sampler_plane.py`` pins bit-parity, so this
benchmark only has to prove it is *faster*: the window-close microbench
gates at >= 2x, and a fleet-scale end-to-end run records the all-in gain.
Results merge into the ``sampler_plane`` entry of ``BENCH_throughput.json``
for CI to gate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.cluster.job import Job, JobSpec
from repro.cluster.machine import Machine
from repro.cluster.platform import get_platform
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.experiments.scenarios import scale_scenario
from repro.perf.sampler import CpiSampler
from repro.testing import QUIET_PROFILE
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import constant, on_off, with_noise

NUM_JOBS = 10
TASKS_PER_JOB = 10
WINDOWS = 30
WINDOW_SECONDS = 10
MIN_SPEEDUP = 2.0

E2E_MACHINES = 20
E2E_MINUTES = 5


def _demand_for(job: int, index: int, rng: np.random.Generator):
    if job % 2 == 0:
        return with_noise(constant(0.4 + 0.05 * index), 0.08, rng)
    return with_noise(
        on_off(1.2, 0.2, 300, duty=0.4, phase=int(rng.integers(300))),
        0.1, rng)


def _build_machine() -> Machine:
    # Scalar *demand* engine: charges land in the rings eagerly at every
    # tick instead of through the deferred ledger, so the timed close
    # measures sampling-plane work only (the ledger flush that would
    # otherwise fire inside the first usage read belongs to the demand
    # plane's benchmark, and both sampler engines pay it identically).
    machine = Machine("bench", get_platform("westmere-2.6"),
                      cpi_noise_sigma=0.0, demand_engine="scalar")
    for j in range(NUM_JOBS):
        job = Job(JobSpec(
            name=f"job-{j}", num_tasks=TASKS_PER_JOB,
            scheduling_class=(SchedulingClass.LATENCY_SENSITIVE if j % 2 == 0
                              else SchedulingClass.BATCH),
            priority_band=PriorityBand.NONPRODUCTION,
            cpu_limit_per_task=1.5,
            workload_factory=lambda i, j=j: SyntheticWorkload(
                base_cpi=1.0 + 0.01 * i, profile=QUIET_PROFILE,
                demand=_demand_for(j, i, np.random.default_rng(
                    np.random.SeedSequence((j, i)))))))
        for task in job.tasks:
            machine.place(task)
    return machine


def _time_window_closes(engine: str) -> tuple[float, list]:
    """Seconds spent in WINDOWS window *closes* (machine ticking untimed).

    Back-to-back windows: open at t, tick the machine through t+1..t+10,
    time only the close.  Returns (seconds, first window canonical) so the
    caller can spot-check parity before trusting the clock.
    """
    machine = _build_machine()
    sampler = CpiSampler(machine, engine=engine)
    total = 0.0
    first = None
    t = 0
    machine.tick(t)
    for _ in range(WINDOWS):
        sampler._open_window(t)
        for s in range(t + 1, t + WINDOW_SECONDS + 1):
            machine.tick(s)
        t += WINDOW_SECONDS
        start = time.perf_counter()
        samples = sampler._close_window(t)
        total += time.perf_counter() - start
        sampler._window_start = None
        sampler._snapshots = {}
        sampler._snapshot_columns = None
        if first is None:
            first = [(x.jobname, x.platforminfo, x.timestamp,
                      float(x.cpu_usage).hex(), float(x.cpi).hex(),
                      x.taskname) for x in samples]
    return total, first


def _e2e_seconds(engine: str) -> float:
    """Wall seconds for a fleet-scale pipeline run under ``engine``."""
    import os

    os.environ["REPRO_SAMPLER_ENGINE"] = engine
    try:
        scenario = scale_scenario(num_machines=E2E_MACHINES,
                                  tasks_per_job=2 * E2E_MACHINES)
        start = time.perf_counter()
        scenario.simulation.run_minutes(E2E_MINUTES)
        return time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_SAMPLER_ENGINE", None)


def test_sampler_plane_speedup(bench_json_sink):
    # Same machine build, same tick stream: one parity spot-check before
    # timing (the exhaustive bit-parity suite is tests/test_sampler_plane.py).
    scalar_s, scalar_first = _time_window_closes("scalar")
    vector_s, vector_first = _time_window_closes("vector")
    assert scalar_first == vector_first
    assert len(scalar_first) > 0

    # Best of three (1-core CI boxes are noisy).
    for _ in range(2):
        scalar_s = min(scalar_s, _time_window_closes("scalar")[0])
        vector_s = min(vector_s, _time_window_closes("vector")[0])

    n = NUM_JOBS * TASKS_PER_JOB
    closes = WINDOWS * n
    e2e_scalar = _e2e_seconds("scalar")
    e2e_vector = _e2e_seconds("vector")
    payload = {
        "workload": (f"{n}-task machine, {WINDOWS} window closes "
                     f"(snapshot deltas, validity masks, usage averaging, "
                     f"sample emission)"),
        "scalar_task_closes_per_second": closes / scalar_s,
        "vector_task_closes_per_second": closes / vector_s,
        "speedup": scalar_s / vector_s,
        "e2e_workload": (f"{E2E_MACHINES}-machine fleet, full CPI2 "
                         f"pipeline, {E2E_MINUTES} sim-minutes"),
        "e2e_scalar_seconds": e2e_scalar,
        "e2e_vector_seconds": e2e_vector,
        "e2e_speedup": e2e_scalar / e2e_vector,
    }
    bench_json_sink(
        "sampler_plane", payload,
        summary=(f"sampler_plane: {payload['speedup']:.1f}x window close "
                 f"({payload['scalar_task_closes_per_second']:,.0f} -> "
                 f"{payload['vector_task_closes_per_second']:,.0f} "
                 f"task-closes/s), e2e {payload['e2e_speedup']:.2f}x"))
    print(f"\nsampler plane: scalar {scalar_s:.3f}s, vector {vector_s:.3f}s "
          f"-> {payload['speedup']:.2f}x; "
          f"e2e {e2e_scalar:.2f}s -> {e2e_vector:.2f}s "
          f"({payload['e2e_speedup']:.2f}x)")
    assert payload["speedup"] >= MIN_SPEEDUP, (
        f"sampler plane speedup {payload['speedup']:.2f}x < {MIN_SPEEDUP}x")
