"""Meta-benchmark: fleet-scale throughput (50 machines, 500 tasks).

The pre-vectorization tick loop made this size impractical (~5x the
reference workload's per-tick work); the cluster-fused vector engine runs
all 500 tasks' physics as one batch per tick, so the per-machine Python
overhead is amortized and throughput should *rise* with density, not fall.
Results merge into ``BENCH_throughput.json`` next to the reference
benchmark's before/after numbers.
"""

from conftest import run_once

from repro.core.config import CpiConfig
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import build_cluster
from repro.perf.profiling import StageTimers
from repro.workloads import make_batch_job_spec
from repro.workloads.services import make_service_job_spec

SIM_MINUTES = 10
NUM_MACHINES = 50
NUM_TASKS = 500


def run_scaled_workload() -> dict:
    """50 machines, 500 tasks, full CPI2 pipeline, 10 simulated minutes."""
    timers = StageTimers()
    with timers.stage("build"):
        scenario = build_cluster(NUM_MACHINES, seed=11, config=CpiConfig())
        for i in range(5):
            scenario.submit(make_service_job_spec(
                f"svc-{i}", num_tasks=50, seed=100 + i))
            scenario.submit(make_batch_job_spec(
                f"batch-{i}", num_tasks=50, seed=200 + i))
    with timers.stage("simulate"):
        scenario.simulation.run_minutes(SIM_MINUTES)
    with timers.stage("analyze"):
        samples = scenario.pipeline.total_samples
    elapsed = timers.seconds("simulate")
    sim_seconds = SIM_MINUTES * 60
    task_ticks = sim_seconds * NUM_TASKS
    return {
        "wall_seconds": elapsed,
        "sim_seconds_per_wall_second": sim_seconds / elapsed,
        "task_ticks_per_wall_second": task_ticks / elapsed,
        "samples": samples,
        "stages": timers.report(),
    }


def test_scale_fleet_throughput(benchmark, report_sink, bench_json_sink):
    stats = run_once(benchmark, run_scaled_workload)

    report = ExperimentReport("meta_scale_fleet",
                              "Fleet-scale simulator throughput")
    report.add("task-ticks / wall second", "-",
               stats["task_ticks_per_wall_second"],
               "50 machines, 500 tasks, pipeline on")
    report.add("simulated seconds / wall second", "-",
               stats["sim_seconds_per_wall_second"])
    report.add("CPI samples produced", "500 x 10", stats["samples"])
    report_sink(report)
    bench_json_sink(
        "scale_fleet",
        {
            "workload": (f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
                         f"full CPI2 pipeline, {SIM_MINUTES} sim-minutes"),
            "result": stats,
        },
        summary=(f"scale-fleet: "
                 f"{stats['task_ticks_per_wall_second']:,.0f} task-ticks/s "
                 f"({NUM_MACHINES} machines / {NUM_TASKS} tasks)"))

    assert stats["samples"] == NUM_TASKS * SIM_MINUTES
    # Must clear the same floor as the reference workload: fleet scale is
    # the point of the fused engine.
    assert stats["task_ticks_per_wall_second"] > 30_000
