"""Meta-benchmark: fleet-scale throughput (50 machines, 500 tasks).

The pre-vectorization tick loop made this size impractical (~5x the
reference workload's per-tick work); the cluster-fused vector engine runs
all 500 tasks' physics as one batch per tick, so the per-machine Python
overhead is amortized and throughput should *rise* with density, not fall.

On top of that single-process floor, the shard sweep measures the multi-
core engine (``repro.cluster.shards``): the same workload partitioned
across 1/2/4 worker processes, byte-identical output (pinned by
``tests/test_shards.py``), wall-clock scaling gated only where the runner
actually has the cores.  The columnar micro-benchmark isolates the other
half of the PR: ``CpiAggregator.ingest_batch`` versus per-sample
``ingest`` on the identical sample stream.

Results merge into ``BENCH_throughput.json`` next to the reference
benchmark's before/after numbers.
"""

import os
import time

import numpy as np
from conftest import run_once

from repro.cluster.shards import run_sharded
from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.core.samplebatch import SampleColumns
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import scale_scenario
from repro.obs import Observability
from repro.perf.profiling import StageTimers
from repro.records import CpiSample

SIM_MINUTES = 10
NUM_MACHINES = 50
NUM_TASKS = 500
SHARD_JOBS = (1, 2, 4)
NUM_INGEST_SAMPLES = 150_000


def run_scaled_workload() -> dict:
    """50 machines, 500 tasks, full CPI2 pipeline, 10 simulated minutes."""
    timers = StageTimers()
    with timers.stage("build"):
        scenario = scale_scenario(num_machines=NUM_MACHINES)
    with timers.stage("simulate"):
        scenario.simulation.run_minutes(SIM_MINUTES)
    with timers.stage("analyze"):
        samples = scenario.pipeline.total_samples
    elapsed = timers.seconds("simulate")
    sim_seconds = SIM_MINUTES * 60
    task_ticks = sim_seconds * NUM_TASKS
    return {
        "wall_seconds": elapsed,
        "sim_seconds_per_wall_second": sim_seconds / elapsed,
        "task_ticks_per_wall_second": task_ticks / elapsed,
        "samples": samples,
        "stages": timers.report(),
    }


def test_scale_fleet_throughput(benchmark, report_sink, bench_json_sink):
    stats = run_once(benchmark, run_scaled_workload)

    report = ExperimentReport("meta_scale_fleet",
                              "Fleet-scale simulator throughput")
    report.add("task-ticks / wall second", "-",
               stats["task_ticks_per_wall_second"],
               "50 machines, 500 tasks, pipeline on")
    report.add("simulated seconds / wall second", "-",
               stats["sim_seconds_per_wall_second"])
    report.add("CPI samples produced", "500 x 10", stats["samples"])
    report_sink(report)
    bench_json_sink(
        "scale_fleet",
        {
            "workload": (f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
                         f"full CPI2 pipeline, {SIM_MINUTES} sim-minutes"),
            "result": stats,
        },
        summary=(f"scale-fleet: "
                 f"{stats['task_ticks_per_wall_second']:,.0f} task-ticks/s "
                 f"({NUM_MACHINES} machines / {NUM_TASKS} tasks)"))

    assert stats["samples"] == NUM_TASKS * SIM_MINUTES
    # Must clear the same floor as the reference workload: fleet scale is
    # the point of the fused engine.
    assert stats["task_ticks_per_wall_second"] > 30_000


def test_shard_sweep_throughput(report_sink, bench_json_sink):
    """The same fleet at 1/2/4 worker processes, on a persistent pool.

    Each job count runs three times against one :class:`ShardPool` —
    first touch pays process spawn and a replicated build per worker;
    by the third run every worker starts from a prebuilt replica, so the
    ``coordinator_spawn`` stage shows the warm-pool amortization the
    shared-memory transport PR claims.  The recorded throughput is the
    best (warm) run.  Correctness (sample count) is asserted
    unconditionally; the scaling gates only fire where the runner
    actually has the cores — a 1-core container records honest flat
    numbers (with ``cpu_count`` stamped) instead of a vacuous pass.
    """
    from conftest import warn_if_oversubscribed

    from repro.cluster.shards import ShardPool

    seconds = SIM_MINUTES * 60
    cores = os.cpu_count() or 1
    rounds = 3
    sweep: dict[str, dict] = {}
    pool = ShardPool()
    try:
        for jobs in SHARD_JOBS:
            warn_if_oversubscribed(jobs, "shard_sweep")
            walls = []
            spawn_seconds = []
            for _ in range(rounds):
                timers = StageTimers()
                start = time.perf_counter()
                result = run_sharded(scale_scenario,
                                     dict(num_machines=NUM_MACHINES),
                                     seconds=seconds, jobs=jobs,
                                     timers=timers, pool=pool)
                walls.append(time.perf_counter() - start)
                spawn_seconds.append(timers.seconds("coordinator_spawn"))
                assert result.total_samples == NUM_TASKS * SIM_MINUTES
                assert result.jobs == jobs
                stages = {name: entry["seconds"]
                          for name, entry in timers.report().items()
                          if name.startswith("coordinator")}
            wall = min(walls)
            sweep[str(jobs)] = {
                "wall_seconds": wall,
                "wall_seconds_cold": walls[0],
                "task_ticks_per_wall_second": seconds * NUM_TASKS / wall,
                "coordinator_spawn_cold": spawn_seconds[0],
                "coordinator_spawn_warm": spawn_seconds[-1],
                "coordinator_stages": stages,  # last (warmest) round
            }
    finally:
        pool.shutdown()
    base = sweep["1"]["task_ticks_per_wall_second"]
    for jobs in SHARD_JOBS:
        cell = sweep[str(jobs)]
        cell["speedup_vs_1_worker"] = (
            cell["task_ticks_per_wall_second"] / base)

    report = ExperimentReport("meta_shard_sweep",
                              "Sharded fleet execution throughput")
    for jobs in SHARD_JOBS:
        cell = sweep[str(jobs)]
        report.add(f"{jobs} worker(s): task-ticks / wall second", "-",
                   cell["task_ticks_per_wall_second"],
                   f"{cell['speedup_vs_1_worker']:.2f}x vs 1 worker, "
                   f"warm spawn {cell['coordinator_spawn_warm']:.3f}s")
    report_sink(report)
    bench_json_sink(
        "shard_sweep",
        {
            "workload": (f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
                         f"full CPI2 pipeline, {SIM_MINUTES} sim-minutes, "
                         f"run_sharded at jobs in {list(SHARD_JOBS)}, "
                         f"best of {rounds} on one persistent pool"),
            "cpu_count": cores,
            "jobs": sweep,
        },
        summary=("shard-sweep: " + ", ".join(
            f"{jobs}w {sweep[str(jobs)]['task_ticks_per_wall_second']:,.0f}"
            for jobs in SHARD_JOBS)
            + f" task-ticks/s ({cores} cores)"),
        parallel=True)

    # Scaling gates, only where the hardware can express them.  (On an
    # undersized box even the warm-spawn collapse can't show: prebuilds
    # have no spare core to overlap into, so reruns still wait on them.)
    warm4 = sweep["4"]
    if cores >= 2:
        assert sweep["2"]["speedup_vs_1_worker"] > 1.4, sweep["2"]
    else:
        print(f"SKIP shard scaling gate (2w > 1.4x): "
              f"only {cores} core(s) on this runner")
    if cores >= 4:
        assert warm4["speedup_vs_1_worker"] >= 2.5, warm4
        # The pool's point: warm reruns never pay process spawn again,
        # and prebuilt replicas collapse the ready-wait too.
        assert (warm4["coordinator_spawn_warm"]
                < max(0.5 * warm4["coordinator_spawn_cold"], 0.05)), warm4
    else:
        print(f"SKIP shard scaling gate (4w >= 2.5x, warm spawn ~0): "
              f"only {cores} core(s) on this runner")


def _synthetic_samples(n: int) -> list[CpiSample]:
    """A realistic multi-key, multi-task plausible sample stream."""
    rng = np.random.default_rng(7)
    cpis = rng.uniform(0.5, 3.0, n).tolist()
    usages = rng.uniform(0.1, 2.0, n).tolist()
    return [
        CpiSample(f"job-{i % 10}", "westmere-2.6", 1_000_000 + i,
                  usages[i], cpis[i], f"job-{i % 10}/{i % 20}")
        for i in range(n)
    ]


def test_ingest_batch_throughput(report_sink, bench_json_sink):
    """Columnar ingest vs per-sample ingest on the identical stream."""
    samples = _synthetic_samples(NUM_INGEST_SAMPLES)
    batch = SampleColumns.from_samples(samples)

    scalar = CpiAggregator(CpiConfig(), obs=Observability())
    start = time.perf_counter()
    scalar.ingest_many(samples)
    scalar_wall = time.perf_counter() - start

    columnar = CpiAggregator(CpiConfig(), obs=Observability())
    start = time.perf_counter()
    columnar.ingest_batch(batch)
    batch_wall = time.perf_counter() - start

    assert (columnar.total_samples_ingested
            == scalar.total_samples_ingested == NUM_INGEST_SAMPLES)
    speedup = scalar_wall / batch_wall

    report = ExperimentReport("meta_ingest_batch",
                              "Columnar aggregator ingest throughput")
    report.add("ingest() samples / second", "-",
               NUM_INGEST_SAMPLES / scalar_wall)
    report.add("ingest_batch() samples / second", "-",
               NUM_INGEST_SAMPLES / batch_wall, f"{speedup:.2f}x")
    report_sink(report)
    bench_json_sink(
        "ingest_batch",
        {
            "workload": (f"{NUM_INGEST_SAMPLES} plausible samples, "
                         "10 keys x 20 tasks"),
            "scalar_samples_per_second": NUM_INGEST_SAMPLES / scalar_wall,
            "batch_samples_per_second": NUM_INGEST_SAMPLES / batch_wall,
            "speedup": speedup,
        },
        summary=(f"ingest-batch: {NUM_INGEST_SAMPLES / batch_wall:,.0f} "
                 f"samples/s ({speedup:.2f}x over scalar ingest)"))

    # The whole point of the columnar wire format: same bits, less
    # per-sample dispatch.  Modest floor — this is a timing test.
    assert speedup > 1.1
