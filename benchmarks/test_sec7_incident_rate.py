"""Section 7 (intro): the fleet-wide antagonist-identification rate.

Paper: "It is identifying antagonists at an average rate of 0.37 times per
machine-day."  Our simulated fleet is far denser in antagonists than
Google's production mix (two antagonist jobs across ten machines), so the
measured rate overshoots; the check is that incidents are (a) present,
(b) a manageable trickle rather than a flood, and (c) spread across victims.
"""

from conftest import run_once

from repro.experiments.fleet import incident_rate
from repro.experiments.reporting import ExperimentReport


def test_sec7_identification_rate(benchmark, report_sink):
    result = run_once(benchmark,
                      lambda: incident_rate(num_machines=10, hours=4.0))

    report = ExperimentReport("sec7", "Antagonist identification rate")
    report.add("rate per machine-day", 0.37, result.rate_per_machine_day,
               "our fleet is antagonist-dense by construction")
    report.add("machine-days observed", "fleet-years", result.machine_days)
    report.add("incidents with identified antagonist", "-",
               result.incidents_identified)
    report.add("throttle actions", "-", result.throttle_actions)
    report.add("distinct victim jobs", "-", result.distinct_victim_jobs)
    report_sink(report)

    assert result.incidents_identified > 0
    # A trickle, not a flood: << one identification per machine-hour.
    assert result.rate_per_machine_day < 24.0
    assert result.distinct_victim_jobs >= 1
