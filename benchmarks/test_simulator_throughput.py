"""Meta-benchmark: simulator throughput (regression guard, not a paper figure).

Every experiment's wall-clock budget rests on the tick loop's speed.  This
benchmark pins the machine-seconds-per-wall-second rate so an accidental
O(n^2) in the tick path shows up as a benchmark regression rather than a
mysteriously slow evaluation run.

The reference workload is run twice — once on the ``legacy`` scalar tick
engine (the pre-vectorization baseline, kept as the golden reference) and
once on the default ``vector`` engine with the cluster-fused fast path —
and both results land in ``BENCH_throughput.json`` so the before/after
trajectory is tracked PR-over-PR.  See ``docs/performance.md``.
"""

from conftest import run_once

from repro.core.config import CpiConfig
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import build_cluster
from repro.perf.profiling import StageTimers
from repro.workloads import make_batch_job_spec
from repro.workloads.services import make_service_job_spec

SIM_MINUTES = 20
NUM_MACHINES = 10
NUM_TASKS = 100


def run_reference_workload(engine: str) -> dict:
    """10 machines, ~100 tasks, full CPI2 pipeline, 20 simulated minutes."""
    timers = StageTimers()
    with timers.stage("build"):
        scenario = build_cluster(NUM_MACHINES, seed=3, config=CpiConfig(),
                                 tick_engine=engine)
        scenario.submit(make_service_job_spec("svc", num_tasks=50, seed=1))
        scenario.submit(make_batch_job_spec("batch", num_tasks=50, seed=2))
    with timers.stage("simulate"):
        scenario.simulation.run_minutes(SIM_MINUTES)
    with timers.stage("analyze"):
        samples = scenario.pipeline.total_samples
        incidents = len(scenario.pipeline.all_incidents())
    elapsed = timers.seconds("simulate")
    sim_seconds = SIM_MINUTES * 60
    task_ticks = sim_seconds * NUM_TASKS
    return {
        "engine": engine,
        "wall_seconds": elapsed,
        "sim_seconds_per_wall_second": sim_seconds / elapsed,
        "task_ticks_per_wall_second": task_ticks / elapsed,
        "samples": samples,
        "incidents": incidents,
        "stages": timers.report(),
    }


def test_simulator_throughput(benchmark, report_sink, bench_json_sink):
    before, after = run_once(
        benchmark,
        lambda: (run_reference_workload("legacy"),
                 run_reference_workload("vector")))
    speedup = (after["task_ticks_per_wall_second"]
               / before["task_ticks_per_wall_second"])

    report = ExperimentReport("meta_throughput", "Simulator throughput")
    report.add("task-ticks / wall second (legacy)", "-",
               before["task_ticks_per_wall_second"],
               "10 machines, 100 tasks, pipeline on")
    report.add("task-ticks / wall second (vector)", "-",
               after["task_ticks_per_wall_second"])
    report.add("simulated seconds / wall second (vector)", "-",
               after["sim_seconds_per_wall_second"])
    report.add("vector/legacy speedup", ">= 3", speedup)
    report.add("CPI samples produced", "100 x 20", after["samples"])
    report_sink(report)
    bench_json_sink(
        "simulator_throughput",
        {
            "workload": (f"{NUM_MACHINES} machines x {NUM_TASKS} tasks, "
                         f"full CPI2 pipeline, {SIM_MINUTES} sim-minutes"),
            "before": before,
            "after": after,
            "speedup": speedup,
        },
        summary=(f"throughput: legacy "
                 f"{before['task_ticks_per_wall_second']:,.0f} -> vector "
                 f"{after['task_ticks_per_wall_second']:,.0f} "
                 f"task-ticks/s ({speedup:.2f}x)"))

    # Both engines must see the exact same simulation (the parity tests
    # prove byte-identical samples; here we sanity-check the counts).
    assert before["samples"] == after["samples"] == NUM_TASKS * SIM_MINUTES
    assert before["incidents"] == after["incidents"]
    # The evaluation is budgeted around the vectorized rate; the floor sits
    # at 30k task-ticks/s (raised from 10k pre-vectorization) and the
    # vector engine must hold >= 3x over the scalar baseline.
    assert after["task_ticks_per_wall_second"] > 30_000
    assert speedup >= 3.0
