"""Meta-benchmark: simulator throughput (regression guard, not a paper figure).

Every experiment's wall-clock budget rests on the tick loop's speed.  This
benchmark pins the machine-seconds-per-wall-second rate so an accidental
O(n^2) in the tick path shows up as a benchmark regression rather than a
mysteriously slow evaluation run.
"""

import time

from conftest import run_once

from repro.core.config import CpiConfig
from repro.experiments.reporting import ExperimentReport
from repro.experiments.scenarios import build_cluster
from repro.workloads import make_batch_job_spec
from repro.workloads.services import make_service_job_spec


def run_reference_workload():
    """10 machines, ~100 tasks, full CPI2 pipeline, 20 simulated minutes."""
    scenario = build_cluster(10, seed=3, config=CpiConfig())
    scenario.submit(make_service_job_spec("svc", num_tasks=50, seed=1))
    scenario.submit(make_batch_job_spec("batch", num_tasks=50, seed=2))
    start = time.perf_counter()
    scenario.simulation.run_minutes(20)
    elapsed = time.perf_counter() - start
    sim_seconds = 20 * 60
    task_ticks = sim_seconds * 100
    return {
        "sim_seconds_per_wall_second": sim_seconds / elapsed,
        "task_ticks_per_wall_second": task_ticks / elapsed,
        "samples": scenario.pipeline.total_samples,
    }


def test_simulator_throughput(benchmark, report_sink):
    stats = run_once(benchmark, run_reference_workload)

    report = ExperimentReport("meta_throughput", "Simulator throughput")
    report.add("simulated seconds / wall second", "-",
               stats["sim_seconds_per_wall_second"],
               "10 machines, 100 tasks, pipeline on")
    report.add("task-ticks / wall second", "-",
               stats["task_ticks_per_wall_second"])
    report.add("CPI samples produced", "100 x 20", stats["samples"])
    report_sink(report)

    # The evaluation was budgeted around ~50k task-ticks/s; regressions an
    # order of magnitude below that make the benches painful.
    assert stats["task_ticks_per_wall_second"] > 10_000
    assert stats["samples"] == 100 * 20
