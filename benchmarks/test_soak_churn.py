"""Soak: CPI2 under sustained job churn.

Not a paper figure — an operational stability check a production rollout
demands: jobs arriving and completing continuously for two simulated hours
while CPI2 detects and throttles, with every agent/pipeline invariant intact
at the end.
"""

import numpy as np
from conftest import run_once

from repro.cluster.job import Job
from repro.cluster.scheduler import PlacementError
from repro.cluster.task import TaskState
from repro.core.config import CpiConfig
from repro.experiments.scenarios import build_cluster
from repro.workloads import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_batch_job_spec,
)
from repro.workloads.services import make_service_job_spec


def run_soak(hours=2.0, seed=0):
    config = CpiConfig(spec_refresh_period=1200, min_tasks_for_spec=4,
                       min_samples_per_task=5)
    scenario = build_cluster(8, seed=seed, config=config)
    sim = scenario.simulation
    rng = np.random.default_rng(seed)
    scenario.submit(make_service_job_spec("stable-svc", num_tasks=16,
                                          seed=seed))
    arrivals = 0
    placement_failures = 0
    kinds = list(AntagonistKind)
    for step in range(int(hours * 12)):  # every 5 minutes, churn
        sim.run_minutes(5)
        batch = make_batch_job_spec(
            f"churn-batch-{step}", num_tasks=int(rng.integers(2, 6)),
            seed=seed + step, demand_level=float(rng.uniform(0.4, 1.5)))
        # Short-lived: completes after a bounded amount of work.
        batch = type(batch)(**{
            **batch.__dict__,
            "workload_factory": _finite_factory(batch, rng)})
        try:
            scenario.submit(batch)
            arrivals += 1
        except PlacementError:
            placement_failures += 1
        if step % 4 == 0:
            ant = make_antagonist_job_spec(
                f"churn-ant-{step}", kinds[step % len(kinds)], num_tasks=1,
                seed=seed + 1000 + step, demand_scale=1.2)
            ant = type(ant)(**{**ant.__dict__,
                               "workload_factory": _finite_factory(ant, rng)})
            try:
                scenario.submit(ant)
                arrivals += 1
            except PlacementError:
                placement_failures += 1
    return scenario, arrivals, placement_failures


def _finite_factory(spec, rng):
    base = spec.workload_factory
    lifetime = float(rng.uniform(600, 1800))

    def factory(index):
        workload = base(index)
        original = workload.on_tick

        def on_tick(t, granted, capped):
            outcome = original(t, granted, capped)
            if outcome is None and workload.granted_cpu_seconds > lifetime:
                return "completed"
            return outcome

        workload.on_tick = on_tick
        return workload

    return factory


def test_soak_two_hours_of_churn(benchmark, report_sink):
    scenario, arrivals, failures = run_once(benchmark, run_soak)
    from repro.experiments.reporting import ExperimentReport

    sim = scenario.simulation
    pipeline = scenario.pipeline
    incidents = pipeline.all_incidents()
    report = ExperimentReport("soak", "Two hours of job churn")
    report.add("jobs submitted", "-", arrivals)
    report.add("placement rejections", "tolerated", failures)
    report.add("samples processed", "-", pipeline.total_samples)
    report.add("incidents", "-", len(incidents))
    report.add("specs learned", "-", len(pipeline.aggregator.specs()))
    report_sink(report)

    assert arrivals > 20
    assert pipeline.total_samples > 1000
    # Invariants after churn:
    for machine in sim.machines.values():
        # Every resident task believes it is running here.
        for task in machine.resident_tasks():
            assert task.state is TaskState.RUNNING
            assert task.machine_name == machine.name
        # Counter sets exist only for residents (departures drop theirs).
        resident = set(machine.resident_cgroup_names())
        assert set(machine.counters.known_cgroups()) <= resident
    # Follow-up queues drain: only not-yet-due checks may remain.
    for agent in pipeline.agents.values():
        assert all(f.due_at > sim.now - 60 for f in agent._followups)
    # The stable service kept its spec through the churn.
    assert pipeline.aggregator.spec_for("stable-svc", "westmere-2.6")
