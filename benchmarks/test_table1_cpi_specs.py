"""Table 1: CPI specs of representative latency-sensitive jobs.

Paper values: Job A 0.88 +/- 0.09 (312 tasks), Job B 1.36 +/- 0.26 (1040),
Job C 2.03 +/- 0.20 (1250).  Task counts are scaled by 10x; the learned
means/stddevs should land near the paper's.
"""

from conftest import run_once

from repro.experiments.metric_validation import representative_cpi_specs
from repro.experiments.reporting import ExperimentReport

PAPER = {"job-A": (0.88, 0.09), "job-B": (1.36, 0.26), "job-C": (2.03, 0.20)}


def test_table1_representative_specs(benchmark, report_sink):
    rows = run_once(benchmark, representative_cpi_specs)

    report = ExperimentReport("table1", "Representative job CPI specs")
    for name, mean, std, tasks in rows:
        paper_mean, paper_std = PAPER[name]
        report.add(f"{name} CPI mean ({tasks} tasks)", paper_mean, mean)
        report.add(f"{name} CPI stddev", paper_std, std)
    report_sink(report)

    by_name = {name: (mean, std) for name, mean, std, _ in rows}
    for name, (paper_mean, paper_std) in PAPER.items():
        mean, std = by_name[name]
        assert abs(mean - paper_mean) / paper_mean < 0.25
        assert std < 0.5 * mean  # tasks in a job are similar
    # Ordering across jobs is preserved.
    assert by_name["job-A"][0] < by_name["job-B"][0] < by_name["job-C"][0]
