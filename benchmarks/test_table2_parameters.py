"""Table 2: CPI2 parameters and their default values — verbatim fidelity.

Not a measurement: a checked contract that the library defaults are exactly
the deployed system's.
"""

from conftest import run_once

from repro.core.config import DEFAULT_CONFIG
from repro.experiments.reporting import ExperimentReport


def test_table2_defaults(benchmark, report_sink):
    config = run_once(benchmark, lambda: DEFAULT_CONFIG)

    rows = [
        ("sampling duration (s)", 10, config.sampling_duration),
        ("sampling frequency (s)", 60, config.sampling_period),
        ("spec recalculation (s)", 24 * 3600, config.spec_refresh_period),
        ("required CPU usage (CPU-sec/sec)", 0.25, config.min_cpu_usage),
        ("outlier threshold 1 (sigmas)", 2.0, config.outlier_stddevs),
        ("outlier threshold 2 (violations)", 3, config.anomaly_violations),
        ("outlier window (s)", 300, config.anomaly_window),
        ("antagonist correlation threshold", 0.35,
         config.correlation_threshold),
        ("hard-cap quota, batch (CPU-sec/sec)", 0.1,
         config.hardcap_quota_batch),
        ("hard-cap quota, best-effort", 0.01,
         config.hardcap_quota_best_effort),
        ("hard-cap duration (s)", 300, config.hardcap_duration),
    ]
    report = ExperimentReport("table2", "CPI2 parameters (defaults)")
    for name, paper, measured in rows:
        report.add(name, paper, measured)
    report_sink(report)

    for _name, paper, measured in rows:
        assert measured == paper
