#!/usr/bin/env python3
"""Feedback-driven adaptive capping (paper Section 9, implemented).

"Our fixed hard-capping limits are rather crude.  We hope to introduce a
feedback-driven policy that dynamically adjusts the amount of throttling to
keep the victim CPI degradation just below an acceptable threshold."

:class:`AdaptiveCapController` does that: each episode's outcome (victim
recovered or not) halves or doubles the next episode's quota.  This example
pits it against a strong antagonist and prints the quota trajectory —
tightening until the victim recovers, then relaxing to give the antagonist
back whatever CPU the victim can tolerate.

Run:  python examples/adaptive_capping.py
"""

from repro import (
    AdaptiveCapController,
    ClusterSimulation,
    CpiConfig,
    CpiPipeline,
    CpiSpec,
    Job,
    Machine,
    SimConfig,
    get_platform,
)
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec


def main() -> None:
    platform = get_platform("westmere-2.6")
    machine = Machine("m0", platform, cpi_noise_sigma=0.03)
    # Short cap episodes so several feedback rounds fit in the demo.
    config = CpiConfig(hardcap_duration=180)
    sim = ClusterSimulation([machine], SimConfig(seed=5))
    pipeline = CpiPipeline(
        sim, config,
        throttler_factory=lambda: AdaptiveCapController(
            config, min_quota=0.01, max_quota=2.0))

    sim.scheduler.submit(Job(make_service_job_spec(
        "frontend", num_tasks=1, seed=1)))
    # A strong, persistent antagonist: 0.1 CPU-sec/sec would over-throttle it
    # once the victim is safe, so the adaptive controller relaxes.
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "batch-grinder", AntagonistKind.MEMBW_HOG, num_tasks=1, seed=2,
        demand_scale=1.4)))
    pipeline.bootstrap_specs([CpiSpec(
        jobname="frontend", platforminfo=platform.name, num_samples=10_000,
        cpu_usage_mean=1.0, cpi_mean=1.05, cpi_stddev=0.08)])

    agent = pipeline.agents["m0"]
    controller = agent.throttler
    assert isinstance(controller, AdaptiveCapController)

    print("running 2 hours with adaptive capping...")
    last_reported = 0
    for _minute in range(120):
        sim.run_minutes(1)
        actions = controller.actions[last_reported:]
        for action in actions:
            print(f"  t={action.applied_at:>5}s cap {action.taskname} to "
                  f"{action.quota:.3f} CPU-sec/sec "
                  f"(victim {action.victim_taskname})")
        last_reported = len(controller.actions)
        # Feed the episode outcomes back (in production the agent's
        # follow-up does this; here we drive it off the incident log).
        for incident in agent.incidents:
            if incident.recovered is None or getattr(
                    incident, "_fed_back", False):
                continue
            target = incident.decision.target
            if target is not None:
                quota = controller.report_outcome(
                    target.name, bool(incident.recovered))
                print(f"       outcome recovered={incident.recovered} "
                      f"-> next quota {quota:.3f}")
            incident._fed_back = True  # noqa: SLF001 - demo bookkeeping

    final = controller.current_quota("batch-grinder/0")
    print(f"\nfinal adaptive quota for batch-grinder/0: {final}")
    print("episodes:", len(controller.actions))


if __name__ == "__main__":
    main()
