#!/usr/bin/env python3
"""Offline performance forensics (the paper's Dremel workflow, Section 5).

"Job owners and administrators can issue SQL-like queries against this data
... e.g., to find the most aggressive antagonists for a job in a particular
time window."

This example runs a busy cluster for a while to build up an incident log,
then plays job-owner: who hurt my job, when, how badly, and did throttling
help?

Run:  python examples/forensics_offline.py
"""

from repro import ClusterSimulation, CpiConfig, CpiPipeline, CpiSpec, Job, Machine, SimConfig, get_platform
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec


def main() -> None:
    platform = get_platform("westmere-2.6")
    machines = [Machine(f"m{i}", platform, cpi_noise_sigma=0.03)
                for i in range(4)]
    sim = ClusterSimulation(machines, SimConfig(seed=17))
    pipeline = CpiPipeline(sim, CpiConfig())

    for name, base_cpi in (("ads-serving", 1.0), ("image-render", 1.2)):
        sim.scheduler.submit(Job(make_service_job_spec(
            name, num_tasks=4, seed=hash(name) % 997, base_cpi=base_cpi)))
        pipeline.bootstrap_specs([CpiSpec(
            jobname=name, platforminfo=platform.name, num_samples=10_000,
            cpu_usage_mean=1.0, cpi_mean=base_cpi * 1.05,
            cpi_stddev=base_cpi * 0.08)])
    for name, kind in (("video-transcode", AntagonistKind.VIDEO_PROCESSING),
                       ("sim-physics", AntagonistKind.SCIENTIFIC_SIMULATION)):
        sim.scheduler.submit(Job(make_antagonist_job_spec(
            name, kind, num_tasks=2, seed=hash(name) % 991,
            demand_scale=1.3)))

    print("running 90 minutes to accumulate an incident log...")
    sim.run_minutes(90)
    store = pipeline.forensics
    print(f"incident log holds {len(store)} records\n")

    print("Q1: most aggressive antagonists overall")
    for job, count in store.top_antagonists(limit=5):
        print(f"   {job}: {count} incidents")

    print("\nQ2: who hurt ads-serving in the first half hour?")
    rows = (store.query()
            .where(victim_job="ads-serving")
            .between(0, 1800)
            .order_by("correlation", descending=True)
            .limit(5)
            .run())
    for row in rows:
        print(f"   t={row.time_seconds}s {row.antagonist_job} "
              f"corr={row.correlation:.2f} action={row.action}")

    print("\nQ3: did throttling work? (recovered counts by antagonist)")
    throttled = store.query().where(action="throttle")
    for key, count in sorted(throttled.group_count("antagonist_job").items()):
        wins = [r for r in store.query().where(action="throttle",
                                               antagonist_job=key).run()
                if r.recovered]
        print(f"   {key}: {len(wins)}/{count} victims recovered")

    print("\nQ4: worst single incident (highest victim CPI vs threshold)")
    worst = max(store.records,
                key=lambda r: r.victim_cpi / r.cpi_threshold)
    print(f"   {worst.victim_task} hit CPI {worst.victim_cpi:.2f} "
          f"({worst.victim_cpi / worst.cpi_threshold:.1f}x its threshold) "
          f"on {worst.machine}; blamed {worst.antagonist_job}")

    print("\nQ5: mean relief per antagonist (GROUP BY with an aggregate)")
    reliefs = (store.query().where(action="throttle")
               .group_agg("antagonist_job", "relative_cpi", "mean"))
    for job, relief in sorted(reliefs.items()):
        print(f"   capping {job}: victims' CPI fell to {relief:.2f}x")

    print("\nQ6: persist the log for tomorrow's analysis")
    from repro.core.storage import save_forensics
    out = "/tmp/cpi2-incidents.jsonl"
    written = save_forensics(out, store)
    print(f"   wrote {written} records to {out}")


if __name__ == "__main__":
    main()
