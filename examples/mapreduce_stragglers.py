#!/usr/bin/env python3
"""Straggler duplication vs fixing the interference (paper Section 2).

"Although identifying laggards and starting up replacements for them in a
timely fashion often improves performance, it typically does so at the cost
of additional resources. ... Better would be to eliminate the original
slowdown."

A MapReduce job runs with one worker pinned next to a cache thrasher.  The
MapReduce coordinator's straggler detector duly nominates that worker for
duplication — the blunt instrument.  CPI2 instead identifies and caps the
thrasher, and the straggler catches back up without spending a second
machine's worth of resources.

Run:  python examples/mapreduce_stragglers.py
"""

import numpy as np

from repro import ClusterSimulation, CpiConfig, CpiPipeline, CpiSpec, Job, Machine, SimConfig, get_platform
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.batch import MapReduceCoordinator, make_mapreduce_job_spec


def progress_spread(coordinator: MapReduceCoordinator) -> tuple[float, float]:
    progress = coordinator.progress()
    values = list(progress.values())
    return float(np.median(values)), float(min(values))


def main() -> None:
    platform = get_platform("westmere-2.6")
    machines = [Machine(f"m{i}", platform, cpi_noise_sigma=0.03)
                for i in range(4)]
    sim = ClusterSimulation(machines, SimConfig(seed=9))
    pipeline = CpiPipeline(sim, CpiConfig())

    # The MapReduce job is batch, but here it is the *victim*, so we mark it
    # protection-eligible ("or because it is explicitly marked as eligible").
    mr_spec = make_mapreduce_job_spec("wordcount", num_workers=8, seed=3,
                                      demand_level=2.0, give_up_episode=99)
    mr_spec = type(mr_spec)(**{**mr_spec.__dict__, "protection_eligible": True})
    mr_job = Job(mr_spec)
    sim.scheduler.submit(mr_job)

    thrasher = Job(make_antagonist_job_spec(
        "cache-thrasher", AntagonistKind.CACHE_THRASHER, num_tasks=1,
        seed=4, demand_scale=1.5))
    # Pin the thrasher next to worker 0 by placing it on the same machine.
    worker0 = mr_job.tasks[0]
    target_machine = sim.machines[worker0.machine_name]
    target_machine.place(thrasher.tasks[0])

    pipeline.bootstrap_specs([CpiSpec(
        jobname="wordcount", platforminfo=platform.name, num_samples=10_000,
        cpu_usage_mean=2.0, cpi_mean=1.30, cpi_stddev=0.10)])

    coordinator = MapReduceCoordinator(mr_job, straggler_fraction=0.7)

    print("running 12 minutes with the thrasher active...")
    sim.run_minutes(12)
    median, slowest = progress_spread(coordinator)
    print(f"  median worker progress: {median:.0f} CPU-s;"
          f" slowest: {slowest:.0f} CPU-s")
    nominated = coordinator.nominate_duplicates()
    print(f"  straggler handler wants to duplicate: "
          f"{[t.name for t in nominated]} (costing a second set of resources)")

    print("\n...meanwhile CPI2 goes after the cause:")
    sim.run_minutes(25)
    for incident in pipeline.all_incidents():
        if incident.decision.action.value != "throttle":
            continue
        print(f"  t={incident.time_seconds}s capped"
              f" {incident.decision.target.name}"
              f" (correlation {incident.decision.score.correlation:.2f});"
              f" victim {incident.victim_taskname}"
              f" recovered={incident.recovered}")

    median, slowest = progress_spread(coordinator)
    print(f"\nafter throttling: median {median:.0f} CPU-s,"
          f" slowest {slowest:.0f} CPU-s"
          f" (gap {100 * (1 - slowest / median):.0f}%)")
    print("the straggler caught up without duplicating any work.")


if __name__ == "__main__":
    main()
