#!/usr/bin/env python3
"""An on-call shift with the operator console (paper Section 5).

"We provide an interface to system operators so they can hard-cap suspects,
and turn CPI protection on or off for an entire cluster."

The scenario: CPI2 is being rolled out conservatively, so automatic
throttling is off.  The on-call engineer watches the incident feed, caps a
suspect by hand, watches the victim recover, then — confidence earned —
flips cluster-wide protection on and lets CPI2 handle the next offender
itself.  A persistent reoffender finally gets killed-and-restarted
elsewhere.

Run:  python examples/operator_oncall.py
"""

from repro import (
    ClusterSimulation,
    CpiConfig,
    CpiPipeline,
    CpiSpec,
    Job,
    Machine,
    OperatorConsole,
    SimConfig,
    get_platform,
)
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec


def main() -> None:
    platform = get_platform("westmere-2.6")
    machines = [Machine(f"m{i}", platform, cpi_noise_sigma=0.03)
                for i in range(3)]
    # Conservative rollout: detection on, enforcement off.
    config = CpiConfig(auto_throttle=False)
    sim = ClusterSimulation(machines, SimConfig(seed=21))
    pipeline = CpiPipeline(sim, config)
    console = OperatorConsole(pipeline)

    sim.scheduler.submit(Job(make_service_job_spec("payments", num_tasks=3,
                                                   seed=1)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "video-batch", AntagonistKind.VIDEO_PROCESSING, num_tasks=1, seed=2,
        demand_scale=1.4)))
    pipeline.bootstrap_specs([CpiSpec("payments", platform.name, 10_000,
                                      1.0, 1.05, 0.08)])

    print(f"protection enabled: {console.protection_enabled}")
    print("\n-- shift hour 1: report-only mode --")
    sim.run_minutes(20)
    status = console.status()
    print(f"status: {status.incidents_total} incidents, "
          f"{status.active_caps} active caps, "
          f"{status.anomalies_seen} anomalies seen")
    suspects = [i for i in pipeline.all_incidents()
                if i.decision.target is not None]
    if suspects:
        named = suspects[-1].decision.target.name
        print(f"CPI2 names {named} "
              f"(corr {suspects[-1].decision.score.correlation:.2f}); "
              "capping it by hand for 5 minutes")
        console.cap_task(named)
        sim.run_minutes(6)
        post = [i for i in pipeline.all_incidents()[-3:]]
        print(f"status after manual cap: active caps = "
              f"{console.status().active_caps}")

    print("\n-- shift hour 2: confidence earned, protection on --")
    console.enable_protection()
    sim.run_minutes(40)
    status = console.status()
    print(f"status: {status.incidents_total} incidents total, "
          f"{status.incidents_open} ameliorations in flight")
    print("worst offenders:", console.worst_offenders(limit=3))

    offenders = console.worst_offenders(limit=1)
    if offenders:
        job_name = offenders[0][0]
        task_name = f"{job_name}/0"
        try:
            new_home = console.kill_and_restart(task_name)
            print(f"\npersistent offender {task_name} killed and restarted "
                  f"on {new_home} — 'our version of task migration'")
        except KeyError:
            print(f"\n{task_name} no longer running; nothing to migrate")

    sim.run_minutes(10)
    print(f"\nend of shift: {console.status()}")


if __name__ == "__main__":
    main()
