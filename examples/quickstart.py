#!/usr/bin/env python3
"""Quickstart: watch CPI2 catch and throttle an antagonist.

One machine hosts a latency-sensitive service next to a bursty
video-processing batch job.  CPI2 samples per-task CPI once a minute,
notices the service's CPI blowing past its spec, correlates the bad minutes
with the batch job's CPU bursts, hard-caps it for five minutes, and the
service recovers.

Run:  python examples/quickstart.py
"""

from repro import (
    ClusterSimulation,
    CpiConfig,
    CpiPipeline,
    CpiSpec,
    Job,
    Machine,
    SimConfig,
    get_platform,
)
from repro.analysis import sparkline
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec


def main() -> None:
    # -- a machine, a victim, an antagonist ---------------------------------
    platform = get_platform("westmere-2.6")
    machine = Machine("demo-machine", platform, cpi_noise_sigma=0.03)
    sim = ClusterSimulation([machine], SimConfig(seed=42))
    config = CpiConfig()  # the paper's Table 2 defaults
    pipeline = CpiPipeline(sim, config)

    pipeline.log_samples = True  # keep the CPI trace for the plot below
    service = Job(make_service_job_spec("frontend", num_tasks=1, seed=1))
    antagonist = Job(make_antagonist_job_spec(
        "video-transcode", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=2, demand_scale=1.3))
    sim.scheduler.submit(service)
    sim.scheduler.submit(antagonist)

    # Warm-start the service's CPI spec (in production this comes from the
    # aggregator's history of the job's prior runs).
    pipeline.bootstrap_specs([CpiSpec(
        jobname="frontend", platforminfo=platform.name, num_samples=10_000,
        cpu_usage_mean=1.0, cpi_mean=1.05, cpi_stddev=0.08)])

    # -- run half an hour of cluster time ------------------------------------
    print("running 30 simulated minutes...")
    sim.run_minutes(30)

    # -- what happened --------------------------------------------------------
    incidents = pipeline.all_incidents()
    print(f"\n{len(incidents)} incident(s) raised:")
    for incident in incidents:
        top = incident.top_suspect
        print(f"  t={incident.time_seconds:>5}s  victim={incident.victim_taskname}"
              f"  cpi={incident.victim_cpi:.2f} (threshold"
              f" {incident.cpi_threshold:.2f})")
        print(f"          action={incident.decision.action.value}"
              f"  target={top.taskname if top else '-'}"
              f"  correlation={top.correlation:.2f}" if top else "")
        if incident.recovered is not None:
            print(f"          outcome: recovered={incident.recovered}"
                  f"  relative CPI={incident.relative_cpi:.2f}")

    caps = [a for agent in pipeline.agents.values()
            for a in agent.throttler.actions]
    print(f"\nhard-caps applied: {len(caps)}")
    for action in caps:
        print(f"  {action.taskname} capped to {action.quota} CPU-sec/sec at"
              f" t={action.applied_at}s for"
              f" {action.expires_at - action.applied_at}s"
              f" (protecting {action.victim_taskname})")

    trace = [s.cpi for s in pipeline.sample_log if s.jobname == "frontend"]
    print(f"\nvictim CPI over the run (one block per minute, threshold "
          f"{1.05 + 2 * 0.08:.2f}):")
    print("  " + sparkline(trace))

    assert any(i.recovered for i in incidents), "expected a recovery"
    print("\nthe victim recovered after throttling — quickstart complete.")


if __name__ == "__main__":
    main()
