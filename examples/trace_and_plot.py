#!/usr/bin/env python3
"""Record a throttling episode and render it in the terminal.

The paper's case-study figures plot a victim's CPI against an antagonist's
CPU usage around a hard-capping event.  This example reproduces that
workflow end to end: hook a :class:`TraceRecorder` onto the simulation, let
CPI2 do its thing, then render the same two panels Figure 9 shows — as
terminal plots — and save the raw trace for offline analysis.

Run:  python examples/trace_and_plot.py
"""

from repro import (
    ClusterSimulation,
    CpiConfig,
    CpiPipeline,
    CpiSpec,
    Job,
    Machine,
    SimConfig,
    get_platform,
)
from repro.analysis.viz import timeseries
from repro.cluster.trace import TraceRecorder
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.services import make_service_job_spec


def main() -> None:
    platform = get_platform("westmere-2.6")
    machine = Machine("m0", platform, cpi_noise_sigma=0.03)
    sim = ClusterSimulation([machine], SimConfig(seed=11))
    pipeline = CpiPipeline(sim, CpiConfig())
    recorder = TraceRecorder(
        sim, task_filter=lambda name: name in ("frontend/0", "thrasher/0"),
        interval=5)

    sim.scheduler.submit(Job(make_service_job_spec("frontend", num_tasks=1,
                                                   seed=1)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "thrasher", AntagonistKind.CACHE_THRASHER, num_tasks=1, seed=2,
        demand_scale=1.4)))
    pipeline.bootstrap_specs([CpiSpec("frontend", platform.name, 10_000,
                                      1.0, 1.05, 0.08)])

    print("running 40 simulated minutes...")
    sim.run_minutes(40)

    caps = [a for agent in pipeline.agents.values()
            for a in agent.throttler.actions]
    print(f"{len(caps)} hard-cap(s); first at "
          f"t={caps[0].applied_at}s" if caps else "no caps applied")

    _, victim_cpi = recorder.series("frontend/0", field="cpi")
    _, antagonist_cpu = recorder.series("thrasher/0", field="grant")
    print("\nvictim CPI (cf. Figure 9 top panel):")
    print(timeseries(victim_cpi, width=70, height=7))
    print("\nantagonist CPU usage (cf. Figure 9 bottom panel; capped "
          "stretches read as flat valleys):")
    print(timeseries(antagonist_cpu, width=70, height=7))

    out = "/tmp/cpi2-trace.jsonl"
    written = recorder.save(out)
    print(f"\nsaved {written} trace points to {out} for offline analysis")


if __name__ == "__main__":
    main()
