#!/usr/bin/env python3
"""Protecting a web-search service across a small cluster.

A three-tier search service (leaf / intermediate / root) shares six machines
with batch work, including two antagonist jobs.  CPI2 learns the search
tiers' CPI specs from scratch, protects the leaves when the antagonists
flare up, and at the end feeds anti-affinity hints back to the scheduler so
the worst victim/antagonist pairs stop sharing machines — the paper's
Section 9 future work, closed.

Run:  python examples/websearch_protection.py
"""

from repro import ClusterSimulation, CpiConfig, CpiPipeline, Job, Machine, SimConfig, get_platform
from repro.perf.sampler import SamplerConfig
from repro.workloads import AntagonistKind, make_antagonist_job_spec
from repro.workloads.websearch import SearchTier, make_websearch_job_spec


def main() -> None:
    # Spec learning accelerated: refresh every 10 minutes instead of daily,
    # and accept smaller sample populations (it is a small demo cluster).
    config = CpiConfig(spec_refresh_period=600, min_tasks_for_spec=4,
                       min_samples_per_task=5)
    machines = [Machine(f"node-{i}", get_platform("westmere-2.6"),
                        cpi_noise_sigma=0.03) for i in range(6)]
    sim = ClusterSimulation(machines, SimConfig(
        seed=7, sampler=SamplerConfig(config.sampling_duration,
                                      config.sampling_period)))
    pipeline = CpiPipeline(sim, config)

    for tier, count in ((SearchTier.LEAF, 12), (SearchTier.INTERMEDIATE, 6),
                        (SearchTier.ROOT, 2)):
        sim.scheduler.submit(Job(make_websearch_job_spec(
            f"search-{tier.value}", tier, num_tasks=count, seed=hash(tier) % 1000)))

    print("phase 1: learning CPI specs (20 min, search service only)...")
    sim.run_minutes(20)
    for key, spec in sorted(pipeline.aggregator.specs().items()):
        print(f"  learned {key.jobname:>20} on {key.platforminfo}: "
              f"CPI {spec.cpi_mean:.2f} +/- {spec.cpi_stddev:.2f} "
              f"({spec.num_samples} samples)")

    print("\nphase 2: batch antagonists arrive; protection live (60 min)...")
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "video-transcode", AntagonistKind.VIDEO_PROCESSING, num_tasks=2,
        seed=31, demand_scale=1.2)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "log-compressor", AntagonistKind.COMPRESSION, num_tasks=2,
        seed=32, demand_scale=1.2)))
    sim.run_minutes(60)
    incidents = pipeline.all_incidents()
    throttles = [i for i in incidents if i.decision.action.value == "throttle"]
    recovered = [i for i in throttles if i.recovered]
    print(f"  incidents: {len(incidents)}, throttles: {len(throttles)}, "
          f"recoveries: {len(recovered)}")
    print("  most aggressive antagonists:",
          pipeline.forensics.top_antagonists(limit=3))

    print("\nphase 3: feeding anti-affinity hints to the scheduler...")
    installed = pipeline.apply_scheduler_hints(min_incidents=2)
    print(f"  {installed} victim/antagonist pairs anti-affinitised")
    for victim_job, antagonist_job in pipeline.forensics.scheduler_hints(2):
        print(f"    {victim_job}  x  {antagonist_job}")


if __name__ == "__main__":
    main()
