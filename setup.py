"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` needs PEP 660 editable-wheel support (the `wheel`
package); this offline environment lacks it, so `python setup.py develop`
provides the legacy editable-install path.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
