"""CPI2: CPU performance isolation for shared compute clusters.

A full reproduction of Zhang, Tune, Hagmann, Jnagal, Gokhale & Wilkes,
"CPI2: CPU performance isolation for shared compute clusters" (EuroSys
2013), including the cluster/perf-counter substrates the paper ran on.

Quick tour::

    from repro import (
        CpiConfig, CpiPipeline, ClusterSimulation, Machine, Job,
        get_platform,
    )
    from repro.workloads import make_websearch_job_spec, make_antagonist_job_spec

See ``examples/quickstart.py`` for a complete victim-meets-antagonist run.
"""

from repro.cluster import (
    ClusterScheduler,
    ClusterSimulation,
    Job,
    JobSpec,
    Machine,
    PlacementError,
    Platform,
    PriorityBand,
    SchedulingClass,
    SimConfig,
    Task,
    TaskState,
    get_platform,
)
from repro.faults import (
    FAULT_PROFILES,
    AgentCheckpoint,
    FaultPlane,
    FaultProfile,
    LinkFaults,
    RetryPolicy,
    resolve_fault_profile,
)
from repro.obs import (
    MetricsRegistry,
    Observability,
    StructuredLogger,
    Tracer,
    configure_logging,
    default_observability,
    render_metrics_report,
)
from repro.core import (
    AdaptiveCapController,
    ClusterStatus,
    OperatorConsole,
    AmeliorationPolicy,
    CpiAggregator,
    CpiConfig,
    CpiPipeline,
    CpiSample,
    CpiSpec,
    DEFAULT_CONFIG,
    ForensicsStore,
    Incident,
    MachineAgent,
    OutlierDetector,
    PolicyAction,
    ThrottleController,
    antagonist_correlation,
    rank_suspects,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # cluster substrate
    "ClusterScheduler",
    "ClusterSimulation",
    "Job",
    "JobSpec",
    "Machine",
    "PlacementError",
    "Platform",
    "PriorityBand",
    "SchedulingClass",
    "SimConfig",
    "Task",
    "TaskState",
    "get_platform",
    # CPI2 core
    "AdaptiveCapController",
    "AmeliorationPolicy",
    "ClusterStatus",
    "OperatorConsole",
    "CpiAggregator",
    "CpiConfig",
    "CpiPipeline",
    "CpiSample",
    "CpiSpec",
    "DEFAULT_CONFIG",
    "ForensicsStore",
    "Incident",
    "MachineAgent",
    "OutlierDetector",
    "PolicyAction",
    "ThrottleController",
    "antagonist_correlation",
    "rank_suspects",
    # fault injection / robustness
    "FAULT_PROFILES",
    "AgentCheckpoint",
    "FaultPlane",
    "FaultProfile",
    "LinkFaults",
    "RetryPolicy",
    "resolve_fault_profile",
    # observability
    "MetricsRegistry",
    "Observability",
    "StructuredLogger",
    "Tracer",
    "configure_logging",
    "default_observability",
    "render_metrics_report",
]
