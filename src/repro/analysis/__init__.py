"""Statistics toolkit shared by the CPI2 system and its evaluation.

This package is substrate code: the paper leans on a handful of statistical
primitives (Pearson correlation for the metric-validation figures, empirical
CDFs for the evaluation plots, and distribution fitting for the CPI-outlier
model of Figure 7).  Everything here is deliberately dependency-light so the
core library can use it without pulling in plotting or dataframe stacks.
"""

from repro.analysis.stats import (
    Ecdf,
    coefficient_of_variation,
    normalize_to_min,
    pearson_correlation,
    spearman_correlation,
    rolling_mean,
    summarize,
    SeriesSummary,
)
from repro.analysis.distributions import (
    DistributionFit,
    fit_all_candidates,
    fit_distribution,
    best_fit,
    CANDIDATE_FAMILIES,
)
from repro.analysis.viz import cdf_plot, histogram, sparkline, timeseries

__all__ = [
    "Ecdf",
    "SeriesSummary",
    "coefficient_of_variation",
    "normalize_to_min",
    "pearson_correlation",
    "spearman_correlation",
    "rolling_mean",
    "summarize",
    "DistributionFit",
    "CANDIDATE_FAMILIES",
    "fit_all_candidates",
    "fit_distribution",
    "best_fit",
    "cdf_plot",
    "histogram",
    "sparkline",
    "timeseries",
]
