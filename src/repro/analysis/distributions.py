"""Distribution fitting for CPI sample populations (paper Figure 7).

The paper fits the measured CPI distribution of a large web-search job
against normal, log-normal, Gamma and generalized-extreme-value (GEV)
families and reports that GEV fits best (``GEV(1.73, 0.133, -0.0534)`` for a
sample with mean 1.8 and stddev 0.16).  The rightward skew matters: bad
performance is more common than exceptionally good performance, so the 2-sigma
outlier threshold sits on a long right tail.

This module wraps scipy's maximum-likelihood fitters with a uniform result
type and a goodness-of-fit comparison so the Figure 7 benchmark can rank the
four families exactly the way the paper does.

A note on GEV parameter conventions: the paper quotes ``GEV(mu, sigma, xi)``
with the standard sign convention where ``xi < 0`` is the (bounded-tail)
Weibull domain.  scipy's ``genextreme`` uses ``c = -xi``.  We expose the
paper's convention in :class:`DistributionFit.shape`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np
from scipy import stats as sps

__all__ = [
    "DistributionFit",
    "CANDIDATE_FAMILIES",
    "fit_distribution",
    "fit_all_candidates",
    "best_fit",
]

#: Families the paper compares in Section 4.1 / Figure 7.
CANDIDATE_FAMILIES = ("normal", "lognormal", "gamma", "gev")


@dataclass(frozen=True)
class DistributionFit:
    """A fitted distribution plus goodness-of-fit statistics.

    Attributes:
        family: one of :data:`CANDIDATE_FAMILIES`.
        location: location parameter (``mu`` for normal and GEV).
        scale: scale parameter (``sigma``).
        shape: shape parameter, or ``None`` for the normal family.  For the
            GEV family this follows the paper's sign convention (``xi``),
            i.e. the negation of scipy's ``c``.
        log_likelihood: total log-likelihood of the data under the fit.
        ks_statistic: Kolmogorov-Smirnov D statistic against the fit.
        n: number of samples fitted.
    """

    family: str
    location: float
    scale: float
    shape: float | None
    log_likelihood: float
    ks_statistic: float
    n: int

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        k = 2 if self.shape is None else 3
        return 2.0 * k - 2.0 * self.log_likelihood

    def frozen(self):
        """Return the scipy frozen distribution for sampling / pdf evaluation."""
        if self.family == "normal":
            return sps.norm(loc=self.location, scale=self.scale)
        if self.family == "lognormal":
            return sps.lognorm(self.shape, loc=self.location, scale=self.scale)
        if self.family == "gamma":
            return sps.gamma(self.shape, loc=self.location, scale=self.scale)
        if self.family == "gev":
            # paper convention xi -> scipy convention c = -xi
            return sps.genextreme(-self.shape, loc=self.location, scale=self.scale)
        raise ValueError(f"unknown family {self.family!r}")

    def sf(self, x: float) -> float:
        """Survival function P[X > x] under the fitted distribution."""
        return float(self.frozen().sf(x))


def _validate_samples(samples: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(samples) if not isinstance(samples, np.ndarray) else samples,
                     dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"samples must be one-dimensional, got shape {arr.shape}")
    if arr.size < 8:
        raise ValueError(f"need at least 8 samples to fit, got {arr.size}")
    if not np.all(np.isfinite(arr)):
        raise ValueError("samples contain non-finite values")
    return arr


def fit_distribution(samples: Iterable[float], family: str) -> DistributionFit:
    """Maximum-likelihood fit of ``samples`` to one candidate family.

    The lognormal and gamma fits pin ``loc`` to 0 (the conventional
    two-parameter forms) when all samples are positive, which is always the
    case for CPI data.
    """
    arr = _validate_samples(samples)
    if family == "normal":
        loc, scale = sps.norm.fit(arr)
        frozen = sps.norm(loc=loc, scale=scale)
        shape: float | None = None
    elif family == "lognormal":
        if np.any(arr <= 0):
            raise ValueError("lognormal fit requires positive samples")
        s, loc, scale = sps.lognorm.fit(arr, floc=0.0)
        frozen = sps.lognorm(s, loc=loc, scale=scale)
        shape = float(s)
    elif family == "gamma":
        if np.any(arr <= 0):
            raise ValueError("gamma fit requires positive samples")
        a, loc, scale = sps.gamma.fit(arr, floc=0.0)
        frozen = sps.gamma(a, loc=loc, scale=scale)
        shape = float(a)
    elif family == "gev":
        c, loc, scale = sps.genextreme.fit(arr)
        frozen = sps.genextreme(c, loc=loc, scale=scale)
        shape = float(-c)  # convert scipy's c to the paper's xi
    else:
        raise ValueError(
            f"unknown family {family!r}; expected one of {CANDIDATE_FAMILIES}")

    with np.errstate(divide="ignore"):
        logpdf = frozen.logpdf(arr)
    # Clip -inf contributions (points outside a bounded support) to a large
    # penalty instead of poisoning the comparison with NaNs.
    logpdf = np.where(np.isfinite(logpdf), logpdf, -1e6)
    ks = sps.kstest(arr, frozen.cdf).statistic
    return DistributionFit(
        family=family,
        location=float(frozen.kwds.get("loc", 0.0)),
        scale=float(frozen.kwds.get("scale", 1.0)),
        shape=shape,
        log_likelihood=float(np.sum(logpdf)),
        ks_statistic=float(ks),
        n=int(arr.size),
    )


def fit_all_candidates(samples: Iterable[float]) -> Mapping[str, DistributionFit]:
    """Fit every family in :data:`CANDIDATE_FAMILIES`; skip families that error."""
    arr = _validate_samples(samples)
    fits: dict[str, DistributionFit] = {}
    for family in CANDIDATE_FAMILIES:
        try:
            fits[family] = fit_distribution(arr, family)
        except (ValueError, RuntimeError):
            continue
    if not fits:
        raise ValueError("no candidate family could be fitted")
    return fits


def best_fit(samples: Iterable[float]) -> DistributionFit:
    """The candidate with the smallest KS statistic, as the paper's 'fit best'.

    The paper says the GEV curve "fit the best" among the four families; KS
    distance is the natural notion of best for an eyeballed histogram overlay
    and is also what our Figure 7 benchmark reports.
    """
    fits = fit_all_candidates(samples)
    return min(fits.values(), key=lambda f: f.ks_statistic)
