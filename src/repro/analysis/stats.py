"""Small statistical primitives used throughout the reproduction.

The paper's metric-validation section (Section 3) rests on Pearson
correlation between application-level rates and counter-derived rates, on
normalising series to their observed minimum ("normalized to the minimum
value observed in the collection period"), and on empirical CDFs for the
fleet-level evaluation (Figures 1, 14, 16d).  This module implements those
primitives with plain numpy so they behave identically in tests, benchmarks
and the library itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "pearson_correlation",
    "spearman_correlation",
    "normalize_to_min",
    "coefficient_of_variation",
    "rolling_mean",
    "Ecdf",
    "SeriesSummary",
    "summarize",
]


def _as_1d_float_array(values: Iterable[float], name: str) -> np.ndarray:
    # Arrays, lists and tuples go straight to asarray (zero-copy for a
    # float64 array); only true iterators need materialising first.
    if not isinstance(values, (np.ndarray, list, tuple)):
        values = list(values)
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def pearson_correlation(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Pearson product-moment correlation coefficient of two equal-length series.

    Returns 0.0 (rather than NaN) when either series is constant, which is the
    behaviour the identification pipeline wants: a flat CPU-usage series carries
    no evidence either way about a suspect.

    Raises:
        ValueError: if the series lengths differ or fewer than 2 points are given.
    """
    x = _as_1d_float_array(xs, "xs")
    y = _as_1d_float_array(ys, "ys")
    if x.size != y.size:
        raise ValueError(f"series lengths differ: {x.size} != {y.size}")
    if x.size < 2:
        raise ValueError("correlation requires at least 2 points")
    xd = x - x.mean()
    yd = y - y.mean()
    denom = math.sqrt(float(np.dot(xd, xd)) * float(np.dot(yd, yd)))
    if denom == 0.0:
        return 0.0
    return float(np.dot(xd, yd) / denom)


def normalize_to_min(values: Iterable[float]) -> np.ndarray:
    """Normalise a series to its minimum observed value, as the paper's figures do.

    Figure 2 and Figure 3 plot rates "normalized to the minimum value observed
    in the collection period", i.e. every point is divided by the series min so
    the smallest value maps to 1.0x.

    Raises:
        ValueError: if the series is empty or its minimum is not positive.
    """
    arr = _as_1d_float_array(values, "values")
    if arr.size == 0:
        raise ValueError("cannot normalise an empty series")
    lo = float(arr.min())
    if lo <= 0.0:
        raise ValueError(f"series minimum must be positive to normalise, got {lo}")
    return arr / lo


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Standard deviation divided by mean (the paper quotes ~4% for Figure 5).

    Uses the population standard deviation (ddof=0), matching how the paper's
    CPI spec treats its sample population.

    Raises:
        ValueError: if the series is empty or has zero mean.
    """
    arr = _as_1d_float_array(values, "values")
    if arr.size == 0:
        raise ValueError("cannot summarise an empty series")
    mean = float(arr.mean())
    if mean == 0.0:
        raise ValueError("coefficient of variation undefined for zero-mean series")
    return float(arr.std(ddof=0)) / mean


def rolling_mean(values: Iterable[float], window: int) -> np.ndarray:
    """Trailing rolling mean with a ramp-up prefix.

    The first ``window - 1`` outputs average over however many points exist so
    the output has the same length as the input.  Used to smooth per-minute CPI
    series into the multi-minute views the case-study figures show.
    """
    arr = _as_1d_float_array(values, "values")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if arr.size == 0:
        return arr.copy()
    cumulative = np.concatenate([[0.0], np.cumsum(arr)])
    out = np.empty_like(arr)
    for i in range(arr.size):
        start = max(0, i + 1 - window)
        out[i] = (cumulative[i + 1] - cumulative[start]) / (i + 1 - start)
    return out


class Ecdf:
    """Empirical cumulative distribution function over a fixed sample.

    Supports evaluation at arbitrary points and extraction of quantiles, which
    is all the fleet-level figures need (Figures 1, 14b, 14d, 16d).
    """

    def __init__(self, samples: Iterable[float]):
        arr = _as_1d_float_array(samples, "samples")
        if arr.size == 0:
            raise ValueError("ECDF requires at least one sample")
        self._sorted = np.sort(arr)

    @property
    def n(self) -> int:
        """Number of samples backing the ECDF."""
        return int(self._sorted.size)

    def __call__(self, x: float) -> float:
        """Fraction of samples <= x."""
        return float(np.searchsorted(self._sorted, x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """The q-quantile (0 <= q <= 1) of the sample, by linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def median(self) -> float:
        """The sample median."""
        return self.quantile(0.5)

    def points(self, num: int = 100) -> list[tuple[float, float]]:
        """(x, F(x)) pairs evenly spaced in probability, for plotting/printing."""
        if num < 2:
            raise ValueError(f"need at least 2 points, got {num}")
        qs = np.linspace(0.0, 1.0, num)
        return [(self.quantile(float(q)), float(q)) for q in qs]


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-plus summary of a series."""

    n: int
    mean: float
    stddev: float
    minimum: float
    median: float
    maximum: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (stddev / mean)."""
        if self.mean == 0.0:
            raise ValueError("coefficient of variation undefined for zero mean")
        return self.stddev / self.mean


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for a non-empty series."""
    arr = _as_1d_float_array(values, "values")
    if arr.size == 0:
        raise ValueError("cannot summarise an empty series")
    return SeriesSummary(
        n=int(arr.size),
        mean=float(arr.mean()),
        stddev=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def spearman_correlation(xs: Iterable[float], ys: Iterable[float]) -> float:
    """Spearman rank correlation of two equal-length series.

    Pearson on ranks (average ranks for ties): robust to the heavy-tailed
    CPI values the fleet produces, where a single pathological sample can
    swing a Pearson coefficient.  Same constant-series and length rules as
    :func:`pearson_correlation`.
    """
    x = _as_1d_float_array(xs, "xs")
    y = _as_1d_float_array(ys, "ys")
    if x.size != y.size:
        raise ValueError(f"series lengths differ: {x.size} != {y.size}")
    if x.size < 2:
        raise ValueError("correlation requires at least 2 points")

    def ranks(arr: np.ndarray) -> np.ndarray:
        order = np.argsort(arr, kind="mergesort")
        ranked = np.empty(arr.size, dtype=float)
        ranked[order] = np.arange(1, arr.size + 1, dtype=float)
        # Average ranks across ties.
        for value in np.unique(arr):
            mask = arr == value
            if mask.sum() > 1:
                ranked[mask] = ranked[mask].mean()
        return ranked

    return pearson_correlation(ranks(x), ranks(y))
