"""Terminal visualisation: sparklines, histograms and CDF plots.

The paper's figures are time series, scatter plots and CDFs; this module
renders their text-mode equivalents so examples and the CLI can *show* a
victim's CPI trace or a fleet distribution without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["sparkline", "histogram", "cdf_plot", "timeseries"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def _clean(values: Iterable[float], name: str = "values") -> list[float]:
    out = [float(v) for v in values]
    if not out:
        raise ValueError(f"{name} must be non-empty")
    if any(math.isnan(v) or math.isinf(v) for v in out):
        raise ValueError(f"{name} contain non-finite entries")
    return out


def _resample(values: Sequence[float], width: int) -> list[float]:
    """Bucket-average a series down to ``width`` points (identity if short)."""
    if len(values) <= width:
        return list(values)
    out = []
    for i in range(width):
        lo = i * len(values) // width
        hi = max(lo + 1, (i + 1) * len(values) // width)
        chunk = values[lo:hi]
        out.append(sum(chunk) / len(chunk))
    return out


def sparkline(values: Iterable[float], width: int | None = None) -> str:
    """A one-line block-character sketch of a series.

    >>> sparkline([1, 2, 3, 4, 3, 2, 1])
    '▁▃▆█▆▃▁'
    """
    data = _clean(values)
    if width is not None:
        if width < 1:
            raise ValueError(f"width must be >= 1, got {width}")
        data = _resample(data, width)
    lo, hi = min(data), max(data)
    if hi == lo:
        return _BLOCKS[0] * len(data)
    scale = (len(_BLOCKS) - 1) / (hi - lo)
    return "".join(_BLOCKS[int(round((v - lo) * scale))] for v in data)


def histogram(values: Iterable[float], bins: int = 10,
              width: int = 40) -> str:
    """A multi-line text histogram, one row per bin.

    Rows read ``lower..upper | ###### count``.
    """
    data = _clean(values)
    if bins < 1:
        raise ValueError(f"bins must be >= 1, got {bins}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    lo, hi = min(data), max(data)
    if hi == lo:
        hi = lo + 1.0
    step = (hi - lo) / bins
    counts = [0] * bins
    for v in data:
        index = min(bins - 1, int((v - lo) / step))
        counts[index] += 1
    peak = max(counts)
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * (round(width * count / peak) if peak else 0)
        lines.append(f"{lo + i * step:8.3g}..{lo + (i + 1) * step:<8.3g}"
                     f"|{bar:<{width}} {count}")
    return "\n".join(lines)


def cdf_plot(values: Iterable[float], points: int = 10,
             width: int = 40) -> str:
    """A text CDF: one row per quantile, bar length = cumulative fraction."""
    data = sorted(_clean(values))
    if points < 2:
        raise ValueError(f"points must be >= 2, got {points}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    lines = []
    for i in range(points):
        q = i / (points - 1)
        index = min(len(data) - 1, int(round(q * (len(data) - 1))))
        bar = "#" * round(width * q)
        lines.append(f"p{100 * q:5.1f} {data[index]:10.4g} |{bar}")
    return "\n".join(lines)


def timeseries(values: Iterable[float], width: int = 60,
               height: int = 8) -> str:
    """A multi-row character plot of one series, min/max labelled.

    The case-study figures (victim CPI vs time) render legibly at 60x8.
    """
    data = _clean(values)
    if width < 2 or height < 2:
        raise ValueError("width and height must each be >= 2")
    data = _resample(data, width)
    lo, hi = min(data), max(data)
    span = hi - lo or 1.0
    rows = [[" "] * len(data) for _ in range(height)]
    for x, v in enumerate(data):
        y = int(round((v - lo) / span * (height - 1)))
        rows[height - 1 - y][x] = "*"
    lines = []
    for i, row in enumerate(rows):
        label = f"{hi:8.3g} |" if i == 0 else (
            f"{lo:8.3g} |" if i == height - 1 else "         |")
        lines.append(label + "".join(row))
    return "\n".join(lines)
