"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — the quickstart scenario: one victim, one antagonist, watch
  CPI2 detect, identify, throttle, and the victim recover.
* ``list`` — the registered paper experiments.
* ``experiment <name> [...]`` — run experiments by name and print their
  paper-vs-measured reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPI2 (EuroSys 2013) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run the quickstart victim/antagonist scenario")
    demo.add_argument("--minutes", type=int, default=30,
                      help="simulated minutes to run (default 30)")
    demo.add_argument("--seed", type=int, default=42)

    subparsers.add_parser("list", help="list registered experiments")

    experiment = subparsers.add_parser(
        "experiment", help="run one or more registered experiments")
    experiment.add_argument("names", nargs="+",
                            help="experiment names (see 'repro list'), "
                                 "or 'all' for every registered experiment "
                                 "(takes several minutes)")
    return parser


def _cmd_demo(minutes: int, seed: int) -> int:
    from repro import (ClusterSimulation, CpiConfig, CpiPipeline, CpiSpec,
                       Job, Machine, SimConfig, get_platform)
    from repro.workloads import AntagonistKind, make_antagonist_job_spec
    from repro.workloads.services import make_service_job_spec

    platform = get_platform("westmere-2.6")
    machine = Machine("demo", platform, cpi_noise_sigma=0.03)
    sim = ClusterSimulation([machine], SimConfig(seed=seed))
    pipeline = CpiPipeline(sim, CpiConfig())
    sim.scheduler.submit(Job(make_service_job_spec("frontend", num_tasks=1,
                                                   seed=seed)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=seed + 1, demand_scale=1.3)))
    pipeline.bootstrap_specs([CpiSpec("frontend", platform.name, 10_000,
                                      1.0, 1.05, 0.08)])
    print(f"running {minutes} simulated minutes...")
    sim.run_minutes(minutes)
    incidents = pipeline.all_incidents()
    print(f"{len(incidents)} incidents; actions:")
    for incident in incidents:
        target = incident.decision.target
        line = (f"  t={incident.time_seconds:>5}s {incident.victim_taskname} "
                f"cpi={incident.victim_cpi:.2f} -> "
                f"{incident.decision.action.value}")
        if target is not None:
            line += f" {target.name}"
        if incident.recovered is not None:
            line += (f" (recovered={incident.recovered}, "
                     f"relative CPI={incident.relative_cpi:.2f})")
        print(line)
    return 0


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _runner) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_experiment(names: Sequence[str]) -> int:
    from repro.experiments.registry import EXPERIMENTS, run_experiment

    if list(names) == ["all"]:
        names = list(EXPERIMENTS)
    status = 0
    for name in names:
        try:
            report = run_experiment(name)
        except KeyError as error:
            print(error, file=sys.stderr)
            status = 2
            continue
        report.show()
    return status


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(args.minutes, args.seed)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiment":
        return _cmd_experiment(args.names)
    raise AssertionError(f"unhandled command {args.command!r}")
