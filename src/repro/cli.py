"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — the quickstart scenario: one victim, one antagonist, watch
  CPI2 detect, identify, throttle, and the victim recover.  Pass
  ``--fault-profile {none,light,moderate,heavy}`` (and ``--fault-seed N``)
  to run the same scenario over a faulty sample/spec fabric; see
  ``docs/robustness.md``.
* ``list`` — the registered paper experiments.
* ``experiment <name> [...]`` — run experiments by name and print their
  paper-vs-measured reports.
* ``soak`` — the churn soak harness: sustained job turnover with periodic
  aggregator kills and snapshot+WAL recovery, asserting zero spec drift,
  bounded memory, and counted recovery telemetry; exits non-zero if any
  check fails.  See ``docs/robustness.md``.

Global observability flags (accepted by every command):

* ``--log-level {debug,info,warning,error}`` — console event verbosity.
* ``--log-json PATH`` — write every structured event as one JSON line.
* ``--trace-json PATH`` — export pipeline-stage traces as JSONL
  (``demo`` only).
* ``--profile [PSTATS]`` — run the command under :mod:`cProfile` and print
  the hottest functions (optionally dumping raw pstats data to PSTATS);
  see ``docs/performance.md``.

Telemetry-plane flags (``demo``): ``--telemetry`` scrapes the registry
into the simulated-time TSDB at every sampling-window close and evaluates
the SLO alert rules; ``--metrics-out`` writes Prometheus text format
(also on ``experiment``); ``--timeseries-out`` dumps the scraped series
as JSONL; ``--console`` / ``--console-json`` render the per-machine fleet
health scoreboard.  All are byte-identical at any ``--jobs`` count.

``demo`` and ``experiment`` print a metrics report (counters, gauges,
histogram summaries) when the run recorded any; see
``docs/observability.md`` for the catalogue.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

__all__ = ["main", "build_parser"]


def _add_obs_flags(parser: argparse.ArgumentParser,
                   tracing: bool = False) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument("--log-level", default="warning",
                       choices=["debug", "info", "warning", "error"],
                       help="console log verbosity (default warning)")
    group.add_argument("--log-json", metavar="PATH", default=None,
                       help="write structured events to PATH as JSONL")
    group.add_argument("--profile", metavar="PSTATS", nargs="?", const="",
                       default=None,
                       help="run under cProfile and print the hottest "
                            "functions; give a path to also dump raw "
                            "pstats data for 'python -m pstats'")
    if tracing:
        group.add_argument("--trace-json", metavar="PATH", default=None,
                           help="export pipeline-stage traces to PATH as JSONL")


def _fault_profile_names() -> list[str]:
    from repro.faults.profile import FAULT_PROFILES

    return list(FAULT_PROFILES)


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPI2 (EuroSys 2013) reproduction toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser(
        "demo", help="run the quickstart victim/antagonist scenario")
    demo.add_argument("--minutes", type=int, default=30,
                      help="simulated minutes to run (default 30)")
    demo.add_argument("--seed", type=int, default=42)
    demo.add_argument("--jobs", type=int,
                      default=int(os.environ.get("REPRO_SHARDS", "1")),
                      help="worker processes for sharded execution "
                           "(default: $REPRO_SHARDS or 1; output is "
                           "byte-identical at any worker count — see "
                           "docs/performance.md)")
    faults = demo.add_argument_group("fault injection")
    faults.add_argument("--fault-profile", default="none",
                        choices=sorted(_fault_profile_names()),
                        help="transport/crash fault intensity (default "
                             "none: all paths in-process, output identical "
                             "to a run without fault injection)")
    faults.add_argument("--fault-seed", type=int, default=0,
                        help="seed for the injected-fault schedule, "
                             "independent of --seed (default 0)")
    telemetry = demo.add_argument_group("telemetry plane")
    telemetry.add_argument("--telemetry", action="store_true",
                           help="attach the fleet telemetry plane: scrape "
                                "the metrics registry into a simulated-time "
                                "TSDB at every sampling-window close and "
                                "evaluate the SLO alert rules (implied by "
                                "--timeseries-out/--console/--console-json)")
    telemetry.add_argument("--metrics-out", metavar="PATH", default=None,
                           help="write the final metrics registry to PATH "
                                "in Prometheus text format")
    telemetry.add_argument("--timeseries-out", metavar="PATH", default=None,
                           help="dump the scraped time series to PATH as "
                                "JSONL (implies --telemetry)")
    telemetry.add_argument("--console", action="store_true",
                           help="render the per-machine fleet health "
                                "console after the run (implies --telemetry)")
    telemetry.add_argument("--console-json", metavar="PATH", default=None,
                           help="also dump the fleet console to PATH as "
                                "JSON (implies --telemetry)")
    _add_obs_flags(demo, tracing=True)

    list_parser = subparsers.add_parser(
        "list", help="list registered experiments")
    _add_obs_flags(list_parser)

    experiment = subparsers.add_parser(
        "experiment", help="run one or more registered experiments")
    experiment.add_argument("names", nargs="+",
                            help="experiment names (see 'repro list'), "
                                 "or 'all' for every registered experiment "
                                 "(takes several minutes)")
    experiment.add_argument("--jobs", type=int, default=1,
                            help="worker processes to spread the named "
                                 "experiments across (default 1; reports "
                                 "are identical at any worker count)")
    experiment.add_argument("--metrics-out", metavar="PATH", default=None,
                            help="write the accumulated metrics registry "
                                 "to PATH in Prometheus text format")
    _add_obs_flags(experiment)

    soak = subparsers.add_parser(
        "soak", help="churn soak with periodic aggregator kills and "
                     "snapshot+WAL recovery")
    soak.add_argument("--minutes", type=int, default=120,
                      help="simulated minutes to run (default 120)")
    soak.add_argument("--machines", type=int, default=8,
                      help="fleet size (default 8)")
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--fault-seed", type=int, default=1,
                      help="seed for the fault schedule (default 1)")
    soak.add_argument("--kill-every", type=int, default=900, metavar="SECONDS",
                      help="kill the aggregator every this many simulated "
                           "seconds (default 900)")
    soak.add_argument("--outage", type=int, default=60, metavar="SECONDS",
                      help="seconds the aggregator stays down per kill; "
                           "agents ride the outage out on retry/backoff "
                           "(default 60)")
    soak.add_argument("--store", metavar="DIR", default=None,
                      help="mirror the spec store to DIR (wal.jsonl + "
                           "snapshot.json survive the run)")
    soak.add_argument("--report-json", metavar="PATH", default=None,
                      help="write the full soak report to PATH as JSON")
    soak.add_argument("--timeseries-out", metavar="PATH", default=None,
                      help="dump the scraped time series to PATH as JSONL")
    soak.add_argument("--metrics-out", metavar="PATH", default=None,
                      help="write the final metrics registry to PATH in "
                           "Prometheus text format")
    _add_obs_flags(soak)
    return parser


def _effective_jobs(requested: int) -> int:
    """Clamp a ``--jobs`` request to the cores actually present.

    Oversubscribing worker processes only adds scheduler thrash; when the
    request exceeds ``os.cpu_count()`` we warn once (counted as
    ``shard_jobs_clamped``) and run with every available core instead.
    """
    available = os.cpu_count() or 1
    if requested <= available:
        return requested
    from repro.obs import default_observability

    obs = default_observability()
    obs.metrics.counter("shard_jobs_clamped").inc()
    obs.events.event("shard_jobs_clamped", requested=requested,
                     available=available)
    print(f"warning: --jobs {requested} exceeds the {available} available "
          f"CPU core(s); clamping to {available}", file=sys.stderr)
    return available


def _format_incident_line(incident) -> str:
    """One demo-output line for an incident (exposed for testing)."""
    target = incident.decision.target
    line = (f"  t={incident.time_seconds:>5}s {incident.victim_taskname} "
            f"cpi={incident.victim_cpi:.2f} -> "
            f"{incident.decision.action.value}")
    if target is not None:
        line += f" {target.name}"
    if incident.recovered is not None:
        relative = incident.relative_cpi
        relative_text = (f"{relative:.2f}" if relative is not None
                         else "n/a")  # departed victims have no post-CPI
        line += (f" (recovered={incident.recovered}, "
                 f"relative CPI={relative_text})")
    return line


def _cmd_demo(minutes: int, seed: int,
              trace_json: Optional[str] = None,
              fault_profile: str = "none", fault_seed: int = 0,
              jobs: int = 1, telemetry: bool = False,
              metrics_out: Optional[str] = None,
              timeseries_out: Optional[str] = None,
              console: bool = False,
              console_json: Optional[str] = None) -> int:
    from repro.experiments.scenarios import demo_scenario

    telemetry = bool(telemetry or timeseries_out or console or console_json)
    kwargs = dict(seed=seed, fault_profile=fault_profile,
                  fault_seed=fault_seed, telemetry=telemetry)
    jobs = _effective_jobs(jobs)
    if jobs > 1:
        from repro.cluster.shards import run_sharded

        print(f"running {minutes} simulated minutes "
              f"across {jobs} worker(s)...")
        result = run_sharded(demo_scenario, kwargs,
                             seconds=minutes * 60, jobs=jobs)
        pipeline = result.pipeline
        incidents = result.all_incidents()
        fault_tallies = (result.fault_tallies
                         if pipeline.faults is not None else None)
        fleet_console = result.fleet_console if telemetry else None
    else:
        scenario = demo_scenario(**kwargs)
        pipeline = scenario.pipeline
        print(f"running {minutes} simulated minutes...")
        scenario.simulation.run_minutes(minutes)
        incidents = pipeline.all_incidents()
        fault_tallies = (pipeline.faults.fault_tallies()
                         if pipeline.faults is not None else None)
        fleet_console = pipeline.fleet_console if telemetry else None
    print(f"{len(incidents)} incidents; actions:")
    for incident in incidents:
        print(_format_incident_line(incident))
    print()
    print(pipeline.metrics_report())
    if fault_tallies is not None:
        # Only under a non-zero profile: the default demo output must stay
        # identical to a build without fault injection.
        injected = ", ".join(f"{kind}={count}"
                             for kind, count in sorted(fault_tallies.items()))
        print()
        print(f"fault profile '{pipeline.fault_profile.name}' "
              f"(seed {fault_seed}): {injected or 'no faults fired'}")
    if fleet_console is not None and (console or console_json):
        board = fleet_console()
        if console:
            print()
            print(board.render())
        if console_json:
            with open(console_json, "w", encoding="utf-8") as fh:
                fh.write(board.to_json() + "\n")
            print(f"wrote fleet console to {console_json}")
    if metrics_out:
        from repro.obs import write_prometheus

        written = write_prometheus(pipeline.obs.metrics, metrics_out)
        print(f"wrote {written} exposition lines to {metrics_out}")
    if timeseries_out:
        from repro.obs import write_timeseries_jsonl

        written = write_timeseries_jsonl(pipeline.obs.timeseries,
                                         timeseries_out)
        print(f"wrote {written} time series to {timeseries_out}")
    if trace_json:
        written = pipeline.obs.tracer.export_jsonl(trace_json)
        suffix = (" (coordinator-side stages only under --jobs > 1)"
                  if jobs > 1 else "")
        print(f"wrote {written} traces to {trace_json}{suffix}")
    return 0


def _cmd_soak(minutes: int, machines: int, seed: int, fault_seed: int,
              kill_every: int, outage: int,
              store: Optional[str] = None,
              report_json: Optional[str] = None,
              timeseries_out: Optional[str] = None,
              metrics_out: Optional[str] = None) -> int:
    from repro.experiments.soak import run_soak
    from repro.obs import default_observability

    obs = default_observability()
    print(f"soaking {minutes} simulated minutes on {machines} machine(s), "
          f"killing the aggregator every {kill_every}s "
          f"(outage {outage}s)...")
    report = run_soak(seconds=minutes * 60, seed=seed,
                      num_machines=machines, kill_period=kill_every,
                      outage_seconds=outage, fault_seed=fault_seed,
                      store_dir=store, obs=obs)
    print(report.render())
    if report_json:
        with open(report_json, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote soak report to {report_json}")
    if store:
        print(f"spec store mirrored to {store}")
    if metrics_out:
        from repro.obs import write_prometheus

        written = write_prometheus(obs.metrics, metrics_out)
        print(f"wrote {written} exposition lines to {metrics_out}")
    if timeseries_out and obs.timeseries is not None:
        from repro.obs import write_timeseries_jsonl

        written = write_timeseries_jsonl(obs.timeseries, timeseries_out)
        print(f"wrote {written} time series to {timeseries_out}")
    return 0 if report.passed else 1


def _cmd_list() -> int:
    from repro.experiments.registry import EXPERIMENTS

    width = max(len(name) for name in EXPERIMENTS)
    for name, (description, _runner) in EXPERIMENTS.items():
        print(f"{name:<{width}}  {description}")
    return 0


def _cmd_experiment(names: Sequence[str], jobs: int = 1,
                    metrics_out: Optional[str] = None) -> int:
    from repro.experiments.registry import (EXPERIMENTS, run_experiment,
                                            run_experiments,
                                            unknown_experiment_error)
    from repro.obs import default_observability, render_metrics_report

    if list(names) == ["all"]:
        names = list(EXPERIMENTS)
    jobs = _effective_jobs(jobs)
    status = 0
    if jobs > 1:
        valid = [name for name in names if name in EXPERIMENTS]
        reports = dict(run_experiments(valid, jobs=jobs)) if valid else {}
        for name in names:
            report = reports.get(name)
            if report is None:
                print(unknown_experiment_error(name), file=sys.stderr)
                status = 2
                continue
            report.show()
    else:
        for name in names:
            try:
                report = run_experiment(name)
            except KeyError as error:
                print(error, file=sys.stderr)
                status = 2
                continue
            report.show()
    # Experiments build their own pipelines, which fall back to the process
    # default observability — report whatever the runs recorded.
    registry = default_observability().metrics
    if registry.counters() or registry.gauges() or registry.histograms():
        print()
        print(render_metrics_report(registry))
    if metrics_out:
        from repro.obs import write_prometheus

        written = write_prometheus(registry, metrics_out)
        print(f"wrote {written} exposition lines to {metrics_out}")
    return status


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    from repro.obs import (Observability, configure_logging,
                           set_default_observability)

    args = build_parser().parse_args(argv)
    configure_logging(level=args.log_level, json_path=args.log_json)
    # Each invocation reports its own run, not whatever the process
    # accumulated before (matters when main() is called in-process).
    set_default_observability(Observability())

    def run() -> int:
        if args.command == "demo":
            return _cmd_demo(args.minutes, args.seed,
                             trace_json=args.trace_json,
                             fault_profile=args.fault_profile,
                             fault_seed=args.fault_seed,
                             jobs=args.jobs,
                             telemetry=args.telemetry,
                             metrics_out=args.metrics_out,
                             timeseries_out=args.timeseries_out,
                             console=args.console,
                             console_json=args.console_json)
        if args.command == "list":
            return _cmd_list()
        if args.command == "experiment":
            return _cmd_experiment(args.names, jobs=args.jobs,
                                   metrics_out=args.metrics_out)
        if args.command == "soak":
            return _cmd_soak(args.minutes, args.machines, args.seed,
                             args.fault_seed, args.kill_every, args.outage,
                             store=args.store,
                             report_json=args.report_json,
                             timeseries_out=args.timeseries_out,
                             metrics_out=args.metrics_out)
        raise AssertionError(f"unhandled command {args.command!r}")

    if args.profile is None:
        return run()
    from repro.perf.profiling import profile_call

    status, stats = profile_call(run, stats_path=args.profile or None)
    print()
    print(stats.rstrip())
    if args.profile:
        print(f"raw profile data written to {args.profile} "
              f"(inspect with 'python -m pstats')")
    return status
