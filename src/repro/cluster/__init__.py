"""Cluster simulator substrate.

The paper runs CPI2 on Google's production cluster manager; this package is
the stand-in.  It models machines with a fixed CPU platform, tasks grouped
into jobs with priority bands and scheduling classes, cgroup-based CPU
accounting with CFS-style bandwidth control (the paper's hard-capping
actuator), a central scheduler with speculative overcommit for batch work,
and a shared-resource interference model that inflates a task's CPI as a
function of its co-runners' cache and memory-bandwidth pressure.

CPI2 itself (``repro.core``) only touches this package through narrow
interfaces: it reads per-cgroup performance counters and actuates cgroup CPU
caps, exactly as the production system does.
"""

from repro.cluster.platform import Platform, PLATFORM_CATALOG, get_platform
from repro.cluster.task import (
    Task,
    TaskState,
    SchedulingClass,
    PriorityBand,
)
from repro.cluster.job import Job, JobSpec
from repro.cluster.cgroup import Cgroup, BandwidthCap
from repro.cluster.machine import Machine
from repro.cluster.interference import (
    InterferenceModel,
    ResourceProfile,
    MachineContention,
)
from repro.cluster.scheduler import ClusterScheduler, PlacementError
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.trace import TracePoint, TraceRecorder, load_trace

__all__ = [
    "Platform",
    "PLATFORM_CATALOG",
    "get_platform",
    "Task",
    "TaskState",
    "SchedulingClass",
    "PriorityBand",
    "Job",
    "JobSpec",
    "Cgroup",
    "BandwidthCap",
    "Machine",
    "InterferenceModel",
    "ResourceProfile",
    "MachineContention",
    "ClusterScheduler",
    "PlacementError",
    "ClusterSimulation",
    "SimConfig",
    "TracePoint",
    "TraceRecorder",
    "load_trace",
]
