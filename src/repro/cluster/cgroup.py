"""Cgroup CPU accounting and CFS bandwidth control (hard-capping).

The paper's only actuator is Linux CPU bandwidth control [Turner et al.,
"CPU bandwidth control for CFS"]: "we forcibly reduce the antagonist's CPU
usage by applying CPU hard-capping.  This bounds the amount of CPU a task can
use over a short period of time (e.g., 25 ms in each 250 ms window, which
corresponds to a cap of 0.1 CPU-sec/sec)."

We model bandwidth control at 1-second granularity: a :class:`BandwidthCap`
bounds the CPU-sec/sec a cgroup may receive until it expires.  The cgroup
also keeps a short usage history, which is what CPI2's correlation engine
reads when it hunts for antagonists (it needs the *suspect's* CPU usage
series time-aligned with the victim's CPI series).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from itertools import islice
from typing import Optional

import numpy as np

__all__ = ["BandwidthCap", "Cgroup"]

#: How many seconds of per-second usage history a cgroup retains.  The
#: correlation analysis uses a 10-minute window of per-minute samples, so 15
#: minutes of second-level history is comfortably enough for any consumer.
USAGE_HISTORY_SECONDS = 900


@dataclass(frozen=True)
class BandwidthCap:
    """An active CFS bandwidth cap on a cgroup.

    Attributes:
        quota: maximum CPU-sec/sec the group may consume while capped.
        expires_at: simulation time (seconds) at which the cap lapses; the
            paper applies caps for 5 minutes at a time.
    """

    quota: float
    expires_at: int

    def __post_init__(self) -> None:
        if self.quota < 0:
            raise ValueError(f"cap quota must be >= 0, got {self.quota}")

    def active_at(self, t: int) -> bool:
        """Whether the cap is still in force at time ``t``."""
        return t < self.expires_at


class Cgroup:
    """A per-task CPU container: limit, optional hard-cap, usage history."""

    #: Class-wide cap-change epoch.  Every :meth:`apply_cap` /
    #: :meth:`release_cap` anywhere bumps it, which is how the vectorized
    #: demand plane (:mod:`repro.cluster.demandplane`) knows its cached cap
    #: columns are stale without polling every cgroup every tick.  (The lazy
    #: expiry drop in :meth:`cap_at` does *not* bump it: an expired cap and
    #: no cap are indistinguishable through ``t < expires_at``.)
    _cap_mutations = 0

    def __init__(self, name: str, cpu_limit: float):
        """Args:
            name: container name (``<job>/<index>`` by convention).
            cpu_limit: steady-state CPU limit in CPU-sec/sec (the task's
                reservation); must be positive.
        """
        if cpu_limit <= 0:
            raise ValueError(f"cpu_limit must be positive, got {cpu_limit}")
        self.name = name
        self.cpu_limit = cpu_limit
        self._cap: Optional[BandwidthCap] = None
        self._usage_history: deque[tuple[int, float]] = deque(
            maxlen=USAGE_HISTORY_SECONDS)
        self._total_cpu = 0.0
        # The demand plane's charge ledger, when a compiled task table owns
        # this cgroup: per-tick charges are buffered there and flushed in
        # consecutive runs.  Every usage read below flushes first, so the
        # deferral is unobservable.
        self._ledger = None
        # Columnar usage ledger: a float64 ring mirroring the deque, indexed
        # by ``t % USAGE_HISTORY_SECONDS``.  It exists so the identification
        # engine can read a window of per-second usage as one array slice
        # (``usage_window_view``) instead of scanning the deque once per
        # victim timestamp.  It is only trustworthy while charges arrive at
        # strictly consecutive seconds — the machine's tick loop guarantees
        # that; anything else (tests charging ad hoc) permanently degrades
        # this cgroup to the deque path.  Allocated lazily on first charge.
        self._ring: Optional[np.ndarray] = None
        self._ring_last: Optional[int] = None
        self._ring_count = 0
        self._ring_ok = True

    # -- capping ------------------------------------------------------------

    def apply_cap(self, quota: float, now: int, duration: int) -> BandwidthCap:
        """Install a hard-cap of ``quota`` CPU-sec/sec for ``duration`` seconds.

        Re-capping replaces any existing cap (the agent's re-analysis path may
        extend or tighten an existing cap).
        """
        if duration <= 0:
            raise ValueError(f"cap duration must be positive, got {duration}")
        cap = BandwidthCap(quota=quota, expires_at=now + duration)
        self._cap = cap
        Cgroup._cap_mutations += 1
        return cap

    def release_cap(self) -> None:
        """Remove any active hard-cap immediately."""
        self._cap = None
        Cgroup._cap_mutations += 1

    def cap_at(self, t: int) -> Optional[BandwidthCap]:
        """The cap in force at time ``t``, dropping it lazily once expired."""
        if self._cap is not None and not self._cap.active_at(t):
            self._cap = None
        return self._cap

    def is_capped(self, t: int) -> bool:
        """Whether a hard-cap is in force at time ``t``."""
        return self.cap_at(t) is not None

    def allowed_usage(self, demand: float, t: int) -> float:
        """CPU the group may receive at ``t`` given its limit and any cap.

        This is the cgroup-side constraint only; the machine may further
        reduce the grant when cores are oversubscribed.
        """
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        allowed = min(demand, self.cpu_limit)
        cap = self.cap_at(t)
        if cap is not None:
            allowed = min(allowed, cap.quota)
        return allowed

    # -- accounting ---------------------------------------------------------

    def _flush_ledger(self) -> None:
        """Drain any charges the demand plane has buffered for this cgroup."""
        ledger = self._ledger
        if ledger is not None:
            ledger.flush_charges()

    @property
    def total_cpu_seconds(self) -> float:
        """Lifetime CPU-seconds charged to this cgroup."""
        self._flush_ledger()
        return self._total_cpu

    @total_cpu_seconds.setter
    def total_cpu_seconds(self, value: float) -> None:
        self._flush_ledger()
        self._total_cpu = value

    def charge(self, t: int, usage: float) -> None:
        """Record ``usage`` CPU-sec/sec consumed during second ``t``."""
        self._flush_ledger()
        if usage < 0:
            raise ValueError(f"usage must be >= 0, got {usage}")
        self._usage_history.append((t, usage))
        self._total_cpu += usage
        if self._ring_ok:
            last = self._ring_last
            if last is not None and t == last + 1:
                self._ring[t % USAGE_HISTORY_SECONDS] = usage
                self._ring_last = t
                self._ring_count += 1
            elif last is None:
                if self._ring is None:
                    self._ring = np.zeros(USAGE_HISTORY_SECONDS)
                self._ring[t % USAGE_HISTORY_SECONDS] = usage
                self._ring_last = t
                self._ring_count = 1
            else:
                # A gap or replay: the ring can no longer tell recorded
                # zeros from evicted history, so it stands down for good
                # and every read falls back to the deque.
                self._ring_ok = False
                self._ring = None

    def _charge_run(self, t0: int, values: np.ndarray,
                    checked: bool = False) -> None:
        """Apply a run of consecutive per-second charges starting at ``t0``.

        The demand plane's ledger flush calls this with one column of its
        pending matrix; the effect is bit-identical to calling
        :meth:`charge` for ``t0, t0+1, ...`` in order (same deque tuples,
        same sequential float adds into the total, same ring writes).  Only
        the ledger may call it — it does not flush, and assumes the run was
        buffered *after* any earlier direct charges.  ``checked`` means the
        caller already proved ``values`` non-negative for the whole block.
        """
        if not checked and not values.min() >= 0.0:
            # A negative (or NaN) grant: take the scalar path so validation
            # raises exactly as a direct charge would, at the same second.
            for offset, usage in enumerate(values.tolist()):
                self.charge(t0 + offset, usage)
            return
        count = len(values)
        vals = values.tolist()
        self._usage_history.extend(zip(range(t0, t0 + count), vals))
        total = self._total_cpu
        for v in vals:
            total += v
        self._total_cpu = total
        if not self._ring_ok:
            return
        last = self._ring_last
        if last is None:
            if self._ring is None:
                self._ring = np.zeros(USAGE_HISTORY_SECONDS)
        elif t0 != last + 1:
            self._ring_ok = False
            self._ring = None
            return
        capacity = USAGE_HISTORY_SECONDS
        i0 = t0 % capacity
        ring = self._ring
        if i0 + count <= capacity:
            ring[i0:i0 + count] = values
        else:
            head = capacity - i0
            ring[i0:] = values[:head]
            ring[:count - head] = values[head:]
        self._ring_last = t0 + count - 1
        self._ring_count += count

    def usage_between(self, start: int, end: int) -> float:
        """Mean CPU-sec/sec over the half-open window ``[start, end)``.

        Seconds with no recorded sample count as zero usage, so a window that
        extends beyond the recorded history is averaged over its full length.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        self._flush_ledger()
        history = self._usage_history
        span = end - start
        # Charges arrive once per tick in strictly increasing time order, so
        # when the last ``span`` entries bracket exactly [start, end) they
        # ARE the window and the filtered scan of the whole deque (which a
        # sampler pays per task per window) can be skipped.  Same entries in
        # the same order, so the sum is bit-identical.
        if (len(history) >= span and history[-span][0] == start
                and history[-1][0] == end - 1):
            total = 0.0
            for _, u in islice(history, len(history) - span, None):
                total += u
            return total / span
        total = sum(u for (ts, u) in history if start <= ts < end)
        return total / span

    def usage_window_view(self, start: int, end: int) -> Optional[np.ndarray]:
        """Per-second usage over ``[start, end)`` as a float64 array.

        Seconds with no recorded charge are zero, exactly as
        :meth:`usage_between` treats them, so a window mean computed by
        summing this array in time order is bit-identical to the deque
        scan (adding an absent second contributes ``+ 0.0``, and usage is
        never ``-0.0``, so ``x + 0.0 == x`` bitwise).

        Returns ``None`` when the columnar ring cannot serve the request
        losslessly — charges ever arrived non-consecutively — in which
        case the caller must fall back to :meth:`usage_between`.
        """
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        self._flush_ledger()
        if not self._ring_ok:
            return None
        out = np.zeros(end - start)
        last = self._ring_last
        if last is None:
            return out  # never charged: the deque would read all zeros too
        capacity = USAGE_HISTORY_SECONDS
        valid_lo = last - min(self._ring_count, capacity) + 1
        lo = max(start, valid_lo)
        hi = min(end, last + 1)
        if lo >= hi:
            return out
        i0 = lo % capacity
        n = hi - lo
        if i0 + n <= capacity:
            out[lo - start:hi - start] = self._ring[i0:i0 + n]
        else:
            head = capacity - i0
            out[lo - start:lo - start + head] = self._ring[i0:]
            out[lo - start + head:hi - start] = self._ring[:n - head]
        return out

    def rebind_ring(self, row: np.ndarray) -> bool:
        """Re-back the columnar usage ring with caller-owned storage.

        The vectorized sampler keeps every resident cgroup's ring as one
        row of a shared ``(n_tasks, USAGE_HISTORY_SECONDS)`` matrix, so a
        whole window's per-task usage gathers as a single slice instead of
        one ring read per cgroup.  Existing history is copied into ``row``
        and future charges write through it, so every reader sees the same
        state through either handle.  Returns ``False`` (and leaves the
        cgroup on the deque path) when the ring has permanently stood down
        — the caller must treat that row as unusable and fall back to
        :meth:`usage_between`.

        Pending ledger charges need no special handling: they flush through
        :meth:`_charge_run` into whatever ``self._ring`` points at, which
        after this call is ``row``.
        """
        if len(row) != USAGE_HISTORY_SECONDS:
            raise ValueError(
                f"ring row must hold {USAGE_HISTORY_SECONDS} slots, "
                f"got {len(row)}")
        if not self._ring_ok:
            return False
        if self._ring is None:
            row[:] = 0.0
        else:
            row[:] = self._ring
        self._ring = row
        return True

    def last_usage(self) -> float:
        """Most recently recorded per-second usage (0.0 before any charge)."""
        self._flush_ledger()
        if not self._usage_history:
            return 0.0
        return self._usage_history[-1][1]

    def __repr__(self) -> str:
        return f"Cgroup({self.name}, limit={self.cpu_limit}, cap={self._cap})"
