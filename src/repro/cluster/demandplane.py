"""The vectorized demand/allocation plane: columnar demand programs.

The per-machine vector tick engine (PR 3) batched the *physics* of a tick,
but phases 1-3 and 5b-6 — demand evaluation, cgroup clipping, base-CPI
reads, charging, ``on_tick`` accounting — still made three Python closure
calls per task per simulated second.  This module removes that last big
Python loop from the hot path: :class:`DemandColumns` compiles the
declarative ``spec`` forms that the combinators in
:mod:`repro.workloads.demand` attach to their closures into
struct-of-arrays programs, so one machine's (or, fused, one cluster's)
demand for tick ``t`` is a handful of numpy ufunc passes.

Bit-exactness is a hard contract, mirroring the tick engines
(``docs/performance.md`` has the full argument):

* **RNG ordering** — log-normal demand noise draws one
  ``rng.standard_normal()`` per noisy task from that task's own generator,
  in table order (arena order when fused) — exactly the sequence the
  scalar closures draw, so every downstream consumer of those generators
  (transaction counters, latency models) sees an identical stream.
* **Operand order** — every compiled formula multiplies/adds in the same
  order as its closure, clamps with the same NaN-safe ``d if d > 0.0 else
  0.0`` branch, and keeps the one transcendental per noisy task
  (``np.exp``) elementwise-identical to the scalar call.
* **Shared factor evaluation** — ``scaled`` factors carrying a ``spec``
  attribute (e.g. :class:`~repro.workloads.diurnal.DiurnalPattern`)
  declare themselves pure, so tasks with equal factor specs share one
  scalar evaluation per tick; the ``math.cos`` calls stay scalar and
  therefore bit-identical.
* **Eligibility fallback** — any workload the compiler cannot express (a
  hand-written demand lambda, an overridden ``cpu_demand``, a subclassed
  cgroup, non-finite parameters) makes :meth:`DemandColumns.compile`
  return ``None`` and that machine steps down to the closure path,
  mirroring ``fused_eligible``.

Cgroup state is columnar too: per-task limit and hard-cap columns are
rebuilt only when any cap changes (a class-level mutation counter on
:class:`~repro.cluster.cgroup.Cgroup`), and charges are buffered in a
small per-table ledger that flushes whole consecutive runs into each
cgroup's ring/deque — any read of cgroup usage state flushes first, so
the deferral is unobservable.

Engine selection follows the ``REPRO_ANALYSIS_ENGINE`` precedent:
``REPRO_DEMAND_ENGINE=vector|scalar`` process-wide, or per machine via
``Machine(demand_engine=...)``.  The scalar engine is the closure path,
kept verbatim as the golden reference.
"""

from __future__ import annotations

import math
import os
import sys
from bisect import bisect_right
from typing import Optional, Sequence

import numpy as np

from repro.cluster.cgroup import Cgroup

__all__ = ["DEMAND_ENGINES", "DEMAND_ENGINE_ENV", "resolve_demand_engine",
           "DemandColumns"]

#: Valid demand-engine names.
DEMAND_ENGINES = ("vector", "scalar")

#: Environment variable selecting the process-wide default engine.
DEMAND_ENGINE_ENV = "REPRO_DEMAND_ENGINE"

#: Buffered ticks per charge-ledger flush.  Small enough that a flush stays
#: cache-friendly, large enough to amortize the per-cgroup bookkeeping; the
#: 60-second sampler window forces a flush long before the buffer wraps the
#: 900-second usage ring.
_CHARGE_CHUNK = 128

_INF = float("inf")

#: Draws bulk-fetched per chunk of a private noise generator's stream.
_DRAW_CHUNK = 256

#: ``sys.getrefcount`` ceiling that proves a noise generator is private to
#: its ``with_noise`` closure: one reference from the spec, one from the
#: bound ``standard_normal`` in the closure cell, plus getrefcount's own
#: argument.  Any further reference means someone else (a workload's
#: transaction counter, a CPI-modulation closure, a second demand function)
#: might interleave draws, so the stream must stay strictly per-tick.
_PRIVATE_RNG_REFS = 3


def _chunked_stream(rng):
    """Yield ``rng``'s scalar ``standard_normal`` stream, drawn in chunks.

    ``standard_normal(k)`` consumes the underlying bit stream exactly as
    ``k`` scalar calls do (the ziggurat fills the array element by element),
    so the yielded values — and the generator's position at every chunk
    boundary — are bit-identical to per-tick scalar draws, at a fraction of
    the per-draw call overhead.
    """
    draw = rng.standard_normal
    while True:
        yield from draw(_DRAW_CHUNK).tolist()


def resolve_demand_engine(explicit: Optional[str] = None) -> str:
    """The demand engine to use: ``explicit``, else the env var, else vector.

    Raises:
        ValueError: for a name outside :data:`DEMAND_ENGINES`.
    """
    engine = explicit or os.environ.get(DEMAND_ENGINE_ENV) or "vector"
    if engine not in DEMAND_ENGINES:
        raise ValueError(
            f"demand engine must be one of {', '.join(DEMAND_ENGINES)}, "
            f"got {engine!r}")
    return engine


# The workload modules import repro.cluster.interference, whose package
# __init__ imports machine, which imports this module — so the reference to
# SyntheticWorkload and the spec classes must resolve lazily at first
# compile, after every module involved has finished importing.
_WMODS = None


def _workload_modules():
    global _WMODS
    if _WMODS is None:
        from repro.workloads import base as wbase
        from repro.workloads import demand as wdemand
        _WMODS = (wbase, wdemand)
    return _WMODS


def _finite(*values: float) -> bool:
    return all(math.isfinite(v) for v in values)


def _as_index(indices: list[int], n: int):
    """A fancy index for ``indices`` — the cheap full slice when possible."""
    if len(indices) == n and indices == list(range(n)):
        return slice(None)
    return np.asarray(indices, dtype=np.intp)


class DemandColumns:
    """A compiled, batch-evaluable demand/cgroup program for one task table.

    Built by :meth:`compile` from a table's workloads and cgroups (in table
    order); the machine's vector input path and :class:`FusedFleet` both
    evaluate it — the fused fleet compiles one program over the whole arena
    so the ufunc passes run once per cluster-tick instead of once per
    machine.
    """

    __slots__ = (
        "n", "workloads", "cgroups",
        "_base0", "_vals",
        "_onoff", "_ramp", "_phased", "_scaled", "_noise",
        "_limits", "_allowed", "_cap_mask",
        "_cap_quota", "_cap_expires", "_cap_epoch", "_any_cap", "_no_caps",
        "_base_cpi_vals", "_base_cpi_dyn", "check_base_cpi",
        "batch_on_tick", "now_workloads",
        "_pending", "_pend_count", "_pend_t0",
    )

    @classmethod
    def compile(cls, workloads: Sequence, cgroups: Sequence[Cgroup],
                cpu_limits: Sequence[float], *,
                attach_ledger: bool = True) -> Optional["DemandColumns"]:
        """Compile a task table's demand plane, or ``None`` if ineligible.

        Ineligibility (→ the caller keeps the scalar closure path): any
        overridden/patched ``cpu_demand``, a demand function without a
        recognised spec tree (leaf under optional ``scaled`` wrappers under
        an optional outermost ``with_noise``), a spec-less ``scaled``
        factor, non-finite parameters, a subclassed cgroup, or a cgroup
        shared between tasks (the charge ledger needs one column per
        cgroup).
        """
        wbase, wdemand = _workload_modules()
        sw = wbase.SyntheticWorkload
        n = len(workloads)
        if n == 0:
            return None

        leaves: list = []
        chains: list[tuple] = []      # scaled factors, innermost first
        noises: list = []             # NoiseSpec or None
        try:
            for w in workloads:
                if (type(w).cpu_demand is not sw.cpu_demand
                        or "cpu_demand" in getattr(w, "__dict__", ())):
                    return None
                spec = wdemand.demand_spec(w._demand)
                noise = None
                if isinstance(spec, wdemand.NoiseSpec):
                    noise = spec
                    if not _finite(noise.sigma):
                        return None
                    spec = spec.base
                factors = []
                while isinstance(spec, wdemand.ScaledSpec):
                    if getattr(spec.factor, "spec", None) is None:
                        return None
                    factors.append(spec.factor)
                    spec = spec.base
                if isinstance(spec, wdemand.ConstantSpec):
                    ok = _finite(spec.level)
                elif isinstance(spec, wdemand.OnOffSpec):
                    ok = _finite(spec.on_level, spec.off_level,
                                 spec.on_seconds)
                elif isinstance(spec, wdemand.PhasedSpec):
                    ok = _finite(*spec.levels)
                elif isinstance(spec, wdemand.RampSpec):
                    ok = _finite(spec.start_level, spec.end_level)
                else:
                    return None
                if not ok:
                    return None
                leaves.append(spec)
                chains.append(tuple(reversed(factors)))
                noises.append(noise)
        except AttributeError:
            return None
        for cg in cgroups:
            if type(cg) is not Cgroup:
                return None
        if len({id(cg) for cg in cgroups}) != n:
            return None

        self = object.__new__(cls)
        self.n = n
        self.workloads = tuple(workloads)
        self.cgroups = tuple(cgroups)

        # -- leaf columns, grouped by kind ---------------------------------
        base0 = np.zeros(n)
        onoff_i: list[int] = []
        onoff_rows: list = []
        ramp_i: list[int] = []
        ramp_rows: list = []
        phased_groups: dict = {}
        for i, spec in enumerate(leaves):
            if isinstance(spec, wdemand.ConstantSpec):
                base0[i] = spec.level
            elif isinstance(spec, wdemand.OnOffSpec):
                onoff_i.append(i)
                onoff_rows.append(spec)
            elif isinstance(spec, wdemand.RampSpec):
                ramp_i.append(i)
                ramp_rows.append(spec)
            else:
                phased_groups.setdefault(spec, []).append(i)
        self._base0 = base0
        self._vals = np.empty(n)
        if onoff_i:
            self._onoff = (
                _as_index(onoff_i, n),
                np.array([s.on_level for s in onoff_rows]),
                np.array([s.off_level for s in onoff_rows]),
                np.array([s.period for s in onoff_rows], dtype=np.int64),
                np.array([s.phase for s in onoff_rows], dtype=np.int64),
                np.array([s.on_seconds for s in onoff_rows]),
                np.empty(len(onoff_i), dtype=np.int64),
            )
        else:
            self._onoff = None
        if ramp_i:
            self._ramp = (
                _as_index(ramp_i, n),
                np.array([s.start_level for s in ramp_rows]),
                np.array([s.end_level - s.start_level for s in ramp_rows]),
                np.array([s.end_level for s in ramp_rows]),
                np.array([s.duration for s in ramp_rows], dtype=np.int64),
            )
        else:
            self._ramp = None
        self._phased = tuple(
            (list(spec.boundaries), list(spec.levels), spec.total,
             spec.cycle, _as_index(idx, n))
            for spec, idx in phased_groups.items())

        # -- scaled stages: depth-major, one evaluation per factor spec ----
        stages: list[tuple] = []
        depth = 0
        while True:
            groups: dict = {}
            for i, chain in enumerate(chains):
                if len(chain) > depth:
                    key = chain[depth].spec
                    groups.setdefault(key, (chain[depth], []))[1].append(i)
            if not groups:
                break
            for fn, idx in groups.values():
                stages.append((_as_index(idx, n), fn))
            depth += 1
        self._scaled = tuple(stages)

        # -- noise: per-task draws from each task's own generator ----------
        # Full-width columns (sigma = 0 on noiseless slots): exp(0) == 1.0
        # exactly, so one in-place table-wide multiply applies the noise
        # without any fancy-indexed gather/scatter on the hot path.
        noise_i = [i for i, s in enumerate(noises) if s is not None]
        if noise_i:
            sigma_full = np.zeros(n)
            draws = []
            for i in noise_i:
                spec = noises[i]
                sigma_full[i] = spec.sigma
                # A generator no one else can reach gets a chunked stream
                # (installed once, then sticky on the spec so its position
                # survives recompiles and engine switches); a shared one
                # keeps strict per-tick scalar draws.
                stream = spec.stream
                it = stream[0] if stream is not None else None
                if (it is None and stream is not None
                        and sys.getrefcount(spec.rng) <= _PRIVATE_RNG_REFS):
                    it = stream[0] = _chunked_stream(spec.rng)
                draws.append(it.__next__ if it is not None
                             else spec.rng.standard_normal)
            self._noise = (
                _as_index(noise_i, n),
                sigma_full,
                tuple(draws),
                np.zeros(n),
                np.empty(n, dtype=bool),
            )
        else:
            self._noise = None

        # -- cgroup columns ------------------------------------------------
        self._limits = np.asarray(cpu_limits, dtype=np.float64)
        self._allowed = np.empty(n)
        self._cap_quota = np.empty(n)
        self._cap_expires = np.empty(n)
        self._cap_mask = np.empty(n, dtype=bool)
        self._cap_epoch = -1        # forces a sync on first use
        self._any_cap = False
        self._no_caps = [False] * n

        # -- base-CPI columns: constants cached, the rest scalar slots -----
        # A constant slot is validated (> 0) here once, so the tick loop
        # only needs its positivity check when dynamic slots exist; a
        # non-positive constant is routed through a dynamic slot so the
        # per-tick check raises exactly as the closure path would.
        vals = [0.0] * n
        dyn: list[tuple[int, object]] = []
        now_workloads: list = []
        for i, w in enumerate(workloads):
            overridden = (type(w).base_cpi is not sw.base_cpi
                          or "base_cpi" in getattr(w, "__dict__", ()))
            if overridden or w._cpi_modulation is not None:
                dyn.append((i, w.base_cpi))
                # Modulation (and any override) may read ``_now``, which
                # the batched on_tick path must therefore keep advancing.
                now_workloads.append(w)
            elif w._base_cpi > 0:
                vals[i] = w._base_cpi
            else:
                dyn.append((i, w.base_cpi))
        self._base_cpi_vals = vals
        self._base_cpi_dyn = tuple(dyn)
        self.check_base_cpi = bool(dyn)
        self.now_workloads = tuple(now_workloads)

        self.batch_on_tick = all(
            type(w).on_tick is sw.on_tick
            and "on_tick" not in getattr(w, "__dict__", ())
            for w in workloads)

        # -- charge ledger -------------------------------------------------
        if attach_ledger:
            self._pending = np.empty((_CHARGE_CHUNK, n))
            for cg in cgroups:
                cg._ledger = self
        else:
            self._pending = None
        self._pend_count = 0
        self._pend_t0 = 0
        return self

    # -- demand ---------------------------------------------------------------

    def demand(self, t: int) -> np.ndarray:
        """All tasks' clamped CPU demand at ``t``, in table order.

        Returns an internal buffer, overwritten by the next call.
        """
        vals = self._vals
        np.copyto(vals, self._base0)
        oo = self._onoff
        if oo is not None:
            idx, on, off, period, phase, on_seconds, ti = oo
            np.add(phase, t, ti)
            np.remainder(ti, period, ti)
            vals[idx] = np.where(np.less(ti, on_seconds), on, off)
        rp = self._ramp
        if rp is not None:
            idx, start, delta, end, duration = rp
            v = np.add(start, np.multiply(delta, np.divide(t, duration)))
            vals[idx] = np.where(np.greater_equal(t, duration), end, v)
        for boundaries, levels, total, cycle, idx in self._phased:
            if cycle:
                vals[idx] = levels[bisect_right(boundaries, t % total)]
            elif t >= total:
                vals[idx] = levels[-1]
            else:
                vals[idx] = levels[bisect_right(boundaries, t)]
        for idx, fn in self._scaled:
            seg = vals[idx] * fn(t)
            vals[idx] = np.where(seg > 0.0, seg, 0.0)
        nz = self._noise
        if nz is not None:
            idx, sigma, draws, z, mask = nz
            # One scalar draw per noisy task from its own generator, in
            # table order: bit-identical stream positions to the closures.
            z[idx] = [draw() for draw in draws]
            np.multiply(z, sigma, z)
            np.exp(z, z)
            # sigma is 0 on noiseless slots, so exp gives exactly 1.0 there
            # and the table-wide multiply leaves them bit-unchanged.  The
            # mask clamp matches the closures' ``d if d > 0.0 else 0.0``
            # (NaN — e.g. 0 × inf from an overflowing exp — goes to 0 too).
            np.multiply(vals, z, vals)
            np.greater(vals, 0.0, mask)
            np.logical_not(mask, mask)
            vals[mask] = 0.0
        return vals

    def allowed_and_capped(self, t: int) -> tuple[np.ndarray, list[bool]]:
        """Demand clipped by limits and active caps, plus the capped flags.

        The array is an internal buffer, overwritten by the next call; the
        capped list is shared when no cap is active (callers treat it as
        read-only).
        """
        a = self._allowed
        np.minimum(self.demand(t), self._limits, out=a)
        if Cgroup._cap_mutations != self._cap_epoch:
            self._sync_caps()
        if self._any_cap:
            active = np.less(t, self._cap_expires, out=self._cap_mask)
            if active.any():
                np.minimum(a, np.where(active, self._cap_quota, _INF),
                           out=a)
                return a, active.tolist()
        return a, self._no_caps

    def _sync_caps(self) -> None:
        """Rebuild the cap columns from the cgroups' current caps.

        Runs only when :attr:`Cgroup._cap_mutations` moved — i.e. some cap
        anywhere was applied or released.  Expired caps the scalar path
        would have dropped lazily stay in the columns; ``t < expires_at``
        makes them inactive all the same, and simulation time only moves
        forward.
        """
        quota = self._cap_quota
        expires = self._cap_expires
        any_cap = False
        for i, cg in enumerate(self.cgroups):
            cap = cg._cap
            if cap is None:
                quota[i] = _INF
                expires[i] = -_INF
            else:
                quota[i] = cap.quota
                expires[i] = cap.expires_at
                any_cap = True
        self._any_cap = any_cap
        self._cap_epoch = Cgroup._cap_mutations

    # -- base CPI -------------------------------------------------------------

    def base_cpi(self) -> list[float]:
        """Per-task contention-free CPI: cached constants, live modulated.

        Returns an internal list (constant slots written once at compile),
        overwritten by the next call; callers only read/copy it.
        """
        vals = self._base_cpi_vals
        for i, fn in self._base_cpi_dyn:
            vals[i] = fn()
        return vals

    # -- charge ledger --------------------------------------------------------

    def charge_tick(self, t: int, grants: list[float]) -> None:
        """Buffer one tick's per-task grants for deferred cgroup charging."""
        count = self._pend_count
        if count == 0:
            self._pend_t0 = t
        elif t != self._pend_t0 + count:
            # A manually driven machine skipped or replayed seconds; flush
            # so each cgroup still sees maximal consecutive runs.
            self.flush_charges()
            self._pend_t0 = t
            count = 0
        self._pending[count] = grants
        self._pend_count = count + 1
        if self._pend_count == _CHARGE_CHUNK:
            self.flush_charges()

    def flush_charges(self) -> None:
        """Apply all buffered charges to the cgroups.

        Called from every cgroup usage read (``usage_between``,
        ``usage_window_view``, ``last_usage``, ``total_cpu_seconds``), from
        placement changes, and when the buffer fills — so no reader can
        ever observe a stale ledger.
        """
        count = self._pend_count
        if count == 0 or self._pending is None:
            return
        self._pend_count = 0
        t0 = self._pend_t0
        block = self._pending[:count]
        # One reduce over the whole block; only when it fails does each
        # column re-check and (if offending) fall back to scalar charges.
        checked = bool(block.min() >= 0.0)
        for j, cg in enumerate(self.cgroups):
            cg._charge_run(t0, block[:, j], checked)
