"""Cluster-fused execution of the vectorized tick across many machines.

The per-machine vector engine already batches per-task arithmetic into numpy
calls, but with ~10 tasks per machine each ufunc spends more time in call
dispatch than in its inner loop.  :class:`FusedFleet` concatenates every
machine's task table into one cluster-wide arena so the ~30 elementwise
operations of a tick run once over *all* resident tasks instead of once per
machine.  On the reference benchmark (10 machines x ~10 tasks) this roughly
halves the cost of the physics phase.

Every observable stays bit-identical to stepping the machines one at a time
(``tests/test_tick_parity.py`` proves it end to end):

* demand and base-CPI closures — the only tick-phase code that consumes
  randomness — run in the same global order: machines in the simulation's
  name-sorted order, tasks in table order within each machine;
* per-machine pressure sums stay sequential Python loops over that
  machine's segment (numpy's pairwise reductions would round differently);
* measurement noise is drawn per machine from that machine's own generator
  into its segment of the cluster noise buffer.  Machines with sigma == 0
  draw nothing, exactly like the per-machine path; their segment is
  zero-filled so the shared ``exp``/multiply is a bit-exact no-op
  (``exp(0.0) == 1.0`` and ``x * 1.0 == x`` for every float);
* per-machine platform/model scalars (LLC size, CPI scale, coupling, sigma)
  become per-element constant columns, so each element sees the exact
  operand values the scalar formulas use;
* workload ``on_tick`` observations and cgroup charging run after the
  cluster math.  Relative to the per-machine path this moves machine j's
  observations after machine j+1's demand calls, which is unobservable:
  ``on_tick`` never draws randomness and only mutates state local to its
  own task and machine (the control-plane actions that *do* cross machines
  — caps, migrations — actuate from the sample-sink phase, which runs after
  all ticks in both orderings).

The fleet is rebuilt whenever placement changes (any machine's task table
is invalidated) and steps down to the per-machine path whenever a machine
is ineligible: legacy engine, patched tick methods, or a subclassed
interference model.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.cluster.demandplane import DemandColumns
from repro.cluster.interference import (InterferenceModel, MachineContention,
                                        _SATURATE_KNEE)
from repro.cluster.machine import Machine, TickResult
from repro.perf.counters import CounterBank

__all__ = ["FusedFleet", "fused_eligible"]


def fused_eligible(machine: Machine) -> bool:
    """Whether ``machine`` can participate in a fused fleet.

    The fused path inlines :meth:`Machine._tick_vector`'s math, so it must
    step aside whenever any of the pieces it bypasses could have been
    overridden — a subclass, an instance-patched ``tick`` (tests stub it),
    or a custom interference model.
    """
    cls = type(machine)
    return (machine.tick_engine == "vector"
            and "tick" not in machine.__dict__
            and cls.tick is Machine.tick
            and cls._tick_vector is Machine._tick_vector
            and cls._tick_inputs is Machine._tick_inputs
            and cls._tick_alloc is Machine._tick_alloc
            and cls._tick_finish is Machine._tick_finish
            and type(machine.interference).tick_batch
                is InterferenceModel.tick_batch
            and type(machine.counters).burn_matrix is CounterBank.burn_matrix)


class FusedFleet:
    """One cluster-wide arena for the vectorized tick of many machines."""

    __slots__ = (
        "machines", "tables", "ptables", "offsets", "segments", "total",
        "grants", "cache_contrib", "membw_contrib", "tmp", "tmp2",
        "inflation", "cpi", "l3_buf", "l2_buf", "kilo", "noise",
        "cache_pressure", "membw_pressure", "events", "event_columns",
        "llc_mib", "membw_cap", "cpi_scale", "cycles_per_sec", "sigma",
        "coupling", "coupling4", "cache_mib", "membw_gbps", "cache_sens",
        "membw_sens", "base_l3", "l2_base", "cold", "any_noise",
        "matrix_targets", "demand_columns",
    )

    @classmethod
    def build(cls, machine_order: Sequence[tuple[str, Machine]]
              ) -> Optional["FusedFleet"]:
        """A fleet over ``machine_order``, or ``None`` if any machine is
        ineligible (the caller then uses the per-machine path)."""
        machines = tuple(m for _, m in machine_order)
        if not machines:
            return None
        for m in machines:
            if not fused_eligible(m):
                return None
        return cls(machines)

    def __init__(self, machines: tuple[Machine, ...]):
        self.machines = machines
        tables = tuple(m._task_table() for m in machines)
        self.tables = tables
        self.ptables = tuple(tb.profile_table for tb in tables)
        offsets = []
        total = 0
        for tb in tables:
            offsets.append(total)
            total += len(tb.tasks)
        self.offsets = tuple(offsets)
        self.total = total
        self.segments = tuple(
            (j, m, tb, offsets[j], len(tb.tasks))
            for j, (m, tb) in enumerate(zip(machines, tables))
            if tb.tasks)

        # One cluster-wide demand program, when every resident segment
        # compiled one: demand/cap/base-CPI columns then span the whole
        # arena and phase 1's per-machine ufunc dispatch collapses into a
        # single pass.  Per-task noise draws happen in arena order ==
        # machine order x table order, exactly the per-machine sequence.
        # No ledger: each machine table's own program keeps charging its
        # cgroups.  Any ineligible segment -> per-machine phase 1.
        fleet_dc = None
        if self.segments and all(tb.demand_columns is not None
                                 for _, _, tb, _, _ in self.segments):
            workloads: list = []
            cgroups: list = []
            limits: list[float] = []
            for _, _, tb, _, _ in self.segments:
                workloads.extend(tb.workloads)
                cgroups.extend(tb.cgroups)
                limits.extend(tb.cpu_limits)
            fleet_dc = DemandColumns.compile(workloads, cgroups, limits,
                                             attach_ledger=False)
        self.demand_columns = fleet_dc

        # Scratch buffers, allocated once per fleet build.
        (self.grants, self.cache_contrib, self.membw_contrib, self.tmp,
         self.tmp2, self.inflation, self.cpi, self.l3_buf, self.l2_buf,
         self.kilo, self.noise, self.cache_pressure,
         self.membw_pressure) = np.empty((13, total), dtype=np.float64)
        self.events = np.empty((total, 5), dtype=np.float64)
        self.event_columns = tuple(self.events[:, i] for i in range(5))

        # Per-element constants: each machine's platform/model scalars
        # repeated across its segment, so elementwise ops see exactly the
        # operands the scalar formulas use.
        (llc, membw, cpi_scale, cycles, sigma, coupling,
         coupling4) = np.empty((7, total), dtype=np.float64)
        for j, m, tb, o, n in self.segments:
            end = o + n
            platform = m.platform
            llc[o:end] = platform.llc_mib
            membw[o:end] = platform.membw_gbps
            cpi_scale[o:end] = platform.cpi_scale
            cycles[o:end] = platform.cycles_per_cpu_second
            sigma[o:end] = m.cpi_noise_sigma
            k = m.interference.miss_rate_coupling
            coupling[o:end] = k
            # 0.25 * k is exact (power-of-two scale), so precomputing the
            # L2 coupling column matches the scalar expression bit for bit.
            coupling4[o:end] = 0.25 * k
        self.llc_mib, self.membw_cap = llc, membw
        self.cpi_scale, self.cycles_per_sec = cpi_scale, cycles
        self.sigma, self.coupling, self.coupling4 = sigma, coupling, coupling4

        # Profile columns, concatenated in segment order (empty tables
        # contribute zero-length arrays, keeping offsets aligned).
        ptables = [tb.profile_table for tb in tables]
        self.cache_mib = np.concatenate(
            [pt.cache_mib_per_cpu for pt in ptables])
        self.membw_gbps = np.concatenate(
            [pt.membw_gbps_per_cpu for pt in ptables])
        self.cache_sens = np.concatenate(
            [pt.cache_sensitivity for pt in ptables])
        self.membw_sens = np.concatenate(
            [pt.membw_sensitivity for pt in ptables])
        self.base_l3 = np.concatenate([pt.base_l3_mpki for pt in ptables])
        self.l2_base = np.concatenate([pt.l2_base_mpki for pt in ptables])

        cold = []
        for j, m, tb, o, n in self.segments:
            pt = tb.profile_table
            scale = m.interference.cold_start_scale
            for i in pt.cold_indices:
                cold.append((o + i, j, i,
                             float(pt.cold_start_penalty[i]), scale))
        self.cold = tuple(cold)
        self.any_noise = any(m.cpi_noise_sigma > 0.0
                             for _, m, _, _, _ in self.segments)
        self.matrix_targets = tuple(
            (tb.counter_matrix, self.events[o:o + n])
            for _, _, tb, o, n in self.segments)

    def matches(self, machine_order: Sequence[tuple[str, Machine]]) -> bool:
        """Whether this fleet is still valid for ``machine_order``.

        Placement changes null out a machine's cached task table and
        dynamic profile refreshes replace its profile table, so two
        identity checks per machine cover every invalidation.
        """
        machines = self.machines
        if len(machine_order) != len(machines):
            return False
        tables = self.tables
        ptables = self.ptables
        for i, (_, m) in enumerate(machine_order):
            if (m is not machines[i] or m._table is not tables[i]
                    or tables[i].profile_table is not ptables[i]):
                return False
        return True

    def step(self, t: int) -> Optional[dict[str, TickResult]]:
        """One fused cluster tick; per-machine results keyed by name.

        Returns ``None`` — before consuming any randomness — if a dynamic
        resource profile changed, after refreshing the affected tables.
        The caller then runs this tick per-machine and rebuilds the fleet.
        """
        tables = self.tables
        stale = False
        for tb in tables:
            profiles = tb.profiles
            for fn, p in zip(tb.profile_fns, profiles):
                if fn() is not p:
                    tb.refresh_profiles([f() for f in tb.profile_fns])
                    stale = True
                    break
        if stale:
            return None

        # Phase 1: demand, clipping, allocation.  With a fleet-wide demand
        # program the columnar passes run once over the arena and only the
        # small tier-allocation loop stays per machine; otherwise each
        # machine's _tick_inputs runs (columnar or closure per its engine).
        g = self.grants
        cpi = self.cpi
        segments = self.segments
        inputs: list[Optional[tuple[list[float], list[bool]]]] = \
            [None] * len(self.machines)
        fdc = self.demand_columns
        if fdc is not None:
            allowed_all, capped_all = fdc.allowed_and_capped(t)
            allowed_list = allowed_all.tolist()
            base_all = fdc.base_cpi()
            if fdc.check_base_cpi and not min(base_all) > 0:
                bad = min(base_all)
                raise ValueError(f"base_cpi must be positive, got {bad}")
            cpi[:] = base_all
            for j, m, tb, o, n in segments:
                end = o + n
                capped = capped_all[o:end]
                grants = m._tick_alloc(t, tb, allowed_list[o:end], capped)
                g[o:end] = grants
                inputs[j] = (grants, capped)
        else:
            for j, m, tb, o, n in segments:
                grants, capped, base = m._tick_inputs(t, tb)
                end = o + n
                g[o:end] = grants
                cpi[o:end] = base
                inputs[j] = (grants, capped)

        # Phase 2 (numpy, cluster-wide): contention, inflation, CPI,
        # miss rates, noise, counters — InterferenceModel.tick_batch's math
        # over one concatenated arena.
        cc, mc = self.cache_contrib, self.membw_contrib
        tmp, tmp2, infl = self.tmp, self.tmp2, self.inflation
        np.multiply(g, self.cache_mib, cc)
        np.divide(cc, self.llc_mib, cc)
        np.multiply(g, self.membw_gbps, mc)
        np.divide(mc, self.membw_cap, mc)
        cache_list = cc.tolist()
        membw_list = mc.tolist()
        pc, pm = self.cache_pressure, self.membw_pressure
        contentions: list[Optional[MachineContention]] = \
            [None] * len(self.machines)
        for j, m, tb, o, n in segments:
            end = o + n
            cseg = cache_list[o:end]
            mseg = membw_list[o:end]
            cp = 0.0
            for v in cseg:
                cp += v
            mp = 0.0
            for v in mseg:
                mp += v
            contentions[j] = MachineContention(
                cache_pressure=cp, membw_pressure=mp,
                cache_contrib=dict(zip(tb.names, cseg)),
                membw_contrib=dict(zip(tb.names, mseg)))
            pc[o:end] = cp
            pm[o:end] = mp
        np.subtract(pc, cc, tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.multiply(tmp, _SATURATE_KNEE, tmp2)
        np.add(tmp2, 1.0, tmp2)
        np.divide(tmp, tmp2, tmp)
        np.multiply(tmp, self.cache_sens, infl)
        np.subtract(pm, mc, tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.multiply(tmp, _SATURATE_KNEE, tmp2)
        np.add(tmp2, 1.0, tmp2)
        np.divide(tmp, tmp2, tmp)
        np.multiply(tmp, self.membw_sens, tmp)
        np.add(infl, tmp, infl)
        np.multiply(cpi, self.cpi_scale, cpi)
        np.add(infl, 1.0, tmp)
        np.multiply(cpi, tmp, cpi)
        for gi, j, li, penalty, scale in self.cold:
            cold = 1.0 + penalty * math.exp(-inputs[j][0][li] / scale)
            cpi[gi] = cpi[gi] * cold
        np.multiply(infl, self.coupling, tmp)
        np.add(tmp, 1.0, tmp)
        np.multiply(tmp, self.base_l3, self.l3_buf)
        np.multiply(infl, self.coupling4, tmp)
        np.add(tmp, 1.0, tmp)
        np.multiply(tmp, self.l2_base, self.l2_buf)

        if self.any_noise:
            noise = self.noise
            for j, m, tb, o, n in segments:
                end = o + n
                if m.cpi_noise_sigma > 0.0:
                    m.rng.standard_normal(out=noise[o:end])
                else:
                    noise[o:end] = 0.0
            np.multiply(noise, self.sigma, noise)
            np.exp(noise, noise)
            np.multiply(cpi, noise, cpi)

        ev = self.events
        cycles, instructions, l2, l3, mem = self.event_columns
        np.multiply(g, self.cycles_per_sec, cycles)
        np.divide(cycles, cpi, instructions)
        np.divide(instructions, 1000.0, self.kilo)
        np.multiply(self.kilo, self.l2_buf, l2)
        np.multiply(self.kilo, self.l3_buf, l3)
        np.multiply(l3, 1.1, mem)
        # Same validation contract as CounterBank.burn_matrix, enforced
        # once over the whole cluster's event matrix.
        if ev.size:
            lo = float(ev.min())
            if not lo >= 0.0:
                raise ValueError(
                    f"counter increments must be finite and >= 0, got {lo}")
            if float(ev.max()) == math.inf:
                raise ValueError("counter increments must be finite")
        for matrix, rows in self.matrix_targets:
            matrix += rows

        # Phase 3 (Python, per machine): results, charging, observations.
        cpis_all = cpi.tolist()
        offsets = self.offsets
        results: dict[str, TickResult] = {}
        for j, m in enumerate(self.machines):
            result = TickResult(t=t, departures=[])
            inp = inputs[j]
            if inp is not None:
                tb = tables[j]
                o = offsets[j]
                names = tb.names
                grants, capped = inp
                result.grants = dict(zip(names, grants))
                result.contention = contentions[j]
                result.cpis = dict(zip(names, cpis_all[o:o + len(names)]))
                m._tick_finish(t, tb, result, grants, capped)
            results[m.name] = result
        return results
