"""Shared-resource contention model: how co-runners inflate each other's CPI.

The paper deliberately does *not* diagnose which processor resource is
contended ("we do not attempt to determine which processor resources or
features are the point of contention").  CPI2 only needs the observable
consequence: when an antagonist with a large shared-resource appetite runs
hot, its neighbours' CPI rises, roughly in proportion to the antagonist's CPU
usage — that proportionality is exactly what the correlation detector of
Section 4.2 exploits.

This module produces that consequence from first principles:

* every task declares a :class:`ResourceProfile` — how much last-level cache
  and memory bandwidth it touches per CPU-second of execution, and how
  sensitive its own CPI is to pressure from others;
* each tick the machine computes a :class:`MachineContention` summary (total
  cache and bandwidth pressure, normalised to the platform's capacity);
* :class:`InterferenceModel` turns "pressure from everyone else" into a CPI
  inflation factor and an L3 miss-rate inflation for each task.

The model also covers two second-order effects the paper's case studies rely
on: CPI rising at near-zero CPU usage (case 3's bimodal "victim", the reason
for the 0.25 CPU-sec/sec gate) via a cold-start penalty, and L3
misses-per-instruction tracking CPI inflation (Figure 15c's 0.87 linear
correlation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.cluster.platform import Platform

__all__ = ["ResourceProfile", "MachineContention", "InterferenceModel"]


@dataclass(frozen=True)
class ResourceProfile:
    """Per-task shared-resource appetite and sensitivity.

    Attributes:
        cache_mib_per_cpu: MiB of last-level cache the task churns per
            CPU-sec/sec of execution.  A streaming video-processing job might
            touch tens of MiB; a tight compute loop nearly none.
        membw_gbps_per_cpu: memory bandwidth consumed per CPU-sec/sec.
        cache_sensitivity: how strongly co-runner cache pressure inflates this
            task's CPI (0 = immune).
        membw_sensitivity: ditto for memory-bandwidth pressure.
        base_l3_mpki: baseline L3 misses per thousand instructions when
            running alone.
        cold_start_penalty: additive CPI multiplier that appears as CPU usage
            approaches zero, modelling cold caches after idling (case 3).
    """

    cache_mib_per_cpu: float
    membw_gbps_per_cpu: float
    cache_sensitivity: float = 1.0
    membw_sensitivity: float = 1.0
    base_l3_mpki: float = 1.0
    cold_start_penalty: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("cache_mib_per_cpu", "membw_gbps_per_cpu",
                           "cache_sensitivity", "membw_sensitivity",
                           "base_l3_mpki", "cold_start_penalty"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")


@dataclass(frozen=True)
class MachineContention:
    """Aggregate shared-resource pressure on a machine during one tick.

    Pressure is normalised: 1.0 means the resident tasks together demand
    exactly the platform's capacity (full LLC, full memory bandwidth).
    Values above 1.0 are common on overcommitted machines.
    """

    cache_pressure: float
    membw_pressure: float

    #: Per-task contributions, keyed by task name, so "pressure from everyone
    #: else" can be computed by subtraction.
    cache_contrib: Mapping[str, float]
    membw_contrib: Mapping[str, float]

    def others_cache(self, task_name: str) -> float:
        """Cache pressure exerted by every task except ``task_name``."""
        return max(0.0, self.cache_pressure - self.cache_contrib.get(task_name, 0.0))

    def others_membw(self, task_name: str) -> float:
        """Memory-bandwidth pressure exerted by every task except ``task_name``."""
        return max(0.0, self.membw_pressure - self.membw_contrib.get(task_name, 0.0))


def _saturate(pressure: float, knee: float = 0.35) -> float:
    """Soft-saturating response to pressure.

    Linear for small pressure (so correlation with an antagonist's usage stays
    strong, which Section 4.2 needs) but sub-linear as pressure grows (caches
    can only be thrashed so hard).
    """
    if pressure <= 0.0:
        return 0.0
    return pressure / (1.0 + knee * pressure)


class InterferenceModel:
    """Turns machine contention into per-task CPI and miss-rate inflation."""

    def __init__(self, cold_start_scale: float = 0.08,
                 miss_rate_coupling: float = 0.9):
        """Args:
            cold_start_scale: CPU-usage scale (CPU-sec/sec) of the cold-start
                penalty's exponential decay; at usage = scale the penalty has
                fallen to ~37% of its maximum.
            miss_rate_coupling: fraction of CPI inflation that shows up as L3
                miss-rate inflation, producing Figure 15c's linear relation.
        """
        if cold_start_scale <= 0:
            raise ValueError(f"cold_start_scale must be positive, got {cold_start_scale}")
        if miss_rate_coupling < 0:
            raise ValueError(f"miss_rate_coupling must be >= 0, got {miss_rate_coupling}")
        self.cold_start_scale = cold_start_scale
        self.miss_rate_coupling = miss_rate_coupling

    def contention(
        self,
        platform: Platform,
        usages: Iterable[tuple[str, float, ResourceProfile]],
    ) -> MachineContention:
        """Aggregate pressure from ``(task_name, cpu_usage, profile)`` triples."""
        cache_contrib: dict[str, float] = {}
        membw_contrib: dict[str, float] = {}
        for name, usage, profile in usages:
            if usage < 0:
                raise ValueError(f"usage must be >= 0, got {usage} for {name}")
            cache_contrib[name] = usage * profile.cache_mib_per_cpu / platform.llc_mib
            membw_contrib[name] = usage * profile.membw_gbps_per_cpu / platform.membw_gbps
        return MachineContention(
            cache_pressure=sum(cache_contrib.values()),
            membw_pressure=sum(membw_contrib.values()),
            cache_contrib=cache_contrib,
            membw_contrib=membw_contrib,
        )

    def inflation(self, task_name: str, profile: ResourceProfile,
                  contention: MachineContention) -> float:
        """CPI inflation (0 = none) from everyone else's pressure."""
        cache = profile.cache_sensitivity * _saturate(contention.others_cache(task_name))
        membw = profile.membw_sensitivity * _saturate(contention.others_membw(task_name))
        return cache + membw

    def cold_start_factor(self, profile: ResourceProfile, usage: float) -> float:
        """Multiplicative CPI factor from running nearly idle (case 3)."""
        if profile.cold_start_penalty == 0.0:
            return 1.0
        return 1.0 + profile.cold_start_penalty * math.exp(
            -usage / self.cold_start_scale)

    def effective_cpi(
        self,
        task_name: str,
        base_cpi: float,
        profile: ResourceProfile,
        contention: MachineContention,
        platform: Platform,
        usage: float,
    ) -> float:
        """The CPI a task actually experiences this tick (before noise).

        ``base_cpi * platform_scale * (1 + inflation) * cold_start``.
        """
        if base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {base_cpi}")
        inflation = self.inflation(task_name, profile, contention)
        cold = self.cold_start_factor(profile, usage)
        return base_cpi * platform.cpi_scale * (1.0 + inflation) * cold

    def l3_mpki(self, task_name: str, profile: ResourceProfile,
                contention: MachineContention) -> float:
        """L3 misses per thousand instructions under current contention."""
        inflation = self.inflation(task_name, profile, contention)
        return profile.base_l3_mpki * (1.0 + self.miss_rate_coupling * inflation)

    def l2_mpki(self, task_name: str, profile: ResourceProfile,
                contention: MachineContention) -> float:
        """L2 misses per thousand instructions under current contention.

        The L2 is private, so co-runner contention barely moves it: its
        coupling to CPI inflation is a quarter of the (shared) L3's.  This is
        why Section 7.2 finds L3 misses/instruction the best-correlated
        memory metric — the substrate has to reproduce that asymmetry for the
        comparison to mean anything.
        """
        inflation = self.inflation(task_name, profile, contention)
        return (3.0 * profile.base_l3_mpki
                * (1.0 + 0.25 * self.miss_rate_coupling * inflation))
