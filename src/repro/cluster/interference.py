"""Shared-resource contention model: how co-runners inflate each other's CPI.

The paper deliberately does *not* diagnose which processor resource is
contended ("we do not attempt to determine which processor resources or
features are the point of contention").  CPI2 only needs the observable
consequence: when an antagonist with a large shared-resource appetite runs
hot, its neighbours' CPI rises, roughly in proportion to the antagonist's CPU
usage — that proportionality is exactly what the correlation detector of
Section 4.2 exploits.

This module produces that consequence from first principles:

* every task declares a :class:`ResourceProfile` — how much last-level cache
  and memory bandwidth it touches per CPU-second of execution, and how
  sensitive its own CPI is to pressure from others;
* each tick the machine computes a :class:`MachineContention` summary (total
  cache and bandwidth pressure, normalised to the platform's capacity);
* :class:`InterferenceModel` turns "pressure from everyone else" into a CPI
  inflation factor and an L3 miss-rate inflation for each task.

The model also covers two second-order effects the paper's case studies rely
on: CPI rising at near-zero CPU usage (case 3's bimodal "victim", the reason
for the 0.25 CPU-sec/sec gate) via a cold-start penalty, and L3
misses-per-instruction tracking CPI inflation (Figure 15c's 0.87 linear
correlation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cluster.platform import Platform

__all__ = ["ResourceProfile", "MachineContention", "InterferenceModel",
           "ProfileTable", "BatchWorkspace"]


@dataclass(frozen=True)
class ResourceProfile:
    """Per-task shared-resource appetite and sensitivity.

    Attributes:
        cache_mib_per_cpu: MiB of last-level cache the task churns per
            CPU-sec/sec of execution.  A streaming video-processing job might
            touch tens of MiB; a tight compute loop nearly none.
        membw_gbps_per_cpu: memory bandwidth consumed per CPU-sec/sec.
        cache_sensitivity: how strongly co-runner cache pressure inflates this
            task's CPI (0 = immune).
        membw_sensitivity: ditto for memory-bandwidth pressure.
        base_l3_mpki: baseline L3 misses per thousand instructions when
            running alone.
        cold_start_penalty: additive CPI multiplier that appears as CPU usage
            approaches zero, modelling cold caches after idling (case 3).
    """

    cache_mib_per_cpu: float
    membw_gbps_per_cpu: float
    cache_sensitivity: float = 1.0
    membw_sensitivity: float = 1.0
    base_l3_mpki: float = 1.0
    cold_start_penalty: float = 0.0

    def __post_init__(self) -> None:
        for field_name in ("cache_mib_per_cpu", "membw_gbps_per_cpu",
                           "cache_sensitivity", "membw_sensitivity",
                           "base_l3_mpki", "cold_start_penalty"):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be >= 0, got {value}")


@dataclass(frozen=True)
class MachineContention:
    """Aggregate shared-resource pressure on a machine during one tick.

    Pressure is normalised: 1.0 means the resident tasks together demand
    exactly the platform's capacity (full LLC, full memory bandwidth).
    Values above 1.0 are common on overcommitted machines.
    """

    cache_pressure: float
    membw_pressure: float

    #: Per-task contributions, keyed by task name, so "pressure from everyone
    #: else" can be computed by subtraction.
    cache_contrib: Mapping[str, float]
    membw_contrib: Mapping[str, float]

    def others_cache(self, task_name: str) -> float:
        """Cache pressure exerted by every task except ``task_name``."""
        return max(0.0, self.cache_pressure - self.cache_contrib.get(task_name, 0.0))

    def others_membw(self, task_name: str) -> float:
        """Memory-bandwidth pressure exerted by every task except ``task_name``."""
        return max(0.0, self.membw_pressure - self.membw_contrib.get(task_name, 0.0))


#: The saturation knee shared by the scalar and batched paths.
_SATURATE_KNEE = 0.35


def _saturate(pressure: float, knee: float = _SATURATE_KNEE) -> float:
    """Soft-saturating response to pressure.

    Linear for small pressure (so correlation with an antagonist's usage stays
    strong, which Section 4.2 needs) but sub-linear as pressure grows (caches
    can only be thrashed so hard).
    """
    if pressure <= 0.0:
        return 0.0
    return pressure / (1.0 + knee * pressure)


@dataclass(frozen=True)
class ProfileTable:
    """Column-oriented view of many tasks' :class:`ResourceProfile` values.

    Built once per machine task-table rebuild (placement change), consumed
    every tick by the vectorized engine.  All fields are float64 arrays of
    the same length, in the machine's stable task order.
    """

    cache_mib_per_cpu: np.ndarray
    membw_gbps_per_cpu: np.ndarray
    cache_sensitivity: np.ndarray
    membw_sensitivity: np.ndarray
    base_l3_mpki: np.ndarray
    #: ``3.0 * base_l3_mpki`` — the scalar :meth:`InterferenceModel.l2_mpki`
    #: computes this product every call; precomputing it is exact.
    l2_base_mpki: np.ndarray
    cold_start_penalty: np.ndarray
    #: Positions with a non-zero cold-start penalty (usually few or none);
    #: the cold-start factor is the one transcendental the batched path must
    #: evaluate with ``math.exp`` to stay bit-identical to the scalar path.
    cold_indices: tuple[int, ...]

    @classmethod
    def from_profiles(cls, profiles: Sequence[ResourceProfile]) -> "ProfileTable":
        """Columnize ``profiles`` (order preserved)."""
        base_l3 = np.array([p.base_l3_mpki for p in profiles], dtype=np.float64)
        return cls(
            cache_mib_per_cpu=np.array(
                [p.cache_mib_per_cpu for p in profiles], dtype=np.float64),
            membw_gbps_per_cpu=np.array(
                [p.membw_gbps_per_cpu for p in profiles], dtype=np.float64),
            cache_sensitivity=np.array(
                [p.cache_sensitivity for p in profiles], dtype=np.float64),
            membw_sensitivity=np.array(
                [p.membw_sensitivity for p in profiles], dtype=np.float64),
            base_l3_mpki=base_l3,
            l2_base_mpki=3.0 * base_l3,
            cold_start_penalty=np.array(
                [p.cold_start_penalty for p in profiles], dtype=np.float64),
            cold_indices=tuple(i for i, p in enumerate(profiles)
                               if p.cold_start_penalty != 0.0),
        )


class InterferenceModel:
    """Turns machine contention into per-task CPI and miss-rate inflation."""

    def __init__(self, cold_start_scale: float = 0.08,
                 miss_rate_coupling: float = 0.9):
        """Args:
            cold_start_scale: CPU-usage scale (CPU-sec/sec) of the cold-start
                penalty's exponential decay; at usage = scale the penalty has
                fallen to ~37% of its maximum.
            miss_rate_coupling: fraction of CPI inflation that shows up as L3
                miss-rate inflation, producing Figure 15c's linear relation.
        """
        if cold_start_scale <= 0:
            raise ValueError(f"cold_start_scale must be positive, got {cold_start_scale}")
        if miss_rate_coupling < 0:
            raise ValueError(f"miss_rate_coupling must be >= 0, got {miss_rate_coupling}")
        self.cold_start_scale = cold_start_scale
        self.miss_rate_coupling = miss_rate_coupling

    def contention(
        self,
        platform: Platform,
        usages: Iterable[tuple[str, float, ResourceProfile]],
    ) -> MachineContention:
        """Aggregate pressure from ``(task_name, cpu_usage, profile)`` triples."""
        cache_contrib: dict[str, float] = {}
        membw_contrib: dict[str, float] = {}
        for name, usage, profile in usages:
            if usage < 0:
                raise ValueError(f"usage must be >= 0, got {usage} for {name}")
            cache_contrib[name] = usage * profile.cache_mib_per_cpu / platform.llc_mib
            membw_contrib[name] = usage * profile.membw_gbps_per_cpu / platform.membw_gbps
        return MachineContention(
            cache_pressure=sum(cache_contrib.values()),
            membw_pressure=sum(membw_contrib.values()),
            cache_contrib=cache_contrib,
            membw_contrib=membw_contrib,
        )

    def inflation(self, task_name: str, profile: ResourceProfile,
                  contention: MachineContention) -> float:
        """CPI inflation (0 = none) from everyone else's pressure."""
        cache = profile.cache_sensitivity * _saturate(contention.others_cache(task_name))
        membw = profile.membw_sensitivity * _saturate(contention.others_membw(task_name))
        return cache + membw

    def cold_start_factor(self, profile: ResourceProfile, usage: float) -> float:
        """Multiplicative CPI factor from running nearly idle (case 3)."""
        if profile.cold_start_penalty == 0.0:
            return 1.0
        return 1.0 + profile.cold_start_penalty * math.exp(
            -usage / self.cold_start_scale)

    def effective_cpi(
        self,
        task_name: str,
        base_cpi: float,
        profile: ResourceProfile,
        contention: MachineContention,
        platform: Platform,
        usage: float,
    ) -> float:
        """The CPI a task actually experiences this tick (before noise).

        ``base_cpi * platform_scale * (1 + inflation) * cold_start``.
        """
        if base_cpi <= 0:
            raise ValueError(f"base_cpi must be positive, got {base_cpi}")
        inflation = self.inflation(task_name, profile, contention)
        cold = self.cold_start_factor(profile, usage)
        return base_cpi * platform.cpi_scale * (1.0 + inflation) * cold

    def l3_mpki(self, task_name: str, profile: ResourceProfile,
                contention: MachineContention) -> float:
        """L3 misses per thousand instructions under current contention."""
        inflation = self.inflation(task_name, profile, contention)
        return profile.base_l3_mpki * (1.0 + self.miss_rate_coupling * inflation)

    def l2_mpki(self, task_name: str, profile: ResourceProfile,
                contention: MachineContention) -> float:
        """L2 misses per thousand instructions under current contention.

        The L2 is private, so co-runner contention barely moves it: its
        coupling to CPI inflation is a quarter of the (shared) L3's.  This is
        why Section 7.2 finds L3 misses/instruction the best-correlated
        memory metric — the substrate has to reproduce that asymmetry for the
        comparison to mean anything.
        """
        inflation = self.inflation(task_name, profile, contention)
        return (3.0 * profile.base_l3_mpki
                * (1.0 + 0.25 * self.miss_rate_coupling * inflation))

    # -- batched path (the vectorized tick engine) ---------------------------

    def tick_batch(
        self,
        platform: Platform,
        names: Sequence[str],
        base_cpi: Sequence[float],
        grants: Sequence[float],
        table: ProfileTable,
        ws: "BatchWorkspace",
    ) -> MachineContention:
        """One machine-tick of contention + CPI + miss-rate math, fused.

        Computes exactly what the scalar methods above compute, for every
        task at once, into ``ws``'s preallocated buffers (``ws.inflation``,
        ``ws.cpi`` pre-noise, ``ws.l3_mpki``, ``ws.l2_mpki``).  Bit-identical
        results are a hard contract (see docs/performance.md): every
        operation is IEEE-exact elementwise arithmetic (+, -, *, /, max)
        whose vectorized result equals the scalar result, operand order
        within each formula matches the scalar expressions, reductions run
        sequentially in task order to match Python's ``sum``, and the one
        transcendental (the cold-start ``math.exp``) stays scalar.

        Args:
            platform: the machine's hardware type.
            names: task names, in table order.
            base_cpi: per-task contention-free CPI (validated positive here,
                matching the scalar :meth:`effective_cpi`).
            grants: per-task granted CPU (never negative by construction).
            table: the resident tasks' columnized profiles.
            ws: scratch buffers sized for this task count.

        Returns:
            The same :class:`MachineContention` the scalar path builds.
        """
        cc, mc, tmp, tmp2 = ws.cache_contrib, ws.membw_contrib, ws.tmp, ws.tmp2
        infl, cpi = ws.inflation, ws.cpi
        gr = ws.grants
        gr[:] = grants
        # contention(): contrib = usage * appetite / capacity.  (``out`` is
        # passed positionally throughout: the keyword form costs an extra
        # ~0.25us of argument parsing per ufunc call, which matters at ~30
        # calls per machine-tick.)
        np.multiply(gr, table.cache_mib_per_cpu, cc)
        np.divide(cc, platform.llc_mib, cc)
        np.multiply(gr, table.membw_gbps_per_cpu, mc)
        np.divide(mc, platform.membw_gbps, mc)
        cache_list = cc.tolist()
        membw_list = mc.tolist()
        # Sequential sums match the scalar path's sum(dict.values()).
        cache_pressure = 0.0
        for v in cache_list:
            cache_pressure += v
        membw_pressure = 0.0
        for v in membw_list:
            membw_pressure += v
        contention = MachineContention(
            cache_pressure=cache_pressure,
            membw_pressure=membw_pressure,
            cache_contrib=dict(zip(names, cache_list)),
            membw_contrib=dict(zip(names, membw_list)),
        )
        # inflation(): sensitivity * _saturate(pressure from everyone else).
        # _saturate's p <= 0 early-return is covered exactly: after
        # maximum(), p is 0.0 and 0.0 / (1.0 + 0.0) == 0.0.
        np.subtract(cache_pressure, cc, tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.multiply(tmp, _SATURATE_KNEE, tmp2)
        np.add(tmp2, 1.0, tmp2)
        np.divide(tmp, tmp2, tmp)
        np.multiply(tmp, table.cache_sensitivity, infl)
        np.subtract(membw_pressure, mc, tmp)
        np.maximum(tmp, 0.0, out=tmp)
        np.multiply(tmp, _SATURATE_KNEE, tmp2)
        np.add(tmp2, 1.0, tmp2)
        np.divide(tmp, tmp2, tmp)
        np.multiply(tmp, table.membw_sensitivity, tmp)
        np.add(infl, tmp, infl)
        # effective_cpi(): base * scale * (1 + inflation) * cold_start.
        cpi[:] = base_cpi
        np.multiply(cpi, platform.cpi_scale, cpi)
        np.add(infl, 1.0, tmp)
        np.multiply(cpi, tmp, cpi)
        for i in table.cold_indices:
            cold = 1.0 + table.cold_start_penalty[i] * math.exp(
                -grants[i] / self.cold_start_scale)
            cpi[i] = cpi[i] * cold
        # l3_mpki() / l2_mpki().
        np.multiply(infl, self.miss_rate_coupling, tmp)
        np.add(tmp, 1.0, tmp)
        np.multiply(tmp, table.base_l3_mpki, ws.l3_mpki)
        np.multiply(infl, 0.25 * self.miss_rate_coupling, tmp)
        np.add(tmp, 1.0, tmp)
        np.multiply(tmp, table.l2_base_mpki, ws.l2_mpki)
        return contention


class BatchWorkspace:
    """Preallocated scratch buffers for :meth:`InterferenceModel.tick_batch`.

    One per machine task-table (sized to the resident task count); reused
    every tick so the hot path allocates nothing.  ``events`` is the
    counter-burn matrix in :data:`repro.perf.counters.EVENT_ORDER` column
    layout.
    """

    __slots__ = ("n", "grants", "cache_contrib", "membw_contrib", "tmp",
                 "tmp2", "inflation", "cpi", "l3_mpki", "l2_mpki", "kilo",
                 "noise", "events", "event_columns")

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"workspace needs n >= 1, got {n}")
        self.n = n
        (self.grants, self.cache_contrib, self.membw_contrib, self.tmp,
         self.tmp2, self.inflation, self.cpi, self.l3_mpki, self.l2_mpki,
         self.kilo, self.noise) = np.empty((11, n), dtype=np.float64)
        self.events = np.empty((n, 5), dtype=np.float64)
        #: Per-event column views of ``events``, prebuilt so the tick does
        #: not pay the ``events[:, i]`` view construction five times a tick.
        self.event_columns = tuple(self.events[:, i] for i in range(5))
