"""Jobs: named collections of identical tasks.

"Jobs with many tasks are the norm: 96% of the tasks we run are part of a job
with at least 10 tasks ... Tasks in the same job are similar: they run the
same binary, and typically process similar data."  (Section 2.)

A :class:`JobSpec` describes what to run (scheduling class, priority band,
per-task CPU, and a factory producing one workload model per task); a
:class:`Job` is the instantiated set of tasks.  CPI2 aggregates CPI samples
at job x platform granularity, so the job name is the aggregation key.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.cluster.task import (
    PriorityBand,
    SchedulingClass,
    Task,
    TaskState,
    WorkloadModel,
)

__all__ = ["JobSpec", "Job"]

#: A factory making the workload model for task ``index`` of a job.  Each
#: task gets its own instance so per-task state (phase offsets, lame-duck
#: mode) is independent, as it is for real processes.
WorkloadFactory = Callable[[int], WorkloadModel]


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to instantiate a job.

    Attributes:
        name: cluster-unique job name (the CPI aggregation key).
        num_tasks: how many identical tasks the job runs.
        scheduling_class: latency-sensitive / batch / best-effort.
        priority_band: production / non-production (Section 7.2's split).
        cpu_limit_per_task: cgroup CPU limit for each task, CPU-sec/sec.
        workload_factory: builds the per-task workload model.
        protection_eligible: whether CPI2 may act on this job's behalf when
            its tasks are victims.  Defaults to True for latency-sensitive
            jobs ("because it is latency-sensitive, or because it is
            explicitly marked as eligible").
    """

    name: str
    num_tasks: int
    scheduling_class: SchedulingClass
    priority_band: PriorityBand
    cpu_limit_per_task: float
    workload_factory: WorkloadFactory = field(repr=False)
    protection_eligible: bool | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if "/" in self.name:
            raise ValueError(f"job name may not contain '/': {self.name!r}")
        if self.num_tasks < 1:
            raise ValueError(f"num_tasks must be >= 1, got {self.num_tasks}")
        if self.cpu_limit_per_task <= 0:
            raise ValueError(
                f"cpu_limit_per_task must be positive, got {self.cpu_limit_per_task}")


class Job:
    """An instantiated job: the spec plus its live tasks."""

    def __init__(self, spec: JobSpec):
        self.spec = spec
        self.tasks: list[Task] = [
            Task(job=self, index=i, workload=spec.workload_factory(i),
                 cpu_limit=spec.cpu_limit_per_task)
            for i in range(spec.num_tasks)
        ]

    # -- spec passthroughs ----------------------------------------------------

    @property
    def name(self) -> str:
        """Job name (CPI aggregation key)."""
        return self.spec.name

    @property
    def scheduling_class(self) -> SchedulingClass:
        """The job's scheduling class."""
        return self.spec.scheduling_class

    @property
    def priority_band(self) -> PriorityBand:
        """The job's priority band."""
        return self.spec.priority_band

    @property
    def protection_eligible(self) -> bool:
        """Whether CPI2 may throttle antagonists on this job's behalf."""
        if self.spec.protection_eligible is not None:
            return self.spec.protection_eligible
        return self.scheduling_class is SchedulingClass.LATENCY_SENSITIVE

    # -- task views -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def running_tasks(self) -> list[Task]:
        """Tasks currently placed and executing."""
        return [t for t in self.tasks if t.state is TaskState.RUNNING]

    def pending_tasks(self) -> list[Task]:
        """Tasks waiting for placement (including evicted ones to replace)."""
        return [t for t in self.tasks
                if t.state in (TaskState.PENDING, TaskState.PREEMPTED)]

    def __repr__(self) -> str:
        return (f"Job({self.name}, {self.scheduling_class.value}, "
                f"{self.priority_band.value}, tasks={len(self.tasks)})")
