"""A machine: cores, resident tasks, CPU allocation, and counter generation.

Each simulated second the machine:

1. asks every resident workload for its CPU demand,
2. clips each demand by its cgroup (limit and any hard-cap),
3. allocates cores by scheduling-class tier — latency-sensitive tasks first,
   then batch, then best-effort, pro-rata within a tier when oversubscribed
   (a simplification of CFS shares that preserves the property CPI2 needs:
   hard-capping an antagonist frees cycles and, more importantly, removes its
   shared-resource pressure),
4. computes the contention the resident mix generates and each task's
   effective CPI under it,
5. burns the granted CPU into per-cgroup performance counters
   (cycles, instructions, cache misses), and
6. lets each workload observe the tick (so MapReduce workers can enter
   lame-duck mode or give up when capped).

Two tick engines implement that contract:

* ``vector`` (default) — batches all per-task arithmetic into numpy arrays
  keyed by a stable task-index table that is rebuilt only when placement
  changes.  Measurement noise is one bulk ``rng.standard_normal(n)`` draw
  per machine-tick (consumed in task-name-sorted order, exactly the order
  the scalar engine draws in), and counters burn through
  :meth:`~repro.perf.counters.CounterBank.burn_batch`.
* ``legacy`` — the original scalar loop, kept verbatim as the golden
  reference.  ``tests/test_tick_parity.py`` proves both engines produce
  byte-identical CPI sample streams and incidents for the same seed; the
  invariants that make this possible are documented in
  ``docs/performance.md``.

Select an engine per machine via ``Machine(tick_engine=...)`` or process-wide
with ``REPRO_TICK_ENGINE=legacy|vector``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.demandplane import DemandColumns, resolve_demand_engine
from repro.cluster.interference import (BatchWorkspace, InterferenceModel,
                                        MachineContention, ProfileTable,
                                        ResourceProfile)
from repro.cluster.platform import Platform
from repro.cluster.task import SchedulingClass, Task, TaskState
from repro.perf.counters import CounterBank
from repro.perf.events import CounterEvent

__all__ = ["Machine", "TickResult", "TICK_ENGINES", "default_tick_engine"]

#: Allocation order when cores are oversubscribed.
_TIER_ORDER = (
    SchedulingClass.LATENCY_SENSITIVE,
    SchedulingClass.BATCH,
    SchedulingClass.BEST_EFFORT,
)

#: Cross-cgroup context switches per second charged per runnable task beyond
#: the first on a core — a crude but sufficient model for the overhead ledger.
_SWITCHES_PER_TASK_SECOND = 20

#: Valid tick-engine names.
TICK_ENGINES = ("vector", "legacy")


def default_tick_engine() -> str:
    """The process-wide engine choice: ``REPRO_TICK_ENGINE`` or ``vector``."""
    engine = os.environ.get("REPRO_TICK_ENGINE", "vector")
    if engine not in TICK_ENGINES:
        raise ValueError(
            f"REPRO_TICK_ENGINE must be one of {TICK_ENGINES}, got {engine!r}")
    return engine


@dataclass(frozen=True)
class DutyCycleState:
    """An active hardware duty-cycle modulation (paper Section 8).

    Duty-cycle modulation gates cores, not cgroups: the target task's cores
    run at ``level`` duty, and because cores are time-shared (and
    hyper-thread siblings are forced to the same level), every co-resident
    task loses a share of its CPU proportional to how many of the machine's
    cores are affected.  "It is Intel-specific and operates on a per-core
    basis ... so we chose not to use it."
    """

    target_task: str
    level: float        # duty fraction the target's cores run at (0..1)
    core_share: float   # fraction of the machine's cores affected
    expires_at: int

    def active_at(self, t: int) -> bool:
        return t < self.expires_at


@dataclass
class TickResult:
    """What happened on a machine during one simulated second."""

    t: int
    #: CPU actually granted per task name (CPU-sec/sec).
    grants: dict[str, float] = field(default_factory=dict)
    #: Effective CPI experienced per task name (after noise).
    cpis: dict[str, float] = field(default_factory=dict)
    #: The contention summary used for this tick.
    contention: Optional[MachineContention] = None
    #: Tasks that left the machine this tick, with their departure state.
    departures: list[tuple[Task, TaskState]] = field(default_factory=list)


class _TaskTable:
    """The vectorized engine's stable task-index table.

    One instance per resident-task-set; rebuilt whenever placement changes
    (:meth:`Machine.place` / :meth:`Machine.remove` invalidate it).  Rows are
    in task-name-sorted order — the same order the legacy engine iterates
    and draws noise in, which is what makes the bulk RNG draw bit-compatible.

    Besides the identity columns it holds everything per-tick work would
    otherwise look up per task: prebound workload methods, cgroup limits,
    the columnized profiles, the fused-math scratch buffers, and the shared
    counter matrix the tick burns into with a single array add.
    """

    __slots__ = ("tasks", "names", "cgroups", "cgroup_names", "workloads",
                 "demand_fns", "on_tick_fns", "base_cpi_fns", "profile_fns",
                 "cpu_limits", "tier_indices", "profiles", "profile_table",
                 "workspace", "counter_matrix", "demand_columns",
                 "usage_matrix", "usage_rows_ok")

    def __init__(self, tasks: Sequence[Task], counters: CounterBank,
                 demand_engine: str = "scalar"):
        self.tasks: tuple[Task, ...] = tuple(tasks)
        self.names: tuple[str, ...] = tuple(t.name for t in tasks)
        self.cgroups = tuple(t.cgroup for t in tasks)
        self.cgroup_names: tuple[str, ...] = tuple(
            cg.name for cg in self.cgroups)
        self.workloads = tuple(t.workload for t in tasks)
        self.demand_fns = tuple(w.cpu_demand for w in self.workloads)
        self.on_tick_fns = tuple(w.on_tick for w in self.workloads)
        self.base_cpi_fns = tuple(w.base_cpi for w in self.workloads)
        self.profile_fns = tuple(w.resource_profile for w in self.workloads)
        self.cpu_limits = tuple(cg.cpu_limit for cg in self.cgroups)
        self.tier_indices: tuple[tuple[int, ...], ...] = tuple(
            tuple(i for i, t in enumerate(tasks)
                  if t.scheduling_class is tier)
            for tier in _TIER_ORDER
        )
        self.workspace = BatchWorkspace(len(tasks)) if tasks else None
        self.counter_matrix = (counters.matrix_view(self.cgroup_names)
                               if tasks else None)
        # The compiled demand/cgroup program, or None when the engine is
        # scalar or any workload/cgroup is beyond the compiler (the machine
        # then keeps the closure path, mirroring fused_eligible).
        self.demand_columns = (
            DemandColumns.compile(self.workloads, self.cgroups,
                                  self.cpu_limits)
            if (demand_engine == "vector" and tasks) else None)
        # The shared usage-ring matrix the vectorized sampler slices window
        # usage out of; built lazily (usage_rings) so tick-only machines
        # never pay the 900-slot-per-task allocation.
        self.usage_matrix: Optional[np.ndarray] = None
        self.usage_rows_ok: Optional[np.ndarray] = None
        self.refresh_profiles([fn() for fn in self.profile_fns])

    def usage_rings(self) -> tuple[np.ndarray, np.ndarray]:
        """The per-task usage rings as rows of one shared matrix.

        Row ``i`` becomes the backing storage of ``cgroups[i]``'s columnar
        usage ring (:meth:`~repro.cluster.cgroup.Cgroup.rebind_ring`);
        ``rows_ok[i]`` is False for cgroups whose ring had permanently
        stood down at rebind time — those rows stay zero and must be read
        through :meth:`~repro.cluster.cgroup.Cgroup.usage_between` instead.
        A row can also go stale *after* a successful rebind (a charge gap
        stands the ring down), so readers must still check the cgroup's
        live ``_ring_ok``/``_ring_last`` before trusting it.
        """
        from repro.cluster.cgroup import USAGE_HISTORY_SECONDS

        matrix = self.usage_matrix
        if matrix is None:
            matrix = np.zeros((len(self.tasks), USAGE_HISTORY_SECONDS))
            rows_ok = np.empty(len(self.tasks), dtype=bool)
            for i, cg in enumerate(self.cgroups):
                rows_ok[i] = cg.rebind_ring(matrix[i])
            self.usage_matrix = matrix
            self.usage_rows_ok = rows_ok
        return matrix, self.usage_rows_ok

    def refresh_profiles(self, profiles: Sequence[ResourceProfile]) -> None:
        """(Re)columnize resource profiles (rare: profiles are static in
        every shipped workload; the identity guard in the tick keeps dynamic
        ones correct anyway)."""
        self.profiles: tuple[ResourceProfile, ...] = tuple(profiles)
        self.profile_table = ProfileTable.from_profiles(self.profiles)


class Machine:
    """One machine in the cluster."""

    def __init__(
        self,
        name: str,
        platform: Platform,
        interference: InterferenceModel | None = None,
        rng: np.random.Generator | None = None,
        cpi_noise_sigma: float = 0.03,
        tick_engine: str | None = None,
        demand_engine: str | None = None,
    ):
        """Args:
            name: cluster-unique machine name.
            platform: hardware type; fixes clock speed, cores, cache, membw.
            interference: contention model (a default one if omitted).
            rng: random generator for measurement noise (seeded default).
            cpi_noise_sigma: sigma of the multiplicative log-normal noise on
                per-tick CPI, modelling run-to-run microarchitectural jitter.
            tick_engine: ``"vector"`` (batched hot path, the default) or
                ``"legacy"`` (the scalar reference loop).  ``None`` defers
                to the ``REPRO_TICK_ENGINE`` environment variable.
            demand_engine: ``"vector"`` (compiled columnar demand plane, the
                default) or ``"scalar"`` (the per-task closure reference).
                ``None`` defers to the ``REPRO_DEMAND_ENGINE`` environment
                variable.
        """
        if cpi_noise_sigma < 0:
            raise ValueError(f"cpi_noise_sigma must be >= 0, got {cpi_noise_sigma}")
        engine = tick_engine if tick_engine is not None else default_tick_engine()
        if engine not in TICK_ENGINES:
            raise ValueError(
                f"tick_engine must be one of {TICK_ENGINES}, got {engine!r}")
        self.name = name
        self.platform = platform
        self.interference = interference or InterferenceModel()
        self.rng = rng or np.random.default_rng(0)
        self.cpi_noise_sigma = cpi_noise_sigma
        self.tick_engine = engine
        self.demand_engine = resolve_demand_engine(demand_engine)
        self.counters = CounterBank()
        self._tasks: dict[str, Task] = {}
        self._table: Optional[_TaskTable] = None
        self.total_cpu_seconds = 0.0
        self._duty_cycle: Optional[DutyCycleState] = None

    # -- placement ------------------------------------------------------------

    def place(self, task: Task) -> None:
        """Install a task on this machine.

        The machine itself accepts any placement — admission control is the
        scheduler's job (and overcommitting batch is deliberate policy).
        """
        if task.name in self._tasks:
            raise ValueError(f"task {task.name} already on machine {self.name}")
        task.mark_running(self.name)
        self._tasks[task.name] = task
        self._invalidate_table()

    def remove(self, task_name: str, state: TaskState,
               reason: Optional[str] = None) -> Task:
        """Remove a task, marking it with its departure state."""
        try:
            task = self._tasks.pop(task_name)
        except KeyError:
            raise KeyError(f"no task {task_name!r} on machine {self.name}") from None
        task.mark_stopped(state, reason)
        self.counters.drop(task.cgroup.name)
        self._invalidate_table()
        return task

    def get_task(self, task_name: str) -> Task:
        """Look up a resident task by name."""
        try:
            return self._tasks[task_name]
        except KeyError:
            raise KeyError(f"no task {task_name!r} on machine {self.name}") from None

    def has_task(self, task_name: str) -> bool:
        """Whether ``task_name`` is resident here."""
        return task_name in self._tasks

    def resident_tasks(self) -> list[Task]:
        """All resident tasks (stable order by name)."""
        return [self._tasks[k] for k in sorted(self._tasks)]

    def resident_cgroup_names(self) -> list[str]:
        """Cgroup names of all resident tasks."""
        return [t.cgroup.name for t in self.resident_tasks()]

    def _invalidate_table(self) -> None:
        """Discard the cached task table after a placement change.

        Any charges its demand program buffered are flushed first — the
        outgoing table's ledger is about to become unreachable, and a new
        table's program will re-point the surviving cgroups at itself.
        """
        table = self._table
        if table is not None and table.demand_columns is not None:
            table.demand_columns.flush_charges()
        self._table = None

    def _task_table(self) -> _TaskTable:
        """The cached task-index table, rebuilt after placement changes."""
        table = self._table
        if table is None:
            table = _TaskTable(self.resident_tasks(), self.counters,
                               self.demand_engine)
            self._table = table
        return table

    @property
    def num_tasks(self) -> int:
        """Count of resident tasks (Figure 1a's x-axis)."""
        return len(self._tasks)

    def thread_count(self, t: int) -> int:
        """Total threads across resident tasks at time ``t`` (Figure 1b)."""
        return sum(task.workload.thread_count(t) for task in self._tasks.values())

    # -- capacity views (used by the scheduler) --------------------------------

    @property
    def cpu_capacity(self) -> float:
        """Cores available for task execution."""
        return float(self.platform.num_cores)

    def reserved_cpu(self, scheduling_class: SchedulingClass | None = None) -> float:
        """Sum of resident cgroup limits, optionally for one class only."""
        return sum(
            task.cgroup.cpu_limit for task in self._tasks.values()
            if scheduling_class is None or task.scheduling_class is scheduling_class
        )

    # -- duty-cycle modulation (the Section 8 alternative) ----------------------

    def apply_duty_cycle(self, target_task: str, level: float,
                         core_share: float, now: int,
                         duration: int) -> DutyCycleState:
        """Gate the target's cores to ``level`` duty for ``duration`` seconds.

        Collateral is inherent: every other resident task loses
        ``core_share * (1 - level)`` of its grant while the modulation is in
        force (its threads land on gated cores that often).
        """
        if not 0.0 <= level <= 1.0:
            raise ValueError(f"level must be in [0, 1], got {level}")
        if not 0.0 < core_share <= 1.0:
            raise ValueError(f"core_share must be in (0, 1], got {core_share}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if not self.has_task(target_task):
            raise KeyError(f"no task {target_task!r} on machine {self.name}")
        state = DutyCycleState(target_task=target_task, level=level,
                               core_share=core_share,
                               expires_at=now + duration)
        self._duty_cycle = state
        return state

    def clear_duty_cycle(self) -> None:
        """Remove any active duty-cycle modulation."""
        self._duty_cycle = None

    def duty_cycle_at(self, t: int) -> Optional[DutyCycleState]:
        """The modulation in force at ``t``, dropped lazily once expired."""
        if self._duty_cycle is not None and not self._duty_cycle.active_at(t):
            self._duty_cycle = None
        return self._duty_cycle

    def _apply_duty_cycle_to_grants(self, t: int,
                                    grants: dict[str, float]) -> None:
        state = self.duty_cycle_at(t)
        if state is None:
            return
        collateral = state.core_share * (1.0 - state.level)
        for name in grants:
            if name == state.target_task:
                grants[name] *= state.level
            else:
                grants[name] *= max(0.0, 1.0 - collateral)

    # -- the tick --------------------------------------------------------------

    def tick(self, t: int) -> TickResult:
        """Execute one simulated second; returns grants, CPIs and departures."""
        if self.tick_engine == "vector":
            return self._tick_vector(t)
        return self._tick_legacy(t)

    def _tick_inputs(self, t: int, table: _TaskTable
                     ) -> tuple[list[float], list[bool], list[float]]:
        """Tick phases 1-3: demand, cgroup clipping, tier allocation, duty
        cycling, plus the per-task base-CPI reads.

        Shared verbatim by the per-machine vector path and the cluster-fused
        path (:mod:`repro.cluster.fused`) so the demand/base-CPI closure call
        order — the RNG-ordering contract — cannot drift between them.  When
        the table carries a compiled demand program (``demand_engine
        "vector"`` and every workload/cgroup expressible), demand, clipping
        and base-CPI reads run columnar; the closure loop below is the
        scalar reference and the fallback.

        Returns:
            ``(grants, capped, base_cpi)`` as plain Python lists in table
            order.  ``capped`` remembers the hard-cap state for phase 6 (it
            cannot change within the tick, so the legacy path's second
            ``is_capped`` lookup is redundant).
        """
        dc = table.demand_columns
        if dc is not None:
            allowed_arr, capped = dc.allowed_and_capped(t)
            grants = self._tick_alloc(t, table, allowed_arr.tolist(), capped)
            # base_cpi closures are pure within a tick (modulation reads
            # ``_now``, which only on_tick advances), so reading them here
            # rather than after allocation is unobservable.
            base_cpi = dc.base_cpi()
            if dc.check_base_cpi and not min(base_cpi) > 0:
                bad = min(base_cpi)
                raise ValueError(f"base_cpi must be positive, got {bad}")
            return grants, capped, base_cpi
        else:
            cgroups = table.cgroups
            cpu_limits = table.cpu_limits
            n = len(cgroups)

            # 1-2. demand, clipped by cgroup limit and any hard-cap.
            allowed = [0.0] * n
            capped = [False] * n
            for i, fn in enumerate(table.demand_fns):
                d = fn(t)
                if not d > 0.0:     # matches max(0.0, d), including d = NaN
                    d = 0.0
                limit = cpu_limits[i]
                a = d if d < limit else limit
                cap = cgroups[i].cap_at(t)
                if cap is not None:
                    capped[i] = True
                    if cap.quota < a:
                        a = cap.quota
                allowed[i] = a

            grants = self._tick_alloc(t, table, allowed, capped)
            base_cpi = [fn() for fn in table.base_cpi_fns]

        if not min(base_cpi) > 0:
            bad = min(base_cpi)
            raise ValueError(f"base_cpi must be positive, got {bad}")
        return grants, capped, base_cpi

    def _tick_alloc(self, t: int, table: _TaskTable, allowed: list[float],
                    capped: list[bool]) -> list[float]:
        """Tick phase 3: tier allocation (pro-rata within a saturated tier)
        and duty cycling — plain Python on purpose.

        Tier membership is a handful of index tuples and the sums must stay
        sequential left-to-right for bit-parity with the legacy loop, so
        numpy would buy nothing here; both demand engines and the fused
        fleet share this exact loop.
        """
        n = len(allowed)
        grants = [0.0] * n
        remaining = self.cpu_capacity
        for indices in table.tier_indices:
            if not indices:
                continue
            want = 0.0
            for i in indices:
                want += allowed[i]
            if want <= 0.0:
                continue
            if want <= remaining:
                for i in indices:
                    grants[i] = allowed[i]
                remaining -= want
            else:
                scale = remaining / want
                for i in indices:
                    grants[i] = allowed[i] * scale
                remaining = 0.0
            if remaining <= 0.0:
                break

        duty = self.duty_cycle_at(t)
        if duty is not None:
            factor = max(0.0, 1.0 - duty.core_share * (1.0 - duty.level))
            for i, name in enumerate(table.names):
                grants[i] *= duty.level if name == duty.target_task else factor
        return grants

    def _tick_finish(self, t: int, table: _TaskTable, result: TickResult,
                     grants: list[float], capped: list[bool]) -> None:
        """Tick phases 5b-6: cgroup charging, context-switch accounting,
        and workload tick observations (which may trigger departures).

        Shared by the per-machine vector path and the cluster-fused path;
        mutates ``result.departures`` in place.
        """
        dc = table.demand_columns
        total = self.total_cpu_seconds
        runnable = 0
        if dc is not None:
            # Charges go to the table's ledger (flushed by any usage read,
            # placement change, or every _CHARGE_CHUNK ticks).
            dc.charge_tick(t, grants)
            if dc.batch_on_tick:
                # Every workload uses SyntheticWorkload.on_tick verbatim:
                # plain accounting, never a departure — fold it into the
                # totals loop without the per-task method dispatch.  Only
                # workloads whose base_cpi may read ``_now`` need it
                # advanced (the rest never look at it).
                for w, grant in zip(table.workloads, grants):
                    total += grant
                    if grant > 0.0:
                        runnable += 1
                    w.granted_cpu_seconds += grant
                for w in dc.now_workloads:
                    w._now = t
                if True in capped:
                    for i, w in enumerate(table.workloads):
                        if capped[i]:
                            w.capped_seconds += 1
                self.total_cpu_seconds = total
                oversubscribed = max(0, runnable - self.platform.num_cores)
                self.counters.record_context_switches(
                    runnable * _SWITCHES_PER_TASK_SECOND
                    + oversubscribed * 100)
                return
            for grant in grants:
                total += grant
                if grant > 0.0:
                    runnable += 1
        else:
            cgroups = table.cgroups
            for i, grant in enumerate(grants):
                cgroups[i].charge(t, grant)
                total += grant
                if grant > 0.0:
                    runnable += 1
        self.total_cpu_seconds = total
        oversubscribed = max(0, runnable - self.platform.num_cores)
        self.counters.record_context_switches(
            runnable * _SWITCHES_PER_TASK_SECOND + oversubscribed * 100)

        tasks = table.tasks
        for i, fn in enumerate(table.on_tick_fns):
            outcome = fn(t, grants[i], capped[i])
            if outcome is None:
                continue
            task = tasks[i]
            if outcome == "completed":
                state = TaskState.COMPLETED
            elif outcome == "exited":
                state = TaskState.EXITED
            else:
                raise ValueError(
                    f"workload for {task.name} returned unknown outcome {outcome!r}")
            self.remove(task.name, state, reason=f"workload said {outcome}")
            result.departures.append((task, state))

    def _tick_vector(self, t: int) -> TickResult:
        """The batched hot path.

        Bit-identical to :meth:`_tick_legacy` by construction: same task
        order, same operation order inside every formula, sequential
        reductions, one bulk noise draw consuming the RNG stream in the
        same order the scalar loop does.
        """
        result = TickResult(t=t, departures=[])
        if not self._tasks:
            return result
        table = self._task_table()
        names = table.names

        # Resource profiles are static in every shipped workload; the
        # identity check keeps a hypothetical dynamic profile correct while
        # costing only one method call + one `is` per task.
        profiles = table.profiles
        for i, fn in enumerate(table.profile_fns):
            if fn() is not profiles[i]:
                table.refresh_profiles([p() for p in table.profile_fns])
                break

        grants, capped, base_cpi = self._tick_inputs(t, table)
        result.grants = dict(zip(names, grants))

        # 4. contention, inflation, CPI and miss rates — one fused batch.
        ws = table.workspace
        result.contention = self.interference.tick_batch(
            self.platform, names, base_cpi, grants, table.profile_table, ws)
        cpi = ws.cpi
        sigma = self.cpi_noise_sigma
        if sigma > 0.0:
            # One draw per task, consumed in table (name-sorted) order: the
            # documented RNG contract.  sigma * standard_normal(n) is the
            # same value stream as n scalar rng.normal(0, sigma) calls, and
            # np.exp on the array equals np.exp per scalar.
            noise = ws.noise
            self.rng.standard_normal(out=noise)
            np.multiply(noise, sigma, noise)
            np.exp(noise, noise)
            np.multiply(cpi, noise, cpi)
        result.cpis = dict(zip(names, cpi.tolist()))

        # 5. burn counters, batched (EVENT_ORDER column layout).
        events = ws.events
        cycles, instructions, l2, l3, mem = ws.event_columns
        np.multiply(ws.grants, self.platform.cycles_per_cpu_second,
                    cycles)                        # CPU_CLK_UNHALTED_REF
        np.divide(cycles, cpi, instructions)       # INSTRUCTIONS_RETIRED
        np.divide(instructions, 1000.0, ws.kilo)
        np.multiply(ws.kilo, ws.l2_mpki, l2)       # L2_MISSES
        np.multiply(ws.kilo, ws.l3_mpki, l3)       # L3_MISSES
        np.multiply(l3, 1.1, mem)                  # MEMORY_REQUESTS
        self.counters.burn_matrix(table.counter_matrix, events)

        self._tick_finish(t, table, result, grants, capped)
        return result

    def _tick_legacy(self, t: int) -> TickResult:
        """The original scalar tick loop, kept as the golden parity reference."""
        tasks = self.resident_tasks()
        result = TickResult(t=t, departures=[])
        if not tasks:
            return result

        demands = {task.name: max(0.0, task.workload.cpu_demand(t)) for task in tasks}
        allowed = {
            task.name: task.cgroup.allowed_usage(demands[task.name], t)
            for task in tasks
        }
        grants = self._allocate(tasks, allowed)
        self._apply_duty_cycle_to_grants(t, grants)
        result.grants = grants

        contention = self.interference.contention(
            self.platform,
            [(task.name, grants[task.name], task.workload.resource_profile())
             for task in tasks],
        )
        result.contention = contention

        for task in tasks:
            grant = grants[task.name]
            profile = task.workload.resource_profile()
            cpi = self.interference.effective_cpi(
                task.name, task.workload.base_cpi(), profile, contention,
                self.platform, grant)
            if self.cpi_noise_sigma > 0.0:
                cpi *= float(np.exp(self.rng.normal(0.0, self.cpi_noise_sigma)))
            result.cpis[task.name] = cpi

            cycles = grant * self.platform.cycles_per_cpu_second
            instructions = cycles / cpi if cpi > 0 else 0.0
            l3_mpki = self.interference.l3_mpki(task.name, profile, contention)
            l2_mpki = self.interference.l2_mpki(task.name, profile, contention)
            l3_misses = instructions / 1000.0 * l3_mpki
            counters = self.counters.counters_for(task.cgroup.name)
            counters.add(CounterEvent.CPU_CLK_UNHALTED_REF, cycles)
            counters.add(CounterEvent.INSTRUCTIONS_RETIRED, instructions)
            counters.add(CounterEvent.L3_MISSES, l3_misses)
            counters.add(CounterEvent.L2_MISSES, instructions / 1000.0 * l2_mpki)
            counters.add(CounterEvent.MEMORY_REQUESTS, l3_misses * 1.1)

            task.cgroup.charge(t, grant)
            self.total_cpu_seconds += grant

        runnable = sum(1 for g in grants.values() if g > 0.0)
        oversubscribed = max(0, runnable - self.platform.num_cores)
        self.counters.record_context_switches(
            runnable * _SWITCHES_PER_TASK_SECOND + oversubscribed * 100)

        # Workload observations may trigger departures (lame-duck exits etc.).
        for task in tasks:
            outcome = task.workload.on_tick(
                t, grants[task.name], task.cgroup.is_capped(t))
            if outcome is None:
                continue
            if outcome == "completed":
                state = TaskState.COMPLETED
            elif outcome == "exited":
                state = TaskState.EXITED
            else:
                raise ValueError(
                    f"workload for {task.name} returned unknown outcome {outcome!r}")
            self.remove(task.name, state, reason=f"workload said {outcome}")
            result.departures.append((task, state))
        return result

    def _allocate(self, tasks: list[Task], allowed: dict[str, float]
                  ) -> dict[str, float]:
        """Split core capacity across tiers; pro-rata within a saturated tier."""
        grants = {name: 0.0 for name in allowed}
        remaining = self.cpu_capacity
        for tier in _TIER_ORDER:
            tier_tasks = [task for task in tasks if task.scheduling_class is tier]
            want = sum(allowed[task.name] for task in tier_tasks)
            if want <= 0.0:
                continue
            if want <= remaining:
                for task in tier_tasks:
                    grants[task.name] = allowed[task.name]
                remaining -= want
            else:
                scale = remaining / want
                for task in tier_tasks:
                    grants[task.name] = allowed[task.name] * scale
                remaining = 0.0
            if remaining <= 0.0:
                break
        return grants

    def __repr__(self) -> str:
        return (f"Machine({self.name}, {self.platform.name}, "
                f"tasks={self.num_tasks})")
