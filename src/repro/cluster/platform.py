"""CPU platform (hardware type) catalog.

The paper stresses that CPI is a function of the hardware platform: "Many of
our clusters contain multiple different hardware platforms (CPU types) which
will typically have different CPIs for the same workload, so CPI2 does
separate CPI calculations for each platform a job runs on."  (Section 3.1.)

A :class:`Platform` carries everything the simulator needs to turn abstract
work into counter values: clock speed, core count, shared-cache size and
memory bandwidth (the two contended resources the interference model uses),
and a platform CPI multiplier that makes the same workload measurably
different across CPU types, which Figure 4 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Platform", "PLATFORM_CATALOG", "get_platform"]


@dataclass(frozen=True)
class Platform:
    """An immutable description of one machine hardware type.

    Attributes:
        name: the ``platforminfo`` string carried in every CPI sample record.
        clock_ghz: nominal core clock in GHz; cycles counted per CPU-second
            are ``clock_ghz * 1e9``.
        num_cores: hardware contexts available to tasks on the machine.
        llc_mib: last-level cache size in MiB; larger caches absorb more
            co-runner pressure in the interference model.
        membw_gbps: sustainable memory bandwidth in GB/s.
        cpi_scale: multiplier applied to every workload's base CPI on this
            platform, modelling microarchitectural differences between CPU
            generations.
    """

    name: str
    clock_ghz: float
    num_cores: int
    llc_mib: float
    membw_gbps: float
    cpi_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError(f"clock_ghz must be positive, got {self.clock_ghz}")
        if self.num_cores < 1:
            raise ValueError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.llc_mib <= 0:
            raise ValueError(f"llc_mib must be positive, got {self.llc_mib}")
        if self.membw_gbps <= 0:
            raise ValueError(f"membw_gbps must be positive, got {self.membw_gbps}")
        if self.cpi_scale <= 0:
            raise ValueError(f"cpi_scale must be positive, got {self.cpi_scale}")

    @property
    def cycles_per_cpu_second(self) -> float:
        """Reference cycles accumulated by one CPU-second of execution."""
        return self.clock_ghz * 1e9


#: Platforms modelled after the 2011-era fleet the paper measured
#: (multi-generation x86 servers with 16-64 hardware contexts).
PLATFORM_CATALOG: dict[str, Platform] = {
    p.name: p
    for p in (
        Platform(name="westmere-2.6", clock_ghz=2.6, num_cores=24,
                 llc_mib=12.0, membw_gbps=32.0, cpi_scale=1.0),
        Platform(name="nehalem-2.3", clock_ghz=2.3, num_cores=16,
                 llc_mib=8.0, membw_gbps=25.0, cpi_scale=1.18),
        Platform(name="sandybridge-2.9", clock_ghz=2.9, num_cores=32,
                 llc_mib=20.0, membw_gbps=42.0, cpi_scale=0.88),
    )
}


def get_platform(name: str) -> Platform:
    """Look up a platform by name.

    Raises:
        KeyError: with the list of known platforms if ``name`` is unknown.
    """
    try:
        return PLATFORM_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORM_CATALOG))
        raise KeyError(f"unknown platform {name!r}; known platforms: {known}") from None
