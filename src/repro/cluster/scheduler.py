"""Central cluster scheduler and admission controller.

Per Section 2: "Each of our clusters runs a central scheduler and admission
controller that ensures that resources are not oversubscribed among the
latency-sensitive jobs, although it speculatively over-commits resources
allocated to batch ones. ... If the scheduler guesses wrong, it may need to
preempt a batch task and move it to another machine."

The scheduler here implements exactly that contract:

* latency-sensitive reservations are never oversubscribed on a machine;
* batch and best-effort reservations may overcommit a machine up to a
  configurable factor (statistical multiplexing);
* a latency-sensitive placement that fits nowhere may preempt batch tasks;
* anti-affinity constraints ("do not co-locate job A with its known
  antagonist job B") are honoured — the hook CPI2's forensics store feeds
  (Sections 5 and 9).

Placement scoring is worst-fit (most free reservation first), which spreads
load and matches the paper's observation that machines run many tasks each.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.cluster.job import Job
from repro.cluster.machine import Machine
from repro.cluster.task import SchedulingClass, Task, TaskState

__all__ = ["PlacementError", "ClusterScheduler"]


class PlacementError(RuntimeError):
    """Raised when a task cannot be placed anywhere, even with preemption."""


class ClusterScheduler:
    """Places job tasks onto machines; the cluster's admission controller."""

    def __init__(
        self,
        machines: Iterable[Machine],
        batch_overcommit: float = 1.5,
        best_effort_overcommit: float = 2.5,
        rng: np.random.Generator | None = None,
    ):
        """Args:
            machines: the machines under management.
            batch_overcommit: total reservations (all classes) on a machine
                may reach this multiple of capacity when placing batch work.
            best_effort_overcommit: ditto for best-effort work (higher: these
                are the first to be squeezed, so speculation is cheaper).
            rng: tie-breaking randomness source (seeded default).
        """
        self.machines: dict[str, Machine] = {}
        for machine in machines:
            if machine.name in self.machines:
                raise ValueError(f"duplicate machine name {machine.name!r}")
            self.machines[machine.name] = machine
        if not self.machines:
            raise ValueError("scheduler needs at least one machine")
        if batch_overcommit < 1.0:
            raise ValueError(f"batch_overcommit must be >= 1, got {batch_overcommit}")
        if best_effort_overcommit < batch_overcommit:
            raise ValueError("best_effort_overcommit must be >= batch_overcommit")
        self.batch_overcommit = batch_overcommit
        self.best_effort_overcommit = best_effort_overcommit
        self.rng = rng or np.random.default_rng(0)
        self.jobs: dict[str, Job] = {}
        #: Pairs of job names that must not share a machine.
        self._anti_affinity: set[frozenset[str]] = set()
        self.preemption_count = 0

    # -- anti-affinity (fed by CPI2 forensics) ---------------------------------

    def avoid_colocation(self, job_a: str, job_b: str) -> None:
        """Never place tasks of ``job_a`` and ``job_b`` on the same machine."""
        if job_a == job_b:
            raise ValueError("cannot anti-affinitise a job with itself")
        self._anti_affinity.add(frozenset((job_a, job_b)))

    def colocation_allowed(self, machine: Machine, jobname: str) -> bool:
        """Whether ``jobname`` may land on ``machine`` given anti-affinity rules."""
        resident_jobs = {task.job.name for task in machine.resident_tasks()}
        return not any(
            frozenset((jobname, other)) in self._anti_affinity
            for other in resident_jobs
        )

    # -- admission -------------------------------------------------------------

    def _overcommit_limit(self, scheduling_class: SchedulingClass) -> float:
        if scheduling_class is SchedulingClass.LATENCY_SENSITIVE:
            return 1.0
        if scheduling_class is SchedulingClass.BATCH:
            return self.batch_overcommit
        return self.best_effort_overcommit

    def _fits(self, machine: Machine, task: Task) -> bool:
        """Admission test for one task on one machine."""
        if machine.has_task(task.name):
            return False
        if not self.colocation_allowed(machine, task.job.name):
            return False
        need = task.cgroup.cpu_limit
        if task.scheduling_class is SchedulingClass.LATENCY_SENSITIVE:
            # LS reservations are never oversubscribed among themselves, and
            # an LS arrival may not push total reservations past the machine's
            # overcommit ceiling without preempting batch work first.
            ls_reserved = machine.reserved_cpu(SchedulingClass.LATENCY_SENSITIVE)
            if ls_reserved + need > machine.cpu_capacity:
                return False
            return (machine.reserved_cpu() + need
                    <= machine.cpu_capacity * self.batch_overcommit)
        limit = self._overcommit_limit(task.scheduling_class)
        return machine.reserved_cpu() + need <= machine.cpu_capacity * limit

    def _score(self, machine: Machine) -> float:
        """Worst-fit score: prefer machines with the most free reservation."""
        return machine.cpu_capacity - machine.reserved_cpu()

    def _candidates(self, task: Task,
                    exclude: Optional[set[str]] = None) -> list[Machine]:
        machines = [
            m for m in self.machines.values()
            if (exclude is None or m.name not in exclude) and self._fits(m, task)
        ]
        machines.sort(key=self._score, reverse=True)
        return machines

    # -- placement ---------------------------------------------------------------

    def place_task(self, task: Task,
                   exclude_machines: Optional[set[str]] = None) -> Machine:
        """Place one task, preempting batch work for latency-sensitive tasks.

        Returns the machine chosen.

        Raises:
            PlacementError: if no machine can take the task.
        """
        candidates = self._candidates(task, exclude_machines)
        if candidates:
            # Randomise among the near-best to avoid herding every placement
            # onto one machine when scores tie.
            best_score = self._score(candidates[0])
            near_best = [m for m in candidates
                         if self._score(m) >= best_score - 1e-9]
            machine = near_best[int(self.rng.integers(len(near_best)))]
            machine.place(task)
            return machine
        if task.scheduling_class is SchedulingClass.LATENCY_SENSITIVE:
            machine = self._preempt_for(task, exclude_machines)
            if machine is not None:
                machine.place(task)
                return machine
        raise PlacementError(
            f"no machine can host {task.name} "
            f"({task.scheduling_class.value}, limit={task.cgroup.cpu_limit})")

    def _preempt_for(self, task: Task,
                     exclude: Optional[set[str]] = None) -> Optional[Machine]:
        """Evict batch work from some machine to make room for an LS task.

        Chooses the machine where the fewest batch reservations must move.
        Preempted tasks go back to pending; callers re-place them via
        :meth:`reschedule_pending`.
        """
        need = task.cgroup.cpu_limit
        best_machine: Optional[Machine] = None
        best_victims: list[Task] = []
        for machine in self.machines.values():
            if exclude is not None and machine.name in exclude:
                continue
            if not self.colocation_allowed(machine, task.job.name):
                continue
            ls_reserved = machine.reserved_cpu(SchedulingClass.LATENCY_SENSITIVE)
            if ls_reserved + need > machine.cpu_capacity:
                continue  # preemption cannot create LS headroom
            batch_tasks = sorted(
                (t for t in machine.resident_tasks() if t.scheduling_class.is_batch),
                key=lambda t: (t.scheduling_class is SchedulingClass.BATCH,
                               t.cgroup.cpu_limit),
            )  # best-effort first, then small batch
            overshoot = (machine.reserved_cpu() + need
                         - machine.cpu_capacity * self.batch_overcommit)
            victims: list[Task] = []
            freed = 0.0
            for victim in batch_tasks:
                if freed >= overshoot:
                    break
                victims.append(victim)
                freed += victim.cgroup.cpu_limit
            if freed < overshoot:
                continue
            if best_machine is None or len(victims) < len(best_victims):
                best_machine, best_victims = machine, victims
        if best_machine is None:
            return None
        for victim in best_victims:
            best_machine.remove(victim.name, TaskState.PREEMPTED,
                                reason=f"preempted for {task.name}")
            self.preemption_count += 1
        return best_machine

    def submit(self, job: Job) -> None:
        """Register a job and place its tasks.

        Latency-sensitive tasks must all fit (they are provisioned for peak),
        so an unplaceable LS task raises :class:`PlacementError`.  Batch and
        best-effort tasks that fit nowhere right now simply stay pending —
        overcommitted clusters make batch work wait; that is the point.
        """
        if job.name in self.jobs:
            raise ValueError(f"job {job.name!r} already submitted")
        self.jobs[job.name] = job
        for task in job.pending_tasks():
            try:
                self.place_task(task)
            except PlacementError:
                if task.scheduling_class is SchedulingClass.LATENCY_SENSITIVE:
                    raise

    def reschedule_pending(self) -> int:
        """Re-place every preempted/pending task of every known job.

        Returns the number of tasks placed.  Tasks that still fit nowhere stay
        pending (batch work waits; that is the point of overcommit).
        """
        placed = 0
        for job in self.jobs.values():
            for task in job.pending_tasks():
                try:
                    self.place_task(task)
                    placed += 1
                except PlacementError:
                    continue
        return placed

    def migrate_task(self, task: Task) -> Machine:
        """Kill-and-restart a task on a different machine.

        This is the paper's "version of task migration": the task loses its
        state (it would recompute from a checkpoint) and restarts elsewhere.

        Raises:
            PlacementError: if no other machine can take it; in that case the
                task is left where it was.
        """
        if task.machine_name is None:
            raise ValueError(f"task {task.name} is not placed")
        origin = self.machines[task.machine_name]
        origin.remove(task.name, TaskState.KILLED, reason="migrated")
        try:
            return self.place_task(task, exclude_machines={origin.name})
        except PlacementError:
            # Nowhere else can take it (even with preemption); put it back
            # where it was rather than stranding it.
            origin.place(task)
            raise

    # -- fleet views -------------------------------------------------------------

    def utilization(self) -> dict[str, float]:
        """Reserved-over-capacity fraction per machine."""
        return {
            name: machine.reserved_cpu() / machine.cpu_capacity
            for name, machine in self.machines.items()
        }

    def tasks_per_machine(self) -> list[int]:
        """Resident task counts across the fleet (Figure 1a's sample)."""
        return [m.num_tasks for m in self.machines.values()]
