"""Sharded multi-core fleet execution: the coordinator side.

The paper's scalability argument — "anomalies are detected locally, which
enables rapid responses and increases scalability" — makes the fleet
embarrassingly parallel per machine: all cross-machine coupling flows
through the central aggregation service.  :func:`run_sharded` exploits
exactly that structure: machines are partitioned across N persistent
worker processes (:mod:`repro.cluster.shardworker`), each rebuilding the
full deterministic scenario and executing only its shard, while this
coordinator keeps the control plane — the canonical
:class:`~repro.core.aggregator.CpiAggregator`, the spec-refresh decision,
the sample log, incident forensics, and merged telemetry.

**The worker pool.**  Workers live in a :class:`ShardPool` that survives
across runs (trials, experiments, bench iterations): process spawn is
paid once per pool lifetime, and workers prebuild the next scenario
replica during idle time once they have seen the same scenario twice —
so warm reruns start with ``coordinator_spawn`` near zero.  A module-wide
:func:`default_pool` serves every ``run_sharded`` call that does not
bring its own; any failure mid-run resets the pool (workers terminated,
segments unlinked), so no run ever observes another run's leftovers.

**The two wires.**  Control traffic — barrier metadata, spec verdicts,
scrape snapshots, run/finished/release handshakes — rides a pipe per
worker, where latency matters and payloads are small.  Sample data rides
a :class:`~repro.cluster.shm.ShmRing` per worker: the worker encodes each
columnar :class:`~repro.core.samplebatch.SampleColumns` batch directly
into the shared segment and the coordinator decodes numpy *views* over
the same bytes — no pickling, no copies — releasing each barrier's
records back to the writer in one commit after replay.  If a barrier's
payload overflows the ring, the coordinator materialises the views it
holds and commits early (backpressure relief), so arbitrarily large
windows degrade to copying instead of deadlocking.

**Barriers.**  Workers free-run through machine physics and fault-plane
pumping, and synchronize only at sampler window-close ticks (the schedule
is fleet-global because every machine shares the duty cycle).  At a
barrier each worker ships window/arrival *metadata* on the pipe, the
payloads on the ring, then blocks for the coordinator's spec-refresh
verdict.  The periodic reschedule point needs no barrier: sharded runs
refuse scenarios with pending or migratable work, making the rescheduler
a no-op by construction
(:func:`~repro.cluster.shardworker.check_shardable`).

**Determinism.**  Each machine owns a private generator spawned from the
root seed *before* shard restriction, and per-machine fault components are
seeded in sorted-name order independent of sharding — so no RNG stream
ever depends on shard placement.  The coordinator replays cross-shard
effects in the exact single-process order: windows in sorted-machine
order, fabric arrivals in (tick, machine) order, the refresh decision
interleaved between window ingests just as ``CpiPipeline._on_samples``
does.  ``tests/test_shards.py`` pins byte-identical output for 1/2/4
shards, clean and faulted.

**Merged telemetry.**  Worker registries fold into the coordinator's at
the end of the run — counters, histogram buckets, and gauge contributions
all sum exactly (every instrument has one writing process), worker
:class:`~repro.perf.profiling.StageTimers` fold into the coordinator's,
and incidents/forensics rows are renumbered into global chronological
order.  When the telemetry plane is on (``pipeline.obs.timeseries``),
workers additionally ship a registry snapshot at every barrier; the
coordinator merges those into its TSDB scrape and evaluates the alert
rules, making the scraped series, alert history, and fleet console
byte-identical at any ``--jobs`` count.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Optional

from repro.cluster.shardworker import (ShardSpec, ShardedRunUnsupported,
                                       barrier_ticks, check_shardable,
                                       run_pool_worker)
from repro.cluster.shm import ShmRing, ShmRingStalled
from repro.core.samplebatch import SampleColumns
from repro.obs.metrics import merge_state
from repro.perf.profiling import StageTimers
from repro.records import CpiSample

__all__ = ["ShardCrashed", "ShardedRunUnsupported", "ShardedRunResult",
           "ShardPool", "default_pool", "plan_shards", "run_sharded"]


class ShardCrashed(RuntimeError):
    """A shard worker died (or broke protocol) mid-run.

    Carries the shard's index and machine names so the operator knows
    which slice of the fleet went dark instead of staring at a hang.
    """

    def __init__(self, index: int, machines: Iterable[str], detail: str = ""):
        self.shard_index = index
        self.machines = tuple(machines)
        message = (f"shard worker {index} "
                   f"(machines: {', '.join(self.machines)}) died mid-run")
        if detail:
            message += f": {detail}"
        super().__init__(message)


def plan_shards(names: Iterable[str], jobs: int) -> tuple[tuple[str, ...], ...]:
    """Partition machine names round-robin across ``jobs`` shards.

    Names are dealt from sorted order so the plan is deterministic, and
    round-robin keeps heterogeneous fleets (mixed platforms cycle through
    the name sequence) balanced.  ``jobs`` is clamped to the machine
    count — no shard is ever empty.
    """
    ordered = sorted(names)
    if not ordered:
        raise ValueError("cannot shard zero machines")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(ordered))
    return tuple(tuple(ordered[i::jobs]) for i in range(jobs))


@dataclass
class _PoolWorker:
    """Coordinator-side handle for one persistent shard worker process.

    ``index`` and ``machines`` describe the worker's *current run
    assignment* (set at lease time); ``slot`` is its stable position in
    the pool.
    """

    slot: int
    process: Any
    conn: Any
    ring: ShmRing
    index: int = -1
    machines: tuple[str, ...] = ()
    #: Batches decoded from the ring and not yet committed; materialised
    #: in place if backpressure relief forces an early commit.
    borrowed: list = field(default_factory=list)


class ShardPool:
    """A persistent fleet of shard worker processes plus their rings.

    Workers are generic — any worker can run any :class:`ShardSpec` — so
    the pool grows to the largest ``jobs`` it has served and reuses those
    processes for every subsequent run (not thread-safe: one run at a
    time).  :meth:`reset` is the failure path: terminate everything,
    unlink every segment, start from scratch on the next lease.
    """

    def __init__(self, mp_context=None, ring_bytes: Optional[int] = None):
        self._ctx = mp_context or mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        self._ring_bytes = ring_bytes
        self._workers: list[_PoolWorker] = []
        #: Processes ever started — bench asserts warm reruns add zero.
        self.spawned_total = 0

    def lease(self, count: int) -> list[_PoolWorker]:
        """Hand out ``count`` live workers, spawning or replacing as needed.

        A worker is replaced if its process died *or* its ring's mapping
        is gone — an external ``sweep_segments()`` (the crash backstop is
        process-global) closes pool rings out from under us, and leasing
        must hand out healthy transport, not a dangling segment.
        """
        for i, worker in enumerate(self._workers):
            if not worker.process.is_alive() or worker.ring.closed:
                self._dispose(worker, terminate=True)
                self._workers[i] = self._spawn(worker.slot)
        while len(self._workers) < count:
            self._workers.append(self._spawn(len(self._workers)))
        return self._workers[:count]

    def _spawn(self, slot: int) -> _PoolWorker:
        ring = ShmRing.create(self._ring_bytes)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=run_pool_worker,
            args=(child_conn, ring.name, ring.capacity),
            name=f"repro-shard-{slot}", daemon=True)
        process.start()
        child_conn.close()
        self.spawned_total += 1
        return _PoolWorker(slot=slot, process=process, conn=parent_conn,
                           ring=ring)

    def _dispose(self, worker: _PoolWorker, terminate: bool = False) -> None:
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if terminate and worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5)
        worker.ring.unlink()

    def reset(self) -> None:
        """Failure path: kill every worker and unlink every segment.

        Called whenever a run leaves the pool in an unknown protocol
        state (worker crash, coordinator exception, KeyboardInterrupt);
        the next :meth:`lease` starts fresh.
        """
        workers, self._workers = self._workers, []
        for worker in workers:
            self._dispose(worker, terminate=True)

    def shutdown(self) -> None:
        """Graceful exit: stop every worker, then unlink its segment."""
        workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=5)
            self._dispose(worker, terminate=True)

    @property
    def size(self) -> int:
        return len(self._workers)


_DEFAULT_POOL: Optional[ShardPool] = None


def default_pool() -> ShardPool:
    """The process-wide pool behind every plain :func:`run_sharded` call."""
    global _DEFAULT_POOL
    if _DEFAULT_POOL is None:
        _DEFAULT_POOL = ShardPool()
        # Registered after repro.cluster.shm's sweep (atexit is LIFO), so
        # the graceful stop runs first and the sweep stays a no-op.
        atexit.register(_DEFAULT_POOL.shutdown)
    return _DEFAULT_POOL


def _recv(worker: _PoolWorker, timeout: Optional[float] = None):
    """Receive one control message, surfacing worker death over hanging."""
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        try:
            if worker.conn.poll(0.05):
                message = worker.conn.recv()
                if message[0] == "error":
                    raise ShardCrashed(worker.index, worker.machines,
                                       f"worker error\n{message[2]}")
                return message
        except (EOFError, OSError):
            raise ShardCrashed(worker.index, worker.machines,
                               "connection closed")
        if not worker.process.is_alive() and not worker.conn.poll(0):
            raise ShardCrashed(worker.index, worker.machines,
                               f"exit code {worker.process.exitcode}")
        if deadline is not None and time.monotonic() > deadline:
            raise ShardCrashed(worker.index, worker.machines,
                               f"no message within {timeout}s")


def _send(worker: _PoolWorker, message) -> None:
    try:
        worker.conn.send(message)
    except (BrokenPipeError, OSError):
        raise ShardCrashed(worker.index, worker.machines,
                           "connection closed on send")


def _take_batch(worker: _PoolWorker,
                timeout: Optional[float]) -> SampleColumns:
    """Decode the next ring record as a zero-copy columnar batch.

    Backpressure relief runs first: once uncommitted bytes pass half the
    ring, every outstanding view is materialised (copied off the segment)
    and the ring committed, guaranteeing the blocked writer space for any
    record up to ``max_record_bytes``.
    """
    ring = worker.ring
    if ring.pending_bytes > ring.capacity // 2:
        for batch in worker.borrowed:
            batch.materialize()
        worker.borrowed.clear()
        ring.commit()
    try:
        view = ring.take(timeout=timeout, is_alive=worker.process.is_alive)
    except ShmRingStalled as exc:
        raise ShardCrashed(worker.index, worker.machines, str(exc))
    batch = SampleColumns.decode(view)
    worker.borrowed.append(batch)
    return batch


def _commit_rings(workers: list[_PoolWorker]) -> None:
    """Release every decoded view back to the writers (replay is done)."""
    for worker in workers:
        worker.borrowed.clear()
        worker.ring.commit()


@dataclass
class ShardedRunResult:
    """Everything a sharded run produced, merged back into one view.

    ``scenario`` is the coordinator's replica: its pipeline holds the
    canonical aggregator (published specs), the merged metrics registry,
    and the forensics store; its simulation never ran.
    """

    scenario: Any
    jobs: int
    seconds: int
    shards: tuple[tuple[str, ...], ...]
    total_samples: int = 0
    sample_log: list[CpiSample] = field(default_factory=list)
    incidents: list = field(default_factory=list)
    machine_seconds: int = 0
    crash_counts: dict[str, int] = field(default_factory=dict)
    fault_tallies: dict[str, int] = field(default_factory=dict)
    machine_faults: dict[str, dict[str, int]] = field(default_factory=dict)
    machine_anomalies: dict[str, int] = field(default_factory=dict)
    machine_degraded: dict[str, bool] = field(default_factory=dict)
    timers: StageTimers = field(default_factory=StageTimers)

    @property
    def pipeline(self):
        return self.scenario.pipeline

    @property
    def simulation(self):
        return self.scenario.simulation

    @property
    def obs(self):
        return self.scenario.pipeline.obs

    @property
    def total_faults_injected(self) -> int:
        return sum(self.fault_tallies.values())

    def all_incidents(self) -> list:
        """Merged incidents in global chronological order (ids renumbered)."""
        return list(self.incidents)

    def fleet_console(self):
        """The per-machine health scoreboard, from worker-shipped facts.

        Byte-identical to ``CpiPipeline.fleet_console()`` on a
        single-process run of the same scenario: every input (anomaly
        counts, caps gauges, degraded flags, crash counts, fault tallies,
        alert history, scrape count) merges deterministically.
        """
        from repro.obs.console import build_console

        pipeline = self.pipeline
        rows = {
            name: {
                "anomalies": self.machine_anomalies.get(name, 0),
                "caps_active": int(pipeline.obs.metrics.value(
                    "caps_active", machine=name) or 0),
                "degraded": self.machine_degraded.get(name, False),
                "crashes": self.crash_counts.get(name, 0),
                "faults": self.machine_faults.get(name, {}),
            }
            for name in pipeline.agents
        }
        engine = pipeline.obs.alerts
        tsdb = pipeline.obs.timeseries
        return build_console(
            rows, seconds=self.seconds,
            alerts_fired=engine.fired_counts() if engine is not None else {},
            alerts_active=engine.active() if engine is not None else [],
            scrapes=tsdb.scrapes if tsdb is not None else 0)


def run_sharded(
    builder: Callable[..., Any],
    kwargs: Optional[dict] = None,
    *,
    seconds: int,
    jobs: int,
    log_samples: bool = False,
    timers: Optional[StageTimers] = None,
    barrier_timeout: Optional[float] = 120.0,
    mp_context=None,
    pool: Optional[ShardPool] = None,
) -> ShardedRunResult:
    """Run ``builder(**kwargs)`` for ``seconds`` ticks across ``jobs`` workers.

    ``builder`` must be a module-level callable (workers import it by
    reference) returning a Scenario-like object; it is called once here
    for the coordinator replica and once per worker (amortised by the
    pool's prebuild on repeat runs).  Workers come from ``pool`` if
    given, else the process-wide :func:`default_pool` — unless
    ``mp_context`` is passed, which gets a throwaway pool on that context
    (contexts can't be mixed within a pool).  Raises
    :class:`ShardedRunUnsupported` for scenarios the sharded engine cannot
    replay and :class:`ShardCrashed` if any worker dies mid-run; either
    way the pool is reset, so the failure cannot leak into later runs.
    ``barrier_timeout`` bounds how long the coordinator waits at any
    barrier (``None`` waits forever).
    """
    kwargs = dict(kwargs or {})
    if seconds < 0:
        raise ValueError(f"seconds must be >= 0, got {seconds}")
    timers = timers if timers is not None else StageTimers()
    with timers.stage("coordinator_build"):
        scenario = builder(**kwargs)
        check_shardable(scenario)
        sim = scenario.simulation
        pipeline = scenario.pipeline
        shards = plan_shards(sim.machines, jobs)
        aggregator = pipeline.aggregator
        faulted = pipeline.faults is not None
        telemetry = pipeline.obs.timeseries is not None
        #: The coordinator's durable host is canonical: it is pumped
        #: tick-by-tick between barriers (crash schedule, snapshots,
        #: restores) with arrivals interleaved at their delivery ticks,
        #: reproducing the single-process order exactly.  Workers demoted
        #: their own hosts to schedule-tracking replicas.
        host = pipeline.host
        # Account for the clock exactly once, coordinator-side, the same
        # way ClusterSimulation.run batches it; workers exclude sim_ticks
        # from every state they ship.
        if seconds and sim._c_ticks is not None:
            sim._c_ticks.inc(seconds)
    result = ShardedRunResult(scenario=scenario, jobs=len(shards),
                              seconds=seconds, shards=shards, timers=timers)
    ephemeral: Optional[ShardPool] = None
    if pool is None:
        if mp_context is not None:
            pool = ephemeral = ShardPool(mp_context=mp_context)
        else:
            pool = default_pool()
    try:
        with timers.stage("coordinator_spawn"):
            workers = pool.lease(len(shards))
            for worker, (index, machines) in zip(workers, enumerate(shards)):
                worker.index = index
                worker.machines = machines
                worker.borrowed.clear()
                _send(worker, ("run",
                               ShardSpec(index=index, builder=builder,
                                         kwargs=kwargs, machines=machines,
                                         seconds=seconds)))
            for worker in workers:
                message = _recv(worker, barrier_timeout)
                if message[0] != "ready":
                    raise ShardCrashed(worker.index, worker.machines,
                                       f"protocol error: expected ready, "
                                       f"got {message[0]!r}")
        for t in barrier_ticks(sim.config.sampler, seconds):
            windows: list = []
            arrivals: list = []
            with timers.stage("coordinator_wait"):
                for worker in workers:
                    message = _recv(worker, barrier_timeout)
                    if message[0] != "window" or message[1] != t:
                        raise ShardCrashed(
                            worker.index, worker.machines,
                            f"protocol error: expected window@{t}, "
                            f"got {message[:2]}")
                    # Metadata on the pipe, payloads on the ring — in the
                    # order the worker wrote them: arrivals, then windows.
                    for arrived_at, machine in message[3]:
                        arrivals.append((arrived_at, machine,
                                         _take_batch(worker,
                                                     barrier_timeout)))
                    for name in message[2]:
                        windows.append((name,
                                        _take_batch(worker, barrier_timeout)))
            with timers.stage("coordinator_ingest"):
                sim.now = t  # replica events/clock track the run
                refreshed = _replay_barrier(result, aggregator, t, windows,
                                            arrivals, faulted, log_samples,
                                            host=host)
                _commit_rings(workers)
            for worker in workers:
                _send(worker, ("specs", refreshed))
            if telemetry:
                states = []
                with timers.stage("coordinator_scrape"):
                    for worker in workers:
                        message = _recv(worker, barrier_timeout)
                        if message[0] != "scrape" or message[1] != t:
                            raise ShardCrashed(
                                worker.index, worker.machines,
                                f"protocol error: expected scrape@{t}, "
                                f"got {message[:2]}")
                        states.append(message[2])
                    pipeline.scrape_shards(t, states)
        summaries = []
        with timers.stage("coordinator_wait"):
            for worker in workers:
                message = _recv(worker, barrier_timeout)
                if message[0] != "finished":
                    raise ShardCrashed(worker.index, worker.machines,
                                       f"protocol error: expected finished, "
                                       f"got {message[0]!r}")
                summary = message[2]
                summary["arrivals"] = [
                    (arrived_at, machine,
                     _take_batch(worker, barrier_timeout))
                    for arrived_at, machine in summary.pop("arrival_meta")]
                summaries.append(summary)
        with timers.stage("coordinator_merge"):
            sim.now = seconds
            _merge_summaries(result, aggregator, summaries, host=host)
            _commit_rings(workers)
        # Release last: workers loop back for the next lease (and may
        # prebuild the next replica) only once their rings are drained.
        for worker in workers:
            _send(worker, ("release",))
    except BaseException:
        # The pool's protocol state is unknowable mid-run: scrap it.
        # Terminates workers and unlinks every segment (ShardCrashed,
        # KeyboardInterrupt, and coordinator bugs all land here).
        pool.reset()
        raise
    finally:
        if ephemeral is not None:
            ephemeral.shutdown()
    return result


def _pump_host_through(host, through: int, arrivals: list) -> None:
    """Advance the durable host to ``through``, one tick at a time.

    ``arrivals`` must already be (tick, machine)-sorted.  Each tick pumps
    the host first (restore, crash draw, snapshot — the single-process
    ``_on_tick`` order), then applies that tick's fabric arrivals, so a
    crash lands between exactly the same ingests as it would have in one
    process.
    """
    index = 0
    for tick in range(host.pumped_through + 1, through + 1):
        host.pump(tick)
        while index < len(arrivals) and arrivals[index][0] <= tick:
            arrived_at, _machine, columns = arrivals[index]
            host.ingest_columns(arrived_at, columns)
            index += 1


def _replay_barrier(result: ShardedRunResult, aggregator, t: int,
                    windows: list, arrivals: list, faulted: bool,
                    log_samples: bool, host=None):
    """Apply one barrier's shipped state in single-process order.

    Fabric arrivals first (the single-process pump phase precedes the
    sampler phase), in (arrival tick, machine) order; then each closed
    window in sorted-machine order — ingest (clean mode only; faulted
    windows travel via the upload fabric), then the refresh check, exactly
    the per-machine interleave of ``CpiPipeline._on_samples``.  With a
    durable ``host``, every mutation routes through it (WAL + kill
    schedule) with the host clock caught up tick-by-tick first.  Returns
    the refreshed spec map, or ``None``.  Consumes every batch before
    returning (``.tolist()`` under the ingest paths), so the caller may
    commit the rings immediately after.
    """
    arrivals.sort(key=lambda entry: (entry[0], entry[1]))
    if host is not None:
        _pump_host_through(host, t, arrivals)
    else:
        for _arrived_at, _machine, columns in arrivals:
            aggregator.ingest_batch(columns)
    windows.sort(key=lambda entry: entry[0])
    refreshed = None
    for _machine, columns in windows:
        result.total_samples += len(columns)
        if log_samples:
            result.sample_log.extend(columns.to_samples())
        if not faulted:
            if host is not None:
                host.ingest_columns(t, columns)
            else:
                aggregator.ingest_batch(columns)
        published = (host.maybe_recompute(t) if host is not None
                     else aggregator.maybe_recompute(t))
        if published is not None:
            refreshed = published
    return refreshed


def _merge_summaries(result: ShardedRunResult, aggregator,
                     summaries: list[dict], host=None) -> None:
    """Fold worker end-of-run summaries into the coordinator view."""
    pipeline = result.pipeline
    # Fabric arrivals delivered after the last barrier.
    leftovers = [entry for summary in summaries
                 for entry in summary["arrivals"]]
    leftovers.sort(key=lambda entry: (entry[0], entry[1]))
    if host is not None:
        # Run the host's clock out to the end of the run: kills after the
        # last barrier still happen, exactly as single-process.
        _pump_host_through(host, result.seconds - 1, leftovers)
    else:
        for _arrived_at, _machine, columns in leftovers:
            aggregator.ingest_batch(columns)
    # Incidents and forensics rows, renumbered into global creation order
    # (sorted-machine order within a tick matches the single-process
    # sampler dispatch; at most one incident per machine-tick).
    incident_entries = [entry for summary in summaries
                        for entry in summary["incidents"]]
    incident_entries.sort(key=lambda entry: entry[:3])
    result.incidents = [
        replace(incident, incident_id=new_id)
        for new_id, (_t, _machine, _seq, incident)
        in enumerate(incident_entries, start=1)]
    forensic_entries = [entry for summary in summaries
                        for entry in summary["forensics"]]
    forensic_entries.sort(key=lambda entry: entry[:3])
    for new_id, (_t, _machine, _seq, row) in enumerate(forensic_entries,
                                                       start=1):
        pipeline.forensics.add_record(replace(row, incident_id=new_id))
    # Worker registries fold in whole: counters and histogram buckets sum
    # exactly; gauges sum because each one has a single writing process
    # (per-machine gauges belong to the owning worker, inc/dec gauges are
    # additive by construction).
    registry = pipeline.obs.metrics
    for summary in summaries:
        merge_state(registry, summary["metrics"])
        for name, seconds_spent, calls in summary["timers"]:
            result.timers.add(name, seconds_spent, calls)
        result.machine_seconds += summary["machine_seconds"]
        result.crash_counts.update(summary["crash_counts"])
        result.machine_anomalies.update(summary["anomalies"])
        result.machine_degraded.update(summary["degraded"])
        result.machine_faults.update(summary["machine_faults"])
        for kind, count in summary["fault_tallies"].items():
            result.fault_tallies[kind] = (
                result.fault_tallies.get(kind, 0) + count)
    # Make the replica pipeline report like the single-process one.
    pipeline.total_samples = result.total_samples
    pipeline.sample_log = result.sample_log
    pipeline.machine_seconds = result.machine_seconds
