"""The shard worker: one process executing a slice of the fleet.

Each worker rebuilds the *full* deterministic scenario from a module-level
builder plus kwargs (the "replicated build" — no machine state ever
crosses a process boundary), then restricts execution to its shard of
machines.  Per-machine RNG streams are spawned from the root seed before
the restriction (`ClusterSimulation.__init__`), so which shard a machine
lands on cannot change any draw — determinism by construction.

The worker owns everything machine-local: physics, samplers, agents
(detection, throttling, follow-ups), and, under a fault profile, the
machine-side fabric (uplinks, ack links, spec links, upload clients, crash
injectors).  The coordinator (:mod:`repro.cluster.shards`) owns the
control plane: the canonical aggregator, spec refresh decisions, the
sample log, and merged telemetry.

Synchronization happens at the natural barrier — every sampler
window-close tick (``t >= duration and (t - duration) % period == 0``; all
samplers share the duty cycle, so the schedule is global).  At a barrier
the worker ships its closed windows (columnar), plus any fabric arrivals
captured since the previous barrier, and blocks for the coordinator's
spec-refresh verdict before letting its agents consume the windows — the
exact order the single-process pipeline interleaves these effects in.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.samplebatch import SampleColumns
from repro.perf.profiling import StageTimers

__all__ = ["ShardSpec", "ShardedRunUnsupported", "COORDINATOR_COUNTERS",
           "barrier_ticks", "check_shardable", "run_shard_worker"]

#: Counters owned by the coordinator and excluded from every worker
#: export: the tick clock (accounted once, coordinator-side) and the
#: durable aggregator host's recovery instruments (the worker's replica
#: host is schedule-tracking only, but its replicated *build* can WAL
#: bootstrap specs before the demotion — those appends must not
#: double-count against the canonical host's).
COORDINATOR_COUNTERS = (
    "sim_ticks",
    "aggregator_crashes",
    "aggregator_restarts",
    "wal_records_appended",
    "wal_replayed_records",
    "snapshot_compactions",
    "wal_torn_tail",
)


class ShardedRunUnsupported(RuntimeError):
    """The scenario uses a feature the sharded engine cannot replay.

    Sharded execution keeps the scheduler on the coordinator and never
    consults it mid-run, so scenarios that re-place tasks (pending work at
    build time, or ``enable_migration``) must run single-process.
    """


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs: rebuild the world, run its slice.

    Attributes:
        index: this shard's position in the plan (0-based).
        builder: module-level callable returning a
            :class:`~repro.experiments.scenarios.Scenario`-like object
            (``.simulation`` + ``.pipeline``); must be importable by the
            worker process.
        kwargs: keyword arguments for ``builder``.
        machines: the machine names this worker executes.
        seconds: simulated seconds to run.
    """

    index: int
    builder: Callable[..., Any]
    kwargs: dict
    machines: tuple[str, ...]
    seconds: int


def barrier_ticks(sampler_config, seconds: int) -> list[int]:
    """Every global window-close tick in ``[0, seconds)``.

    Windows open on period boundaries and close ``duration`` seconds
    later; every machine shares the duty cycle, so close ticks are fleet-
    global and both sides of the pipe can compute the same schedule
    independently.
    """
    duration = sampler_config.duration_seconds
    period = sampler_config.period_seconds
    return [t for t in range(duration, seconds)
            if (t - duration) % period == 0]


def check_shardable(scenario) -> None:
    """Raise :class:`ShardedRunUnsupported` unless the scenario can shard."""
    pipeline = getattr(scenario, "pipeline", None)
    simulation = getattr(scenario, "simulation", None)
    if pipeline is None or simulation is None:
        raise TypeError("builder must return a Scenario-like object with "
                        ".simulation and .pipeline attributes, got "
                        f"{type(scenario).__name__}")
    if pipeline.enable_migration:
        raise ShardedRunUnsupported(
            "enable_migration moves tasks across machines mid-run; the "
            "sharded engine cannot replay that — run single-process")
    pending = sorted(
        job.name for job in simulation.scheduler.jobs.values()
        if job.pending_tasks())
    if pending:
        raise ShardedRunUnsupported(
            "scenario has unplaced tasks at build time; the periodic "
            "rescheduler would mutate placement mid-run, which the sharded "
            f"engine cannot replay (pending jobs: {pending})")


def _install_arrival_capture(plane, shard: tuple[str, ...], arrivals: list):
    """Make the worker's endpoint record, not ingest.

    The worker-local :class:`~repro.faults.retry.AggregatorEndpoint` still
    dedupes batch ids and sends acks (machine-side behaviour), but instead
    of feeding the worker's dead replica aggregator, each non-duplicate
    batch is recorded as ``(arrival_tick, machine, SampleColumns)`` for the
    coordinator to replay into the canonical aggregator in global
    (tick, machine) order — the same order the single-process pump
    delivers in.
    """
    staging: list = []
    plane.endpoint.ingest = staging.append
    for name in shard:
        port = plane.ports[name]
        original = port.uplink.deliver

        def deliver(t, batch, _original=original):
            staging.clear()
            _original(t, batch)
            if staging:
                arrivals.append((t, batch.machine,
                                 SampleColumns.from_samples(staging)))
                staging.clear()

        port.uplink.deliver = deliver


def _portable_incidents(agents, shard: tuple[str, ...]) -> list[tuple]:
    """Final incidents, sanitised for pickling.

    Live incidents reference scheduler tasks (which drag whole jobs,
    machines, and workload closures along); targets are replaced with
    name-only stubs carrying exactly what reporting reads (``.name`` and
    ``.job.name``).  Each entry is ``(time, machine, seq, incident)`` —
    the coordinator merge key reconstructing global creation order.
    """
    from dataclasses import replace

    out = []
    for name in shard:
        for seq, incident in enumerate(agents[name].incidents):
            decision = incident.decision
            target = decision.target
            if target is not None:
                target = _TaskRef(name=target.name,
                                  job=_JobRef(name=target.job.name))
                decision = replace(decision, target=target)
            out.append((incident.time_seconds, incident.machine, seq,
                        replace(incident, decision=decision, trace=None)))
    return out


@dataclass(frozen=True)
class _JobRef:
    """Picklable stand-in for a job on a shipped incident."""

    name: str


@dataclass(frozen=True)
class _TaskRef:
    """Picklable stand-in for an incident's target task."""

    name: str
    job: _JobRef


def run_shard_worker(conn, spec: ShardSpec) -> None:
    """Worker process entry point: build, run, report, exit."""
    try:
        _run(conn, spec)
    except BaseException:
        try:
            conn.send(("error", spec.index,
                       f"shard {spec.index} "
                       f"(machines {', '.join(spec.machines)}):\n"
                       f"{traceback.format_exc()}"))
        except Exception:
            pass
        raise
    finally:
        conn.close()


def _run(conn, spec: ShardSpec) -> None:
    from repro.obs import Observability, set_default_observability
    from repro.obs.metrics import export_state

    # Isolate from anything the parent process accumulated before forking.
    set_default_observability(Observability())
    timers = StageTimers()
    with timers.stage("worker_build"):
        scenario = spec.builder(**spec.kwargs)
        check_shardable(scenario)
        sim = scenario.simulation
        pipeline = scenario.pipeline
        pipeline.restrict_to_shard(spec.machines)
        shard = tuple(sorted(spec.machines))
        agents = pipeline.agents
        plane = pipeline.faults
        # Telemetry plane: the coordinator owns the fleet TSDB, so the
        # worker ships a registry snapshot at every barrier instead of
        # scraping locally.  sim_ticks is excluded everywhere a worker
        # exports state — the coordinator accounts for it exactly once.
        telemetry = pipeline.obs.timeseries is not None
        registry = pipeline.obs.metrics
        arrivals: list = []
        if plane is not None:
            _install_arrival_capture(plane, shard, arrivals)
        barriers = set(barrier_ticks(sim.config.sampler, spec.seconds))
    conn.send(("ready", spec.index))
    if sim._c_ticks is not None and spec.seconds:
        sim._c_ticks.inc(spec.seconds)
    compute = 0.0
    waiting = 0.0
    mark = time.perf_counter()
    for _ in range(spec.seconds):
        t = sim.now
        sim._tick_machines(t)
        closed = sim._tick_samplers(t)
        if t in barriers:
            if plane is not None:
                # The machine-side upward path: hand each closed window to
                # the retrying upload client (the single-process sink does
                # this per machine before anything else at this tick).
                for name, samples in closed:
                    plane.upload(t, name, samples)
            windows = [(name, SampleColumns.from_samples(samples))
                       for name, samples in closed]
            now = time.perf_counter()
            compute += now - mark
            conn.send(("window", t, windows, arrivals[:]))
            arrivals.clear()
            reply = conn.recv()
            mark = time.perf_counter()
            waiting += mark - now
            specs = reply[1]
            if specs is not None:
                # The downward path: exactly what the single-process
                # pipeline does when a refresh fires — clean mode updates
                # agents directly, faulted mode ships spec pushes through
                # each machine's faulty spec link.
                if plane is not None:
                    plane.push_specs(t, specs, only=shard)
                else:
                    for name in shard:
                        agents[name].update_specs(specs, now=t)
            # The local path, after the refresh (as in _on_samples).
            for name, samples in closed:
                agents[name].ingest_samples(t, samples)
            if telemetry:
                # After the ingest loop, so the scrape sees every effect
                # of tick t — the same point in the tick the
                # single-process step hook scrapes at.
                conn.send(("scrape", t,
                           export_state(
                               registry,
                               exclude_counters=COORDINATOR_COUNTERS)))
        elif closed:  # pragma: no cover - schedule invariant
            raise AssertionError(
                f"windows closed off the barrier schedule at t={t}")
        sim._finish_step(t)
    compute += time.perf_counter() - mark
    timers.add("worker_compute", compute, calls=spec.seconds)
    timers.add("worker_barrier_wait", waiting, calls=len(barriers))
    conn.send(("finished", spec.index, {
        "arrivals": arrivals[:],
        "incidents": _portable_incidents(agents, shard),
        "forensics": [(row.time_seconds, row.machine, i, row)
                      for i, row in enumerate(pipeline.forensics.records)],
        "machine_seconds": pipeline.machine_seconds,
        "crash_counts": {name: agents[name].crash_count for name in shard},
        "fault_tallies": plane.fault_tallies() if plane is not None else {},
        "machine_faults": (plane.machine_fault_tallies()
                           if plane is not None else {}),
        "anomalies": {name: agents[name].anomalies_seen for name in shard},
        "degraded": {name: agents[name].degraded for name in shard},
        "metrics": export_state(registry,
                                exclude_counters=COORDINATOR_COUNTERS),
        "timers": [(name, entry["seconds"], int(entry["calls"]))
                   for name, entry in timers.report().items()],
    }))
    # Wait for the coordinator's release so the pipe is never torn down
    # while it still has our summary in flight.
    conn.recv()
