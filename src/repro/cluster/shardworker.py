"""The shard worker: one persistent process executing slices of the fleet.

Each worker rebuilds the *full* deterministic scenario from a module-level
builder plus kwargs (the "replicated build" — no machine state ever
crosses a process boundary), then restricts execution to its shard of
machines.  Per-machine RNG streams are spawned from the root seed before
the restriction (`ClusterSimulation.__init__`), so which shard a machine
lands on cannot change any draw — determinism by construction.

Workers are *persistent* (:class:`~repro.cluster.shards.ShardPool`): one
process serves many runs, looping on ``("run", spec)`` requests.  The
process-spawn cost is paid once per pool lifetime, and after a scenario
key has run twice the worker *prebuilds* the next fresh replica during
the idle gap after ``("release",)`` — so warm reruns of the same scenario
(bench sweeps, repeated trials) start with both spawn and build already
amortized.

The worker owns everything machine-local: physics, samplers, agents
(detection, throttling, follow-ups), and, under a fault profile, the
machine-side fabric (uplinks, ack links, spec links, upload clients, crash
injectors).  The coordinator (:mod:`repro.cluster.shards`) owns the
control plane: the canonical aggregator, spec refresh decisions, the
sample log, and merged telemetry.

Synchronization happens at the natural barrier — every sampler
window-close tick (``t >= duration and (t - duration) % period == 0``; all
samplers share the duty cycle, so the schedule is global).  At a barrier
the worker sends the *metadata* of its closed windows and captured fabric
arrivals over the control pipe, writes the columnar payloads into its
shared-memory ring (:mod:`repro.cluster.shm` — no pickling; the
coordinator decodes numpy views over the same bytes), and blocks for the
coordinator's spec-refresh verdict before letting its agents consume the
windows — the exact order the single-process pipeline interleaves these
effects in.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.cluster.shm import ShmRing
from repro.core.samplebatch import SampleColumns
from repro.perf.profiling import StageTimers

__all__ = ["ShardSpec", "ShardedRunUnsupported", "COORDINATOR_COUNTERS",
           "barrier_ticks", "check_shardable", "run_pool_worker"]

#: Counters owned by the coordinator and excluded from every worker
#: export: the tick clock (accounted once, coordinator-side) and the
#: durable aggregator host's recovery instruments (the worker's replica
#: host is schedule-tracking only, but its replicated *build* can WAL
#: bootstrap specs before the demotion — those appends must not
#: double-count against the canonical host's).
COORDINATOR_COUNTERS = (
    "sim_ticks",
    "aggregator_crashes",
    "aggregator_restarts",
    "wal_records_appended",
    "wal_replayed_records",
    "snapshot_compactions",
    "wal_torn_tail",
)

#: Runs of one scenario key before the worker starts prebuilding the next
#: replica at release time.  One-off scenarios (most tests) never pay a
#: wasted build; repeated ones (bench sweeps, parity suites) hit a warm
#: prebuilt scenario from their third run on.
PREBUILD_AFTER_RUNS = 2


class ShardedRunUnsupported(RuntimeError):
    """The scenario uses a feature the sharded engine cannot replay.

    Sharded execution keeps the scheduler on the coordinator and never
    consults it mid-run, so scenarios that re-place tasks (pending work at
    build time, or ``enable_migration``) must run single-process.
    """


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker needs: rebuild the world, run its slice.

    Attributes:
        index: this shard's position in the plan (0-based).
        builder: module-level callable returning a
            :class:`~repro.experiments.scenarios.Scenario`-like object
            (``.simulation`` + ``.pipeline``); must be importable by the
            worker process.
        kwargs: keyword arguments for ``builder``.
        machines: the machine names this worker executes.
        seconds: simulated seconds to run.
    """

    index: int
    builder: Callable[..., Any]
    kwargs: dict
    machines: tuple[str, ...]
    seconds: int

    def scenario_key(self) -> tuple:
        """Identity of the *replica build* (shard-independent).

        Two specs with the same key build byte-identical scenarios, so a
        prebuilt replica for one can serve the other — the shard
        restriction and run length are applied after the build.
        """
        return (self.builder, tuple(sorted(
            (name, repr(value)) for name, value in self.kwargs.items())))


def barrier_ticks(sampler_config, seconds: int) -> list[int]:
    """Every global window-close tick in ``[0, seconds)``.

    Windows open on period boundaries and close ``duration`` seconds
    later; every machine shares the duty cycle, so close ticks are fleet-
    global and both sides of the pipe can compute the same schedule
    independently.
    """
    duration = sampler_config.duration_seconds
    period = sampler_config.period_seconds
    return [t for t in range(duration, seconds)
            if (t - duration) % period == 0]


def check_shardable(scenario) -> None:
    """Raise :class:`ShardedRunUnsupported` unless the scenario can shard."""
    pipeline = getattr(scenario, "pipeline", None)
    simulation = getattr(scenario, "simulation", None)
    if pipeline is None or simulation is None:
        raise TypeError("builder must return a Scenario-like object with "
                        ".simulation and .pipeline attributes, got "
                        f"{type(scenario).__name__}")
    if pipeline.enable_migration:
        raise ShardedRunUnsupported(
            "enable_migration moves tasks across machines mid-run; the "
            "sharded engine cannot replay that — run single-process")
    pending = sorted(
        job.name for job in simulation.scheduler.jobs.values()
        if job.pending_tasks())
    if pending:
        raise ShardedRunUnsupported(
            "scenario has unplaced tasks at build time; the periodic "
            "rescheduler would mutate placement mid-run, which the sharded "
            f"engine cannot replay (pending jobs: {pending})")


def _portable_incidents(agents, shard: tuple[str, ...]) -> list[tuple]:
    """Final incidents, sanitised for pickling.

    Live incidents reference scheduler tasks (which drag whole jobs,
    machines, and workload closures along); targets are replaced with
    name-only stubs carrying exactly what reporting reads (``.name`` and
    ``.job.name``).  Each entry is ``(time, machine, seq, incident)`` —
    the coordinator merge key reconstructing global creation order.
    """
    from dataclasses import replace

    out = []
    for name in shard:
        for seq, incident in enumerate(agents[name].incidents):
            decision = incident.decision
            target = decision.target
            if target is not None:
                target = _TaskRef(name=target.name,
                                  job=_JobRef(name=target.job.name))
                decision = replace(decision, target=target)
            out.append((incident.time_seconds, incident.machine, seq,
                        replace(incident, decision=decision, trace=None)))
    return out


@dataclass(frozen=True)
class _JobRef:
    """Picklable stand-in for a job on a shipped incident."""

    name: str


@dataclass(frozen=True)
class _TaskRef:
    """Picklable stand-in for an incident's target task."""

    name: str
    job: _JobRef


@dataclass
class _Prebuilt:
    """A fresh replica built ahead of its run (see PREBUILD_AFTER_RUNS)."""

    key: tuple
    scenario: Any
    obs: Any
    build_seconds: float


def _build_scenario(spec: ShardSpec):
    """One fresh, isolated replica build: new default facade, then build."""
    from repro.obs import Observability, set_default_observability

    obs = Observability()
    set_default_observability(obs)
    scenario = spec.builder(**spec.kwargs)
    check_shardable(scenario)
    return scenario, obs


def run_pool_worker(conn, ring_name: str, ring_capacity: int) -> None:
    """Persistent worker entry point: loop run requests until stopped.

    Protocol (worker side): receive ``("run", spec)``; reply
    ``("ready", index)`` once the replica is built and restricted; run the
    barrier loop; send ``("finished", index, summary)``; block for
    ``("release",)``; optionally prebuild; loop.  ``("stop",)`` exits.
    Any per-run failure is reported as ``("error", index, traceback)`` and
    kills the process — the pool discards and respawns crashed workers.
    """
    ring = ShmRing.attach(ring_name, ring_capacity)
    spec: Optional[ShardSpec] = None
    try:
        prebuilt: Optional[_Prebuilt] = None
        run_counts: dict[tuple, int] = {}
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            spec = message[1]
            key = spec.scenario_key()
            run_counts[key] = run_counts.get(key, 0) + 1
            _run_one(conn, ring, spec, prebuilt)
            prebuilt = None
            if run_counts[key] >= PREBUILD_AFTER_RUNS:
                start = time.perf_counter()
                scenario, obs = _build_scenario(spec)
                prebuilt = _Prebuilt(key, scenario, obs,
                                     time.perf_counter() - start)
    except EOFError:
        # Coordinator went away without a stop message (its process is
        # exiting); nothing left to serve.
        return
    except BaseException:
        try:
            index = spec.index if spec is not None else -1
            machines = ", ".join(spec.machines) if spec is not None else "?"
            conn.send(("error", index,
                       f"shard {index} (machines {machines}):\n"
                       f"{traceback.format_exc()}"))
        except Exception:
            pass
        raise
    finally:
        ring.close()
        conn.close()


def _write_batch(ring: ShmRing, columns: SampleColumns) -> None:
    """Encode one columnar batch straight into the shared segment."""
    ring.write(columns.encoded_nbytes, columns.encode_into)


def _run_one(conn, ring: ShmRing, spec: ShardSpec,
             prebuilt: Optional[_Prebuilt]) -> None:
    from repro.obs import set_default_observability
    from repro.obs.metrics import export_state

    timers = StageTimers()
    key = spec.scenario_key()
    if prebuilt is not None and prebuilt.key == key:
        scenario, obs = prebuilt.scenario, prebuilt.obs
        set_default_observability(obs)
        timers.add("worker_prebuild", prebuilt.build_seconds, calls=1)
    else:
        with timers.stage("worker_build"):
            scenario, obs = _build_scenario(spec)
    with timers.stage("worker_restrict"):
        sim = scenario.simulation
        pipeline = scenario.pipeline
        pipeline.restrict_to_shard(spec.machines)
        shard = tuple(sorted(spec.machines))
        agents = pipeline.agents
        plane = pipeline.faults
        # Telemetry plane: the coordinator owns the fleet TSDB, so the
        # worker ships a registry snapshot at every barrier instead of
        # scraping locally.  sim_ticks is excluded everywhere a worker
        # exports state — the coordinator accounts for it exactly once.
        telemetry = pipeline.obs.timeseries is not None
        registry = pipeline.obs.metrics
        arrivals: list = []
        if plane is not None:
            arrivals = plane.capture_arrivals(shard)
        barriers = set(barrier_ticks(sim.config.sampler, spec.seconds))
    conn.send(("ready", spec.index))
    if sim._c_ticks is not None and spec.seconds:
        sim._c_ticks.inc(spec.seconds)
    compute = 0.0
    waiting = 0.0
    mark = time.perf_counter()
    for _ in range(spec.seconds):
        t = sim.now
        sim._tick_machines(t)
        closed = sim._tick_samplers(t)
        if t in barriers:
            if plane is not None:
                # The machine-side upward path: hand each closed window to
                # the retrying upload client (the single-process sink does
                # this per machine before anything else at this tick).
                for name, samples in closed:
                    plane.upload(t, name, samples)
            # Control-plane metadata on the pipe *first*, payloads into
            # the ring second: the coordinator starts draining as soon as
            # the metadata lands, so a ring smaller than the barrier
            # payload backpressures instead of deadlocking.
            conn.send(("window", t, [name for name, _ in closed],
                       [(at, machine) for at, machine, _ in arrivals]))
            for _at, _machine, columns in arrivals:
                _write_batch(ring, columns)
            for _name, samples in closed:
                # The vector sampler already holds the window as columns;
                # ship those instead of re-encoding.  (Explicit None check:
                # an empty SampleColumns is falsy.)
                columns = getattr(samples, "columns", None)
                if columns is None:
                    columns = SampleColumns.from_samples(samples)
                _write_batch(ring, columns)
            arrivals.clear()
            now = time.perf_counter()
            compute += now - mark
            reply = conn.recv()
            mark = time.perf_counter()
            waiting += mark - now
            specs = reply[1]
            if specs is not None:
                # The downward path: exactly what the single-process
                # pipeline does when a refresh fires — clean mode updates
                # agents directly, faulted mode ships spec pushes through
                # each machine's faulty spec link.
                if plane is not None:
                    plane.push_specs(t, specs, only=shard)
                else:
                    for name in shard:
                        agents[name].update_specs(specs, now=t)
            # The local path, after the refresh (as in _on_samples).
            for name, samples in closed:
                agents[name].ingest_samples(
                    t, samples, columns=getattr(samples, "columns", None))
            if telemetry:
                # After the ingest loop, so the scrape sees every effect
                # of tick t — the same point in the tick the
                # single-process step hook scrapes at.
                conn.send(("scrape", t,
                           export_state(
                               registry,
                               exclude_counters=COORDINATOR_COUNTERS)))
        elif closed:  # pragma: no cover - schedule invariant
            raise AssertionError(
                f"windows closed off the barrier schedule at t={t}")
        sim._finish_step(t)
    compute += time.perf_counter() - mark
    timers.add("worker_compute", compute, calls=spec.seconds)
    timers.add("worker_barrier_wait", waiting, calls=len(barriers))
    conn.send(("finished", spec.index, {
        "arrival_meta": [(at, machine) for at, machine, _ in arrivals],
        "incidents": _portable_incidents(agents, shard),
        "forensics": [(row.time_seconds, row.machine, i, row)
                      for i, row in enumerate(pipeline.forensics.records)],
        "machine_seconds": pipeline.machine_seconds,
        "crash_counts": {name: agents[name].crash_count for name in shard},
        "fault_tallies": plane.fault_tallies() if plane is not None else {},
        "machine_faults": (plane.machine_fault_tallies()
                           if plane is not None else {}),
        "anomalies": {name: agents[name].anomalies_seen for name in shard},
        "degraded": {name: agents[name].degraded for name in shard},
        "metrics": export_state(registry,
                                exclude_counters=COORDINATOR_COUNTERS),
        "timers": [(name, entry["seconds"], int(entry["calls"]))
                   for name, entry in timers.report().items()],
    }))
    # Post-barrier fabric arrivals ride the ring like everything else.
    for _at, _machine, columns in arrivals:
        _write_batch(ring, columns)
    # Wait for the coordinator's release so neither the pipe nor the ring
    # is torn down or reused while it still has our summary in flight.
    conn.recv()
