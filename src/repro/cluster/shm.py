"""Shared-memory ring buffers: the sharded pipeline's data-plane wire.

Worker processes produce closed sampling windows as columnar
:class:`~repro.core.samplebatch.SampleColumns`; before this module they
crossed the process boundary as pickles on a pipe — one serialize, one
copy into the kernel, one copy out, one deserialize, per window, per
barrier.  :class:`ShmRing` replaces that with a single-producer /
single-consumer byte ring in a ``multiprocessing.shared_memory`` segment:
the worker encodes each batch directly into the segment and the
coordinator decodes numpy *views* over the same bytes (zero-copy), so the
only per-batch costs left are one bounds check and one small string-table
decode.  Pipes remain for the control plane (barrier metadata, spec
verdicts, scrape states) where latency, not bandwidth, matters.

**Protocol.**  Records are ``[int64 length][payload][pad to 8]``; a
length of ``-1`` is the wrap sentinel (the rest of the ring tail is dead,
the next record starts at offset 0).  Two monotonically increasing byte
cursors live in the segment header: the writer advances ``write`` after
each record, the reader advances ``read`` only at :meth:`ShmRingReader.commit`
— until then decoded views stay valid because the writer never crosses
the read cursor.  Each side writes only its own cursor, so no lock is
needed (8-byte aligned stores are atomic on every platform CPython runs
on).

**Backpressure.**  :meth:`ShmRingWriter.write` blocks while the ring
lacks space and fails loudly after ``timeout`` instead of deadlocking.
The reader side guarantees progress by committing (after materialising
any still-referenced views) whenever uncommitted bytes exceed half the
capacity — which is why a single record larger than half the ring is
rejected at the writer with advice to raise ``REPRO_SHM_RING_BYTES``.

**Cleanup.**  POSIX shared memory outlives processes: a leaked segment
is a file in ``/dev/shm`` until reboot.  Every created segment is
registered in a module-level table and unlinked by :func:`sweep_segments`
on interpreter exit (``atexit``), in addition to the ``try/finally``
unlinks on the owning pool's shutdown/reset paths — clean exits, crashed
workers, and KeyboardInterrupt all leave ``/dev/shm`` empty.
"""

from __future__ import annotations

import atexit
import os
import secrets
import struct
import time
from multiprocessing import shared_memory
from typing import Callable, Optional

__all__ = ["ShmRing", "ShmRingStalled", "ShmRecordTooLarge",
           "SEGMENT_PREFIX", "default_ring_bytes", "live_segments",
           "sweep_segments"]

#: Every segment this module creates is named with this prefix, so leak
#: checks (tests, CI) can assert ``/dev/shm`` holds none of ours.
SEGMENT_PREFIX = "repro-shm"

#: Default data capacity per ring; override with ``REPRO_SHM_RING_BYTES``.
#: A 500-task fleet's barrier payload is a few tens of KiB, so 4 MiB is
#: two orders of magnitude of headroom before backpressure engages.
DEFAULT_RING_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct("<qq")     # write cursor, read cursor (bytes, monotonic)
_LENGTH = struct.Struct("<q")      # per-record length prefix
_WRAP = -1                         # length sentinel: rest of ring tail is dead
_ALIGN = 8
_POLL_SECONDS = 0.0002

#: Segments created (and therefore owned) by this process, by name.
_OWNED: dict[str, shared_memory.SharedMemory] = {}

#: Segments whose mapping could not be closed because zero-copy views
#: were still referenced (a crash unwound mid-barrier).  Held so their
#: ``__del__`` never runs against live exports; the names are already
#: unlinked, so these cost address space, not ``/dev/shm`` entries.
_ZOMBIES: list[shared_memory.SharedMemory] = []


def default_ring_bytes() -> int:
    """The configured per-ring data capacity (``REPRO_SHM_RING_BYTES``)."""
    raw = os.environ.get("REPRO_SHM_RING_BYTES")
    if not raw:
        return DEFAULT_RING_BYTES
    value = int(raw)
    if value < 4096:
        raise ValueError(
            f"REPRO_SHM_RING_BYTES must be >= 4096, got {value}")
    return _pad(value)


def live_segments() -> tuple[str, ...]:
    """Names of segments created by this process and not yet unlinked."""
    return tuple(sorted(_OWNED))


def sweep_segments() -> int:
    """Unlink every still-live segment this process created.

    The atexit backstop behind the per-pool ``try/finally`` unlinks: a
    coordinator that dies with a pool still up (unhandled exception,
    KeyboardInterrupt above the run loop) must not leave ``/dev/shm``
    littered.  Returns the number of segments unlinked.
    """
    swept = 0
    for name in list(_OWNED):
        shm = _OWNED.pop(name)
        try:
            shm.close()
        except (OSError, BufferError):  # pragma: no cover - views alive
            pass
        try:
            shm.unlink()
            swept += 1
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
    return swept


atexit.register(sweep_segments)


def _pad(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class ShmRingStalled(RuntimeError):
    """The peer stopped making progress within the timeout."""


class ShmRecordTooLarge(ValueError):
    """A single record cannot fit the ring's backpressure guarantee."""


class ShmRing:
    """One single-producer/single-consumer shared-memory byte ring.

    Create on the coordinator (owner) side with :meth:`create`, attach on
    the worker side with :meth:`attach`.  The owner unlinks; attachers
    only close.  Writer and reader roles are fixed per process: the
    worker writes, the coordinator reads.
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owner: bool):
        self._shm = shm
        self.capacity = capacity
        self._owner = owner
        #: Reader-side: end of everything taken but not yet committed.
        self._pending = self._read_cursor()

    # -- lifecycle ------------------------------------------------------------

    @classmethod
    def create(cls, capacity: Optional[int] = None) -> "ShmRing":
        capacity = _pad(capacity if capacity is not None
                        else default_ring_bytes())
        name = f"{SEGMENT_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=_HEADER.size + capacity)
        _HEADER.pack_into(shm.buf, 0, 0, 0)
        _OWNED[shm.name.lstrip("/")] = shm
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        # Python < 3.13 registers the segment with the resource tracker
        # on attach too.  Workers are always mp children of the owner, so
        # they share the owner's tracker and the register is a set no-op;
        # the tracker then doubles as a SIGKILL backstop (it unlinks
        # whatever the owner never got to).  Do NOT unregister here: the
        # tracker holds one entry per name, and removing it from a child
        # makes the owner's eventual unlink complain about the missing
        # registration.
        shm = shared_memory.SharedMemory(name=name)
        return cls(shm, capacity, owner=False)

    @property
    def name(self) -> str:
        return self._shm.name.lstrip("/")

    @property
    def closed(self) -> bool:
        """True once the local mapping is gone (closed or swept)."""
        return self._shm.buf is None

    def close(self) -> None:
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - buffer already torn down
            pass
        except BufferError:
            # Zero-copy views over the segment are still referenced
            # (e.g. a crash unwound mid-barrier with decoded batches on
            # the stack).  Keep the mapping alive instead; unlink still
            # removes the name, so nothing leaks in /dev/shm.
            _ZOMBIES.append(self._shm)

    def unlink(self) -> None:
        """Owner side: close and remove the segment from the system."""
        self.close()
        if not self._owner:
            return
        _OWNED.pop(self.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass

    # -- cursors ----------------------------------------------------------------

    def _write_cursor(self) -> int:
        return _LENGTH.unpack_from(self._shm.buf, 0)[0]

    def _read_cursor(self) -> int:
        return _LENGTH.unpack_from(self._shm.buf, 8)[0]

    def _set_write_cursor(self, value: int) -> None:
        _LENGTH.pack_into(self._shm.buf, 0, value)

    def _set_read_cursor(self, value: int) -> None:
        _LENGTH.pack_into(self._shm.buf, 8, value)

    @property
    def pending_bytes(self) -> int:
        """Reader side: bytes taken (views outstanding) but not committed."""
        return self._pending - self._read_cursor()

    @property
    def max_record_bytes(self) -> int:
        """Largest single payload :meth:`write` accepts.

        Half the capacity minus framing: the reader only guarantees to
        free space once uncommitted bytes exceed half the ring, so a
        record needing more than the other half could deadlock.
        """
        # Worst case the record also burns a wrap sentinel plus the dead
        # tail, so budget the frame twice.
        return self.capacity // 2 - 2 * (_LENGTH.size + _ALIGN)

    # -- writer side ------------------------------------------------------------

    def write(self, nbytes: int, fill: Callable[[memoryview], None],
              timeout: Optional[float] = 120.0) -> None:
        """Append one record, blocking while the ring lacks space.

        ``fill`` receives a writable memoryview of exactly ``nbytes``
        over the segment and must fill it completely; this is what lets
        :meth:`~repro.core.samplebatch.SampleColumns.encode_into` write
        columns straight into shared memory with no intermediate bytes
        object.
        """
        if nbytes > self.max_record_bytes:
            raise ShmRecordTooLarge(
                f"record of {nbytes} bytes exceeds the ring's "
                f"{self.max_record_bytes}-byte record bound; raise "
                f"REPRO_SHM_RING_BYTES (capacity {self.capacity})")
        slot = _LENGTH.size + _pad(nbytes)
        deadline = None if timeout is None else time.monotonic() + timeout
        write = self._write_cursor()
        while True:
            pos = write % self.capacity
            tail = self.capacity - pos
            need = slot + (tail if tail < slot else 0)
            if self.capacity - (write - self._read_cursor()) >= need:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ShmRingStalled(
                    f"ring full for {timeout}s ({nbytes}-byte record, "
                    f"capacity {self.capacity}); reader stopped consuming")
            time.sleep(_POLL_SECONDS)
        if tail < slot:
            # Dead tail: plant the wrap sentinel and start at offset 0.
            _LENGTH.pack_into(self._shm.buf, _HEADER.size + pos, _WRAP)
            write += tail
            pos = 0
        start = _HEADER.size + pos
        _LENGTH.pack_into(self._shm.buf, start, nbytes)
        fill(self._shm.buf[start + _LENGTH.size:
                           start + _LENGTH.size + nbytes])
        # Publish only after the payload is fully in place.
        self._set_write_cursor(write + slot)

    def write_bytes(self, payload: bytes,
                    timeout: Optional[float] = 120.0) -> None:
        """Append one pre-serialized record (test/diagnostic convenience)."""
        view = memoryview(payload)
        self.write(len(view), lambda dst: dst.__setitem__(slice(None), view),
                   timeout=timeout)

    # -- reader side ------------------------------------------------------------

    def take(self, timeout: Optional[float] = 120.0,
             is_alive: Optional[Callable[[], bool]] = None) -> memoryview:
        """Borrow the next record as a zero-copy view.

        The view stays valid until :meth:`commit`; callers that must hold
        data past a commit copy it first (``SampleColumns.materialize``).
        ``is_alive`` lets the coordinator surface a dead writer process
        instead of timing out.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._write_cursor() - self._pending < _LENGTH.size:
            if is_alive is not None and not is_alive():
                raise ShmRingStalled("writer process died mid-record")
            if deadline is not None and time.monotonic() > deadline:
                raise ShmRingStalled(
                    f"no record within {timeout}s (writer stalled)")
            time.sleep(_POLL_SECONDS)
        pos = self._pending % self.capacity
        start = _HEADER.size + pos
        length = _LENGTH.unpack_from(self._shm.buf, start)[0]
        if length == _WRAP:
            self._pending += self.capacity - pos
            return self.take(timeout=timeout, is_alive=is_alive)
        self._pending += _LENGTH.size + _pad(length)
        return self._shm.buf[start + _LENGTH.size:
                             start + _LENGTH.size + length]

    def commit(self) -> None:
        """Release every record taken so far back to the writer.

        Views handed out by :meth:`take` must no longer be dereferenced
        after this (the writer may reuse the bytes).
        """
        self._set_read_cursor(self._pending)
