"""The fixed-tick cluster simulation loop.

One tick is one simulated second.  Each tick the simulation:

1. executes every machine (CPU allocation, contention, counters),
2. runs every machine's CPI sampler and fans closed windows out to sinks
   (the CPI2 pipeline registers itself as a sink),
3. invokes registered per-tick hooks (CPI2's per-machine agents hang off
   these to run their once-a-minute anomaly checks), and
4. periodically asks the scheduler to re-place preempted/pending tasks.

The loop is deterministic given the seed: every stochastic component draws
from generators spawned off one root ``numpy`` seed sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.cluster.fused import FusedFleet
from repro.cluster.machine import Machine, TickResult
from repro.cluster.scheduler import ClusterScheduler
from repro.obs import Observability
from repro.records import CpiSample
from repro.perf.sampler import CpiSampler, SamplerConfig

__all__ = ["SimConfig", "ClusterSimulation"]

#: Sink signature: (time, machine_name, samples-from-the-window-just-closed).
#: The samples argument is a sequence of :class:`CpiSample`: a plain list
#: from the scalar sampler engine, a columns-first
#: :class:`~repro.core.samplebatch.WindowSamples` from the vector engine —
#: sinks that only need ``len``/truthiness never materialize objects.
SampleSink = Callable[[int, str, Sequence[CpiSample]], None]

#: Hook signature: (time, machine, tick_result) after a machine executed.
TickHook = Callable[[int, Machine, TickResult], None]

#: Hook signature: (time,) at the very end of a tick, after samplers and
#: sinks ran but before the clock advances.  The telemetry plane scrapes
#: from here so a scrape at t sees every effect of tick t.
StepHook = Callable[[int], None]

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 86400


@dataclass
class SimConfig:
    """Simulation-wide knobs.

    Attributes:
        seed: root seed for all randomness in the simulation.
        reschedule_period: seconds between attempts to re-place pending tasks.
        sampler: CPI sampling duty cycle for every machine.
    """

    seed: int = 42
    reschedule_period: int = 60
    sampler: SamplerConfig = field(default_factory=SamplerConfig)

    def __post_init__(self) -> None:
        if self.reschedule_period < 1:
            raise ValueError(
                f"reschedule_period must be >= 1, got {self.reschedule_period}")


class ClusterSimulation:
    """Owns the clock and drives machines, samplers, hooks, and the scheduler."""

    def __init__(
        self,
        machines: Iterable[Machine],
        config: SimConfig | None = None,
        scheduler: Optional[ClusterScheduler] = None,
        obs: Optional[Observability] = None,
    ):
        self.config = config or SimConfig()
        #: Telemetry handle; ``None`` keeps the tick loop uninstrumented.
        #: The CPI2 pipeline injects its own via :meth:`set_observability`.
        self.obs: Optional[Observability] = None
        self._c_ticks = None
        self._c_departures = None
        if obs is not None:
            self.set_observability(obs)
        self.machines: dict[str, Machine] = {m.name: m for m in machines}
        if not self.machines:
            raise ValueError("simulation needs at least one machine")
        root = np.random.SeedSequence(self.config.seed)
        children = root.spawn(len(self.machines) + 1)
        for child, machine in zip(children, self.machines.values()):
            machine.rng = np.random.default_rng(child)
        self.rng = np.random.default_rng(children[-1])
        self.scheduler = scheduler or ClusterScheduler(
            self.machines.values(), rng=self.rng)
        self.samplers: dict[str, CpiSampler] = {
            name: CpiSampler(machine, self.config.sampler, obs=self.obs)
            for name, machine in self.machines.items()
        }
        self._sample_sinks: list[SampleSink] = []
        self._tick_hooks: list[TickHook] = []
        self._step_hooks: list[StepHook] = []
        #: Cached name-sorted iteration order for machines and samplers.
        #: Machines never change identity mid-run today; the cache is
        #: invalidated explicitly (or by a length change) if topology ever
        #: does change.
        self._machine_order: Optional[tuple[tuple[str, Machine], ...]] = None
        self._sampler_order: Optional[tuple[tuple[str, CpiSampler], ...]] = None
        #: The cluster-fused execution arena (rebuilt on placement changes;
        #: ``None`` until built or when any machine is ineligible).
        self._fleet: Optional[FusedFleet] = None
        #: The next second to execute.
        self.now = 0

    # -- wiring -----------------------------------------------------------------

    def add_sample_sink(self, sink: SampleSink) -> None:
        """Register a consumer of closed sampling windows."""
        self._sample_sinks.append(sink)

    def add_tick_hook(self, hook: TickHook) -> None:
        """Register a per-(tick, machine) observer, called after execution."""
        self._tick_hooks.append(hook)

    def add_step_hook(self, hook: StepHook) -> None:
        """Register an end-of-tick observer (runs before the clock advances).

        Unlike tick hooks these fire once per tick, not once per machine,
        and only after every sampler window closed and every sink ran —
        the point in the tick where the telemetry plane takes its scrape.
        """
        self._step_hooks.append(hook)

    def set_observability(self, obs: Observability) -> None:
        """Attach telemetry: tick/departure counters and departure events.

        Also handed to every sampler so discarded windows (zero
        instructions, corrupted counter reads) are counted at the source.
        """
        self.obs = obs
        self._c_ticks = obs.metrics.counter("sim_ticks")
        self._c_departures = obs.metrics.counter("task_departures")
        for sampler in getattr(self, "samplers", {}).values():
            sampler.obs = obs

    # -- running ------------------------------------------------------------------

    def invalidate_iteration_order(self) -> None:
        """Drop the cached machine/sampler iteration order.

        Call after mutating :attr:`machines` or :attr:`samplers` in place
        (adding/removing machines mid-run).  A length change is also
        detected automatically at the next step.
        """
        self._machine_order = None
        self._sampler_order = None
        self._fleet = None

    def _iteration_order(self) -> tuple[tuple[tuple[str, Machine], ...],
                                        tuple[tuple[str, CpiSampler], ...]]:
        machine_order = self._machine_order
        sampler_order = self._sampler_order
        if (machine_order is None or sampler_order is None
                or len(machine_order) != len(self.machines)
                or len(sampler_order) != len(self.samplers)):
            machine_order = tuple(
                (name, self.machines[name]) for name in sorted(self.machines))
            sampler_order = tuple(
                (name, self.samplers[name]) for name in sorted(self.samplers))
            self._machine_order = machine_order
            self._sampler_order = sampler_order
        return machine_order, sampler_order

    def step(self) -> dict[str, TickResult]:
        """Execute one simulated second across the whole cluster."""
        if self._c_ticks is not None:
            self._c_ticks.inc()
        return self._step()

    def _step(self) -> dict[str, TickResult]:
        """One tick, without the per-call tick-counter increment (so
        :meth:`run` can batch it into a single add)."""
        t = self.now
        results = self._tick_machines(t)
        self._run_samplers(t)
        self._finish_step(t)
        return results

    def _tick_machines(self, t: int) -> dict[str, TickResult]:
        """Phase 1: every machine's physics, then the per-machine hooks."""
        machine_order, _ = self._iteration_order()
        # Fused fast path: all machines' physics in one cluster-wide batch
        # (bit-identical to per-machine stepping; see repro.cluster.fused).
        # Rebuilt when placement changes; falls back to Machine.tick when
        # any machine is ineligible (legacy engine, patched tick, custom
        # interference model) or a dynamic profile changed mid-guard.
        fleet = self._fleet
        if fleet is None or not fleet.matches(machine_order):
            fleet = FusedFleet.build(machine_order)
            self._fleet = fleet
        results: Optional[dict[str, TickResult]] = None
        if fleet is not None:
            results = fleet.step(t)
            if results is None:
                self._fleet = None
        if results is None:
            results = {name: machine.tick(t)
                       for name, machine in machine_order}
        hooks = self._tick_hooks
        obs = self.obs
        for name, machine in machine_order:
            result = results[name]
            if obs is not None and result.departures:
                self._c_departures.inc(len(result.departures))
                for task, state in result.departures:
                    obs.events.event(
                        "task_departed", machine=name, task=task.name,
                        job=task.job.name, state=state.value)
            for hook in hooks:
                hook(t, machine, result)
        return results

    def _run_samplers(self, t: int) -> None:
        """Phase 2: tick samplers, fanning each closed window straight out
        to the sinks (machine by machine, in sorted-name order)."""
        _, sampler_order = self._iteration_order()
        for name, sampler in sampler_order:
            # The duty cycle makes tick() a no-op ~50 seconds out of every
            # 60; skip those calls outright (the sampler fast-forward).
            if not sampler.wants_tick(t):
                continue
            samples = sampler.tick(t)
            if samples:
                for sink in self._sample_sinks:
                    sink(t, name, samples)

    def _tick_samplers(self, t: int) -> list[tuple[str, Sequence[CpiSample]]]:
        """Phase 2, collect-only variant: tick samplers and return the
        closed windows *without* dispatching to sinks.

        The shard worker uses this to interpose its coordinator barrier
        between window close and downstream processing.  Collection order
        is the same sorted-name order :meth:`_run_samplers` dispatches in.
        """
        _, sampler_order = self._iteration_order()
        closed: list[tuple[str, Sequence[CpiSample]]] = []
        for name, sampler in sampler_order:
            if not sampler.wants_tick(t):
                continue
            samples = sampler.tick(t)
            if samples:
                closed.append((name, samples))
        return closed

    def _finish_step(self, t: int) -> None:
        """Phase 3: end-of-tick hooks, periodic rescheduling, clock advance."""
        if self._step_hooks:
            for hook in self._step_hooks:
                hook(t)
        if t > 0 and t % self.config.reschedule_period == 0:
            self.scheduler.reschedule_pending()
        self.now += 1

    def restrict_to(self, names: Iterable[str]) -> None:
        """Confine the tick loop to a subset of machines (shard execution).

        Machines and samplers outside ``names`` are dropped from the
        iteration tables; the scheduler keeps its full view (sharded runs
        refuse workloads that would reschedule, so it is never consulted).
        Intended for a worker process that rebuilt the full deterministic
        scenario and executes only its shard — per-machine RNG streams are
        assigned before restriction, so they are unchanged by it.
        """
        keep = set(names)
        unknown = keep - set(self.machines)
        if unknown:
            raise ValueError(f"unknown machines: {sorted(unknown)}")
        self.machines = {n: m for n, m in self.machines.items() if n in keep}
        self.samplers = {n: s for n, s in self.samplers.items() if n in keep}
        self.invalidate_iteration_order()

    def run(self, seconds: int) -> None:
        """Advance the simulation by ``seconds`` ticks.

        Equivalent to ``seconds`` calls to :meth:`step`, but the per-tick
        observability counter is batched into one add up front.
        """
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if seconds and self._c_ticks is not None:
            self._c_ticks.inc(seconds)
        for _ in range(seconds):
            self._step()

    def run_minutes(self, minutes: float) -> None:
        """Advance by ``minutes`` simulated minutes."""
        self.run(int(minutes * SECONDS_PER_MINUTE))

    def run_hours(self, hours: float) -> None:
        """Advance by ``hours`` simulated hours."""
        self.run(int(hours * SECONDS_PER_HOUR))
