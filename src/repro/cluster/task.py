"""Tasks: the unit of placement, accounting and throttling.

In the paper's cluster manager, "both latency-sensitive and batch jobs are
comprised of multiple tasks, each of which is mapped to a Linux process tree
on a machine.  All the threads of a task run inside the same
resource-management container (a cgroup)".  A :class:`Task` here is exactly
that: an instance of a job bound to a machine, owning a cgroup, and driven by
a workload model that says how much CPU it wants and how it behaves under
contention and under hard-capping.

Priority structure follows Section 2: jobs are classified into *production*
and *non-production* bands, and orthogonally into scheduling classes
(latency-sensitive vs. batch, with best-effort as the lowest batch tier).
CPI2's amelioration policy keys off both.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

from repro.cluster.cgroup import Cgroup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.cluster.interference import ResourceProfile
    from repro.cluster.job import Job


__all__ = ["SchedulingClass", "PriorityBand", "TaskState", "WorkloadModel", "Task"]


class SchedulingClass(enum.Enum):
    """How the scheduler and CPI2 treat a job's tasks.

    LATENCY_SENSITIVE tasks are provisioned for peak and protected by CPI2.
    BATCH tasks fill spare capacity and may be throttled to 0.1 CPU-sec/sec.
    BEST_EFFORT is the lowest batch tier; the paper throttles these harder
    (0.01 CPU-sec/sec).
    """

    LATENCY_SENSITIVE = "latency-sensitive"
    BATCH = "batch"
    BEST_EFFORT = "best-effort"

    @property
    def is_batch(self) -> bool:
        """True for both batch tiers (throttle-eligible by default policy)."""
        return self in (SchedulingClass.BATCH, SchedulingClass.BEST_EFFORT)


class PriorityBand(enum.Enum):
    """The paper's two priority bands (Section 7.2)."""

    PRODUCTION = "production"
    NONPRODUCTION = "non-production"


class TaskState(enum.Enum):
    """Task lifecycle."""

    PENDING = "pending"       # created, not yet placed
    RUNNING = "running"       # placed on a machine and executing
    COMPLETED = "completed"   # finished its work normally
    EXITED = "exited"         # self-terminated (e.g. gave up under capping)
    KILLED = "killed"         # killed by operator/policy (migration)
    PREEMPTED = "preempted"   # evicted by the scheduler


@runtime_checkable
class WorkloadModel(Protocol):
    """What a task's workload must provide to the simulator.

    Implementations live in :mod:`repro.workloads`; the cluster substrate only
    depends on this protocol so the dependency arrow points one way.
    """

    def cpu_demand(self, t: int) -> float:
        """Desired CPU usage (CPU-sec/sec) at simulation time ``t`` seconds."""
        ...

    def base_cpi(self) -> float:
        """Contention-free CPI of this workload on the reference platform."""
        ...

    def resource_profile(self) -> "ResourceProfile":
        """Shared-resource pressure exerted and sensitivity experienced."""
        ...

    def thread_count(self, t: int) -> int:
        """Threads alive at time ``t`` (Figure 1b, case 5's lame-duck mode)."""
        ...

    def on_tick(self, t: int, granted_usage: float, capped: bool) -> Optional[str]:
        """Observe one second of execution.

        Args:
            t: simulation time in seconds.
            granted_usage: CPU actually received this second (CPU-sec/sec).
            capped: whether a hard-cap was active on the task's cgroup.

        Returns:
            ``None`` to keep running, or one of ``"completed"`` / ``"exited"``
            to leave the machine (case 6's MapReduce worker returns
            ``"exited"`` when it gives up under repeated capping).
        """
        ...


class Task:
    """One task of a job, bound to (at most) one machine at a time.

    The task owns its cgroup: CPU accounting and hard-capping both go through
    it, mirroring how CPI2's agent actuates CFS bandwidth control on the
    task's container.
    """

    def __init__(
        self,
        job: "Job",
        index: int,
        workload: WorkloadModel,
        cpu_limit: float,
    ):
        """Args:
            job: owning job (gives name, class, band).
            index: task index within the job (0-based).
            workload: behaviour model driving demand and contention.
            cpu_limit: the cgroup CPU reservation/limit in CPU-sec/sec.
        """
        if index < 0:
            raise ValueError(f"task index must be >= 0, got {index}")
        self.job = job
        self.index = index
        self.workload = workload
        self.state = TaskState.PENDING
        self.machine_name: Optional[str] = None
        self.cgroup = Cgroup(name=f"{job.name}/{index}", cpu_limit=cpu_limit)
        #: Set while the task is the subject of an exit/kill this tick.
        self.exit_reason: Optional[str] = None
        # Job names are fixed at submission, so the task name never changes;
        # computing it once keeps it off the per-tick hot path (it is read
        # several times per task per simulated second).
        self._name = f"{job.name}/{index}"

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        """Cluster-unique task name, ``<jobname>/<index>``."""
        return self._name

    @property
    def scheduling_class(self) -> SchedulingClass:
        """Scheduling class inherited from the owning job."""
        return self.job.scheduling_class

    @property
    def priority_band(self) -> PriorityBand:
        """Priority band inherited from the owning job."""
        return self.job.priority_band

    @property
    def is_latency_sensitive(self) -> bool:
        """Convenience: LS tasks are CPI2 protection-eligible by default."""
        return self.scheduling_class is SchedulingClass.LATENCY_SENSITIVE

    # -- lifecycle ----------------------------------------------------------

    def mark_running(self, machine_name: str) -> None:
        """Record placement on a machine."""
        if self.state not in (TaskState.PENDING, TaskState.PREEMPTED,
                              TaskState.KILLED, TaskState.EXITED):
            raise ValueError(f"cannot place task in state {self.state}")
        self.state = TaskState.RUNNING
        self.machine_name = machine_name

    def mark_stopped(self, state: TaskState, reason: Optional[str] = None) -> None:
        """Record departure from its machine with a terminal/evicted state."""
        if state is TaskState.RUNNING or state is TaskState.PENDING:
            raise ValueError(f"{state} is not a stopped state")
        self.state = state
        self.machine_name = None
        self.exit_reason = reason

    def __repr__(self) -> str:
        return (f"Task({self.name}, {self.scheduling_class.value}, "
                f"{self.state.value}, machine={self.machine_name})")
