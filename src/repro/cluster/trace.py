"""Per-tick execution traces: record a run, analyse it offline.

The paper's case-study figures are exactly this artefact — a victim's CPI
and an antagonist's CPU usage, second by second, around a throttling event.
:class:`TraceRecorder` hooks a simulation and captures those series for any
subset of tasks, at any decimation, and round-trips through JSON lines so a
scenario can be recorded once and studied (or plotted with
:mod:`repro.analysis.viz`) afterwards.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.cluster.machine import Machine, TickResult
from repro.cluster.simulation import ClusterSimulation

__all__ = ["TracePoint", "TraceRecorder", "load_trace"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class TracePoint:
    """One task's execution during one recorded second."""

    t: int
    machine: str
    taskname: str
    jobname: str
    grant: float
    cpi: float
    capped: bool


class TraceRecorder:
    """Streams selected per-task tick data out of a running simulation."""

    def __init__(
        self,
        simulation: ClusterSimulation,
        task_filter: Optional[Callable[[str], bool]] = None,
        interval: int = 1,
    ):
        """Args:
            simulation: the simulation to hook (registration is immediate).
            task_filter: keep only task names this returns True for
                (``None`` records everything — mind the volume).
            interval: record every Nth second (decimation).
        """
        if interval < 1:
            raise ValueError(f"interval must be >= 1, got {interval}")
        self.task_filter = task_filter
        self.interval = interval
        self.points: list[TracePoint] = []
        simulation.add_tick_hook(self._on_tick)

    def _on_tick(self, t: int, machine: Machine, result: TickResult) -> None:
        if t % self.interval != 0:
            return
        for taskname, grant in result.grants.items():
            if self.task_filter is not None and not self.task_filter(taskname):
                continue
            task = (machine.get_task(taskname)
                    if machine.has_task(taskname) else None)
            self.points.append(TracePoint(
                t=t,
                machine=machine.name,
                taskname=taskname,
                jobname=taskname.rsplit("/", 1)[0],
                grant=grant,
                cpi=result.cpis.get(taskname, float("nan")),
                capped=(task.cgroup.is_capped(t) if task is not None
                        else False),
            ))

    # -- views -------------------------------------------------------------------

    def series(self, taskname: str, field: str = "cpi"
               ) -> tuple[list[int], list[float]]:
        """(timestamps, values) for one task's recorded field.

        ``field`` is one of ``cpi`` / ``grant``.
        """
        if field not in ("cpi", "grant"):
            raise ValueError(f"field must be 'cpi' or 'grant', got {field!r}")
        ts, values = [], []
        for point in self.points:
            if point.taskname == taskname:
                ts.append(point.t)
                values.append(getattr(point, field))
        return ts, values

    def tasknames(self) -> list[str]:
        """Distinct task names present in the trace."""
        return sorted({p.taskname for p in self.points})

    def window(self, start: int, end: int) -> list[TracePoint]:
        """Points with ``start <= t < end``."""
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")
        return [p for p in self.points if start <= p.t < end]

    # -- persistence --------------------------------------------------------------

    def save(self, path: PathLike) -> int:
        """Write the trace as JSON lines; returns the number of points."""
        with open(path, "w", encoding="utf-8") as handle:
            for point in self.points:
                handle.write(json.dumps(asdict(point)) + "\n")
        return len(self.points)


def load_trace(path: PathLike) -> list[TracePoint]:
    """Read a trace written by :meth:`TraceRecorder.save`."""
    field_names = set(TracePoint.__dataclass_fields__)
    points = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if set(data) != field_names:
                raise ValueError(f"{path}:{line_number}: bad trace record")
            points.append(TracePoint(**data))
    return points
