"""CPI2 proper: the paper's primary contribution.

The pipeline (paper Figure 6): per-machine agents sample per-task CPI once a
minute; samples flow to a cluster-level aggregator that computes smoothed
per-(job, platform) *CPI specs*; specs flow back to the agents, which detect
outliers locally, correlate victims against co-tenant CPU usage to identify
antagonists, and (optionally) hard-cap the antagonists so victims recover.

Public entry points:

* :class:`~repro.core.config.CpiConfig` — Table 2's parameters.
* :class:`~repro.core.aggregator.CpiAggregator` — spec learning.
* :class:`~repro.core.outlier.OutlierDetector` — local anomaly detection.
* :func:`~repro.core.correlation.antagonist_correlation` — Section 4.2's formula.
* :func:`~repro.core.identify.rank_cotenant_suspects` — Section 4.2 for all
  suspects at once (matrix engine; bit-identical to the scalar reference).
* :class:`~repro.core.agent.MachineAgent` — everything wired together per machine.
* :class:`~repro.core.pipeline.CpiPipeline` — the cluster-level loop.
* :class:`~repro.core.forensics.ForensicsStore` — offline incident queries.
"""

from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.records import CpiSample, CpiSpec, SpecKey
from repro.core.aggregator import CpiAggregator
from repro.core.outlier import OutlierDetector, AnomalyEvent
from repro.core.correlation import (
    antagonist_correlation,
    rank_suspects,
    SuspectScore,
)
from repro.core.identify import (
    rank_cotenant_suspects,
    rank_suspects_matrix,
    resolve_analysis_engine,
    suspect_usage_matrix,
)
from repro.core.window import ColumnarWindow
from repro.core.throttle import ThrottleController, AdaptiveCapController, CapAction
from repro.core.policy import AmeliorationPolicy, PolicyDecision, PolicyAction
from repro.core.agent import MachineAgent, Incident
from repro.core.pipeline import CpiPipeline
from repro.core.forensics import ForensicsStore, IncidentRecord
from repro.core.operator import ClusterStatus, OperatorConsole

__all__ = [
    "CpiConfig",
    "DEFAULT_CONFIG",
    "CpiSample",
    "CpiSpec",
    "SpecKey",
    "CpiAggregator",
    "OutlierDetector",
    "AnomalyEvent",
    "antagonist_correlation",
    "rank_suspects",
    "rank_cotenant_suspects",
    "rank_suspects_matrix",
    "resolve_analysis_engine",
    "suspect_usage_matrix",
    "ColumnarWindow",
    "SuspectScore",
    "ThrottleController",
    "AdaptiveCapController",
    "CapAction",
    "AmeliorationPolicy",
    "PolicyDecision",
    "PolicyAction",
    "MachineAgent",
    "Incident",
    "CpiPipeline",
    "ForensicsStore",
    "IncidentRecord",
    "ClusterStatus",
    "OperatorConsole",
]
