"""The per-machine management agent: detection, identification, amelioration.

"To avoid a central bottleneck, CPI values are measured and analyzed locally
by a management agent that runs in every machine.  We send this agent a
predicted CPI distribution for all jobs it is running tasks for ... Once an
anomaly is detected on a machine, an attempt is made to identify an
antagonist ... at most one of these attempts is performed each second."
(Sections 4.1-4.2.)

The agent consumes its machine's once-a-minute CPI samples, runs the outlier
detector against the pushed-down specs, rate-limits identification attempts,
correlates the victim against every co-tenant from *other* jobs, asks the
policy what to do, actuates hard-caps, and — crucially — follows up: when a
cap expires it measures whether the victim actually recovered, feeds the
outcome back to the policy (enabling re-analysis, the paper's "presumably we
picked poorly the first time"), and finalises the incident record.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cluster.machine import Machine
from repro.cluster.task import Task
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.correlation import SuspectScore, rank_suspects
from repro.core.outlier import AnomalyEvent, OutlierDetector
from repro.core.policy import AmeliorationPolicy, PolicyAction, PolicyDecision
from repro.core.records import CpiSample, CpiSpec, SpecKey
from repro.core.throttle import ThrottleController

__all__ = ["Incident", "MachineAgent"]

_incident_ids = itertools.count(1)


@dataclass
class Incident:
    """One detected-and-handled interference episode."""

    incident_id: int
    machine: str
    time_seconds: int
    victim_taskname: str
    victim_jobname: str
    victim_cpi: float
    cpi_threshold: float
    suspects: list[SuspectScore]
    decision: PolicyDecision
    #: Filled in at follow-up time for throttled incidents.
    post_cpi: Optional[float] = None
    recovered: Optional[bool] = None

    @property
    def top_suspect(self) -> Optional[SuspectScore]:
        """The highest-correlated suspect, if any were scored."""
        return self.suspects[0] if self.suspects else None

    @property
    def relative_cpi(self) -> Optional[float]:
        """Post-throttle CPI over pre-throttle CPI (Figure 16's metric)."""
        if self.post_cpi is None or self.victim_cpi <= 0:
            return None
        return self.post_cpi / self.victim_cpi


@dataclass
class _FollowUp:
    """A scheduled victim-recovery check for an applied cap."""

    due_at: int
    incident: Incident
    victim: Task
    antagonist: Task


@dataclass
class _TaskWindow:
    """Recent samples for one task (the correlation window's raw material)."""

    samples: deque[CpiSample] = field(default_factory=lambda: deque(maxlen=64))


class MachineAgent:
    """CPI2's agent for one machine."""

    def __init__(
        self,
        machine: Machine,
        config: CpiConfig = DEFAULT_CONFIG,
        throttler: Optional[ThrottleController] = None,
        policy: Optional[AmeliorationPolicy] = None,
        incident_sink: Optional[Callable[[Incident], None]] = None,
        migrator: Optional[Callable[[Task], None]] = None,
    ):
        """Args:
            machine: the machine this agent manages.
            config: CPI2 parameters.
            throttler: cap actuator (a fresh one per agent if omitted).
            policy: amelioration policy (a fresh one if omitted).
            incident_sink: called with every finalised or reported incident
                (the pipeline wires this to the forensics store).
            migrator: called when the policy says MIGRATE_VICTIM or
                KILL_ANTAGONIST; receives the task to move.  If ``None``
                those decisions are logged but not actuated.
        """
        self.machine = machine
        self.config = config
        self.detector = OutlierDetector(config)
        self.throttler = throttler or ThrottleController(config)
        self.policy = policy or AmeliorationPolicy(config)
        self.incident_sink = incident_sink
        self.migrator = migrator
        self._specs: dict[SpecKey, CpiSpec] = {}
        self._windows: dict[str, _TaskWindow] = {}
        self._followups: list[_FollowUp] = []
        self._last_analysis: Optional[int] = None
        self.incidents: list[Incident] = []
        self.anomalies_seen = 0

    # -- spec distribution (pipeline -> agent) ----------------------------------

    def update_specs(self, specs: dict[SpecKey, CpiSpec]) -> None:
        """Receive the latest predicted-CPI specs from the aggregator."""
        self._specs = dict(specs)

    def spec_for(self, jobname: str) -> Optional[CpiSpec]:
        """The spec for a job on this machine's platform, if published."""
        return self._specs.get(SpecKey(jobname, self.machine.platform.name))

    # -- sample ingestion ---------------------------------------------------------

    def ingest_samples(self, t: int, samples: list[CpiSample]) -> list[Incident]:
        """Process one closed sampling window's samples; returns new incidents."""
        incidents: list[Incident] = []
        for sample in samples:
            window = self._windows.get(sample.taskname)
            if window is None:
                window = _TaskWindow()
                self._windows[sample.taskname] = window
            window.samples.append(sample)
            spec = self._specs.get(sample.key())
            _verdict, anomaly = self.detector.observe(sample, spec)
            if anomaly is None:
                continue
            self.anomalies_seen += 1
            incident = self._handle_anomaly(t, anomaly)
            if incident is not None:
                incidents.append(incident)
        return incidents

    # -- anomaly handling ------------------------------------------------------------

    def _rate_limited(self, t: int) -> bool:
        if (self._last_analysis is not None
                and t - self._last_analysis < self.config.analysis_min_interval):
            return True
        return False

    def _victim_series(self, taskname: str, now: int
                       ) -> tuple[list[int], list[float]]:
        """(timestamps, cpi values) for the victim inside the window."""
        window = self._windows.get(taskname)
        if window is None:
            return [], []
        horizon = now - self.config.correlation_window
        timestamps: list[int] = []
        cpis: list[float] = []
        for sample in window.samples:
            ts = int(sample.timestamp_seconds)
            if ts > horizon:
                timestamps.append(ts)
                cpis.append(sample.cpi)
        return timestamps, cpis

    def _suspect_usage(self, task: Task, timestamps: list[int]) -> list[float]:
        """The suspect's CPU usage aligned to the victim's sample windows."""
        duration = self.config.sampling_duration
        return [
            task.cgroup.usage_between(ts - duration, ts)
            for ts in timestamps
        ]

    def _handle_anomaly(self, t: int, anomaly: AnomalyEvent) -> Optional[Incident]:
        """Identification + policy + actuation for one anomaly."""
        if self._rate_limited(t):
            return None
        if not self.machine.has_task(anomaly.taskname):
            return None  # the victim departed between sampling and analysis
        if any(f.victim.name == anomaly.taskname for f in self._followups):
            # An amelioration is already in flight for this victim; the paper
            # re-analyses only after the cap, if the CPI remained high.
            return None
        self._last_analysis = t

        victim = self.machine.get_task(anomaly.taskname)
        timestamps, victim_cpi = self._victim_series(anomaly.taskname, t)
        if len(timestamps) < 2:
            return None
        suspects_input: dict[str, tuple[str, list[float]]] = {}
        suspect_tasks: dict[str, Task] = {}
        for task in self.machine.resident_tasks():
            if task.job.name == victim.job.name:
                continue  # never suspect the victim's own job-mates
            suspects_input[task.name] = (
                task.job.name, self._suspect_usage(task, timestamps))
            suspect_tasks[task.name] = task
        if not suspects_input:
            return None

        scores = rank_suspects(victim_cpi, anomaly.threshold, suspects_input)
        scored_tasks = [(s, suspect_tasks[s.taskname]) for s in scores]
        decision = self.policy.decide(victim, scored_tasks)
        incident = Incident(
            incident_id=next(_incident_ids),
            machine=self.machine.name,
            time_seconds=t,
            victim_taskname=victim.name,
            victim_jobname=victim.job.name,
            victim_cpi=anomaly.cpi,
            cpi_threshold=anomaly.threshold,
            suspects=scores,
            decision=decision,
        )
        self.incidents.append(incident)
        self._actuate(t, incident, victim, decision)
        if decision.action is not PolicyAction.THROTTLE and self.incident_sink:
            # Throttled incidents reach the sink once their follow-up closes.
            self.incident_sink(incident)
        return incident

    def _actuate(self, t: int, incident: Incident, victim: Task,
                 decision: PolicyDecision) -> None:
        if decision.action is PolicyAction.THROTTLE:
            assert decision.target is not None and decision.score is not None
            self.throttler.cap(
                decision.target, t,
                victim_taskname=victim.name,
                correlation=decision.score.correlation,
            )
            self.policy.record_throttle(victim, decision.target)
            self._followups.append(_FollowUp(
                due_at=t + self.config.hardcap_duration,
                incident=incident,
                victim=victim,
                antagonist=decision.target,
            ))
        elif decision.action in (PolicyAction.MIGRATE_VICTIM,
                                 PolicyAction.KILL_ANTAGONIST):
            target = (victim if decision.action is PolicyAction.MIGRATE_VICTIM
                      else decision.target)
            if self.migrator is not None and target is not None:
                self.migrator(target)

    # -- follow-ups --------------------------------------------------------------------

    def tick(self, t: int) -> None:
        """Process due recovery checks.  Call at least once a minute."""
        due = [f for f in self._followups if f.due_at <= t]
        if not due:
            return
        self._followups = [f for f in self._followups if f.due_at > t]
        for followup in due:
            self._finish_followup(t, followup)

    def _finish_followup(self, t: int, followup: _FollowUp) -> None:
        incident = followup.incident
        victim = followup.victim
        post_cpi = self._recent_cpi(victim.name, since=incident.time_seconds)
        incident.post_cpi = post_cpi
        if post_cpi is None:
            # The victim left or stopped sampling; treat as recovered so we
            # don't escalate against a ghost.
            incident.recovered = True
        else:
            incident.recovered = post_cpi <= incident.cpi_threshold
        if self.machine.has_task(victim.name):
            self.policy.record_outcome(victim, bool(incident.recovered))
        if self.incident_sink:
            self.incident_sink(incident)
        # If the victim is still suffering, the next anomalous sample will
        # trigger another round of analysis; the policy remembers the failed
        # pick and will not choose it again ("presumably we picked poorly").

    def _recent_cpi(self, taskname: str, since: int) -> Optional[float]:
        """Mean victim CPI over samples taken after ``since`` (the cap window)."""
        window = self._windows.get(taskname)
        if window is None:
            return None
        values = [s.cpi for s in window.samples
                  if int(s.timestamp_seconds) > since]
        if not values:
            return None
        return sum(values) / len(values)

    # -- bookkeeping ----------------------------------------------------------------------

    def forget_task(self, taskname: str) -> None:
        """Drop per-task state when a task departs the machine."""
        self._windows.pop(taskname, None)
        self.detector.forget_task(taskname)
