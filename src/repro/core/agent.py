"""The per-machine management agent: detection, identification, amelioration.

"To avoid a central bottleneck, CPI values are measured and analyzed locally
by a management agent that runs in every machine.  We send this agent a
predicted CPI distribution for all jobs it is running tasks for ... Once an
anomaly is detected on a machine, an attempt is made to identify an
antagonist ... at most one of these attempts is performed each second."
(Sections 4.1-4.2.)

The agent consumes its machine's once-a-minute CPI samples, runs the outlier
detector against the pushed-down specs, rate-limits identification attempts,
correlates the victim against every co-tenant from *other* jobs, asks the
policy what to do, actuates hard-caps, and — crucially — follows up: when a
cap expires it measures whether the victim actually recovered, feeds the
outcome back to the policy (enabling re-analysis, the paper's "presumably we
picked poorly the first time"), and finalises the incident record.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.task import Task
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.correlation import SuspectScore
from repro.core.identify import (rank_cotenant_suspects,
                                 resolve_analysis_engine)
from repro.core.outlier import AnomalyEvent, OutlierDetector
from repro.core.policy import AmeliorationPolicy, PolicyAction, PolicyDecision
from repro.core.records import CpiSample, CpiSpec, SpecKey
from repro.core.samplebatch import SampleColumns
from repro.core.throttle import ThrottleController
from repro.core.window import ColumnarWindow
from repro.faults.checkpoint import (AgentCheckpoint, CheckpointVersionError,
                                     FollowUpState, sample_from_dict,
                                     sample_to_dict)
from repro.faults.quarantine import sample_quarantine_reason, spec_is_plausible
from repro.obs import Observability, default_observability
from repro.obs.tracing import PipelineTrace, Span

__all__ = ["Incident", "MachineAgent", "VECTOR_MIN_BATCH"]

#: Below this many samples per window the vector ingest path costs more in
#: fixed numpy dispatch than it saves, so the agent falls back to the
#: (bit-identical) scalar loop.  Measured crossover on the analysis-plane
#: benchmark; override per agent via ``agent.vector_min_batch``.
VECTOR_MIN_BATCH = 16

_incident_ids = itertools.count(1)

#: Correlation scores live in [-1, 1]; bucket at the paper's 0.35 threshold.
_CORRELATION_BUCKETS = (-0.5, 0.0, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0)


@dataclass
class Incident:
    """One detected-and-handled interference episode."""

    incident_id: int
    machine: str
    time_seconds: int
    victim_taskname: str
    victim_jobname: str
    victim_cpi: float
    cpi_threshold: float
    suspects: list[SuspectScore]
    decision: PolicyDecision
    #: Filled in at follow-up time for throttled incidents.
    post_cpi: Optional[float] = None
    recovered: Optional[bool] = None
    #: Stage-by-stage span trace (detect→identify→decide→actuate→followup).
    trace: Optional[PipelineTrace] = field(default=None, repr=False,
                                           compare=False)

    @property
    def top_suspect(self) -> Optional[SuspectScore]:
        """The highest-correlated suspect, if any were scored."""
        return self.suspects[0] if self.suspects else None

    @property
    def relative_cpi(self) -> Optional[float]:
        """Post-throttle CPI over pre-throttle CPI (Figure 16's metric)."""
        if self.post_cpi is None or self.victim_cpi <= 0:
            return None
        return self.post_cpi / self.victim_cpi


@dataclass
class _FollowUp:
    """A scheduled victim-recovery check for an applied cap."""

    due_at: int
    incident: Incident
    victim: Task
    #: The throttled task; ``None`` after a checkpoint restore found it
    #: gone (the name below still identifies it in events).
    antagonist: Optional[Task]
    antagonist_name: str
    #: The open ``followup`` trace span, closed when the check completes.
    span: Optional[Span] = None


class MachineAgent:
    """CPI2's agent for one machine."""

    def __init__(
        self,
        machine: Machine,
        config: CpiConfig = DEFAULT_CONFIG,
        throttler: Optional[ThrottleController] = None,
        policy: Optional[AmeliorationPolicy] = None,
        incident_sink: Optional[Callable[[Incident], None]] = None,
        migrator: Optional[Callable[[Task], None]] = None,
        obs: Optional[Observability] = None,
        analysis_engine: Optional[str] = None,
    ):
        """Args:
            machine: the machine this agent manages.
            config: CPI2 parameters.
            throttler: cap actuator (a fresh one per agent if omitted).
            policy: amelioration policy (a fresh one if omitted).
            incident_sink: called with every finalised or reported incident
                (the pipeline wires this to the forensics store).
            migrator: called when the policy says MIGRATE_VICTIM or
                KILL_ANTAGONIST; receives the task to move.  If ``None``
                those decisions are logged but not actuated.
            obs: telemetry handle (metrics/events/traces); the process
                default when omitted.
            analysis_engine: ``"vector"`` (columnar ingest + matrix
                identification) or ``"scalar"`` (the per-sample reference
                loop); defaults to ``$REPRO_ANALYSIS_ENGINE`` or
                ``vector``.  Both engines produce byte-identical samples,
                incidents, rankings and counters.
        """
        self.machine = machine
        self.config = config
        self.analysis_engine = resolve_analysis_engine(analysis_engine)
        #: Smallest batch routed through the vector ingest path; below it
        #: the scalar loop is cheaper (identical output either way).
        self.vector_min_batch = VECTOR_MIN_BATCH
        self.obs = obs or default_observability()
        self.detector = OutlierDetector(config, obs=self.obs)
        self.throttler = throttler or ThrottleController(config)
        if getattr(self.throttler, "obs", None) is None:
            self.throttler.obs = self.obs
        self.policy = policy or AmeliorationPolicy(config)
        self.incident_sink = incident_sink
        self.migrator = migrator
        self._specs: dict[SpecKey, CpiSpec] = {}
        self._windows: dict[str, ColumnarWindow] = {}
        self._followups: list[_FollowUp] = []
        self._last_analysis: Optional[int] = None
        self.incidents: list[Incident] = []
        self.anomalies_seen = 0
        #: Simulated time the freshest applied spec push was *issued*;
        #: ``None`` (bootstrap/tests) means the specs never go stale.
        self._spec_anchor: Optional[int] = None
        self._degraded = False
        self._last_checkpoint: Optional[AgentCheckpoint] = None
        self.crash_count = 0

    @property
    def degraded(self) -> bool:
        """True while the agent is analysing against stale specs."""
        return self._degraded

    # -- spec distribution (pipeline -> agent) ----------------------------------

    def update_specs(self, specs: dict[SpecKey, CpiSpec],
                     now: Optional[int] = None) -> None:
        """Receive the latest predicted-CPI specs from the aggregator.

        Args:
            specs: the full published spec map.
            now: when this push was issued; anchors staleness tracking.
                Omitted (bootstrap, tests, operator injection) the specs
                never expire.
        """
        self._specs = dict(specs)
        if now is not None:
            self._spec_anchor = now

    def receive_spec_push(self, t: int, specs: dict[SpecKey, CpiSpec],
                          issued_at: int) -> None:
        """Apply one spec push that crossed the (possibly faulty) fabric.

        Unlike :meth:`update_specs` this defends against wire damage and
        disorder: pushes older than the one already applied are ignored
        (delay/reorder faults can deliver them late), and implausible
        entries — NaN or absurd means, the signature of corruption — fall
        back to the last known-good spec for that key, counted per entry.
        """
        if self._spec_anchor is not None and issued_at < self._spec_anchor:
            self.obs.metrics.counter("spec_pushes_ignored",
                                     reason="out_of_order").inc()
            self.obs.events.event("spec_push_ignored", reason="out_of_order",
                                  machine=self.machine.name,
                                  issued_at=issued_at,
                                  applied=self._spec_anchor)
            return
        accepted: dict[SpecKey, CpiSpec] = {}
        rejected = 0
        for key, spec in specs.items():
            if spec_is_plausible(spec, self.config.quarantine_cpi_bound):
                accepted[key] = spec
                continue
            rejected += 1
            self.obs.metrics.counter("spec_entries_rejected",
                                     reason="implausible").inc()
            previous = self._specs.get(key)
            if previous is not None:
                accepted[key] = previous  # last known-good
        self._specs = accepted
        self._spec_anchor = issued_at
        if rejected:
            self.obs.events.event(
                "spec_push_degraded", machine=self.machine.name,
                rejected=rejected, accepted=len(accepted))
        self._refresh_degraded(t)

    def spec_for(self, jobname: str) -> Optional[CpiSpec]:
        """The spec for a job on this machine's platform, if published."""
        return self._specs.get(SpecKey(jobname, self.machine.platform.name))

    # -- degraded mode (stale specs) ---------------------------------------------

    def spec_staleness(self, t: int) -> Optional[int]:
        """Seconds since the applied spec push was issued; ``None`` when
        the specs came from bootstrap/operator injection (never stale)."""
        if self._spec_anchor is None:
            return None
        return t - self._spec_anchor

    def specs_too_stale(self, t: int) -> bool:
        """Whether specs are beyond the TTL and detection must stand down.

        The TTL is ``spec_ttl_periods`` refresh periods: a healthy fabric
        delivers a push every period, so staleness past a few periods
        means the world the specs describe is gone and anomalies against
        them would be noise.
        """
        staleness = self.spec_staleness(t)
        if staleness is None:
            return False
        ttl = self.config.spec_ttl_periods * self.config.spec_refresh_period
        return staleness > ttl

    def _refresh_degraded(self, t: int) -> None:
        """Track degraded-mode transitions (events + gauge, never silent)."""
        if self._spec_anchor is None and not self._degraded:
            # Bootstrap/operator specs never go stale, so no transition is
            # possible — skip the staleness arithmetic (this runs for every
            # machine on every simulated second).
            return
        stale = self.specs_too_stale(t)
        if stale == self._degraded:
            return
        self._degraded = stale
        self.obs.metrics.gauge("degraded_agents").inc(1 if stale else -1)
        self.obs.events.event(
            "degraded_mode_entered" if stale else "degraded_mode_exited",
            machine=self.machine.name,
            staleness=self.spec_staleness(t))

    # -- sample ingestion ---------------------------------------------------------

    def ingest_samples(self, t: int, samples: list[CpiSample],
                       columns: Optional[SampleColumns] = None
                       ) -> list[Incident]:
        """Process one closed sampling window's samples; returns new incidents.

        Implausible samples (NaN, zero-CPI, absurd-CPI — corrupted counter
        reads or wire damage) are quarantined before they can poison the
        correlation windows or detector streaks.  When specs are too stale
        (:meth:`specs_too_stale`) detection is suppressed with a counted
        ``analysis_dropped`` reason: samples still feed the windows so
        follow-ups keep working, but no new incidents open against a
        long-expired model.

        Under the ``vector`` engine, batches of at least
        :attr:`vector_min_batch` samples run the columnar path —
        vectorized quarantine, batch outlier detection
        (:meth:`~repro.core.outlier.OutlierDetector.observe_batch`) —
        feeding from ``columns`` when the caller already built the
        :class:`SampleColumns` (the pipeline did, for the aggregator).
        Output is identical either way; only event *interleaving* within a
        batch differs (quarantine events precede detection events instead
        of alternating per sample).
        """
        self._refresh_degraded(t)
        if (self.analysis_engine == "vector"
                and len(samples) >= self.vector_min_batch):
            if columns is None or len(columns) != len(samples):
                columns = SampleColumns.from_samples(samples)
            return self._ingest_vector(t, samples, columns)
        return self._ingest_scalar(t, samples)

    def _ingest_scalar(self, t: int,
                       samples: list[CpiSample]) -> list[Incident]:
        """The per-sample reference ingest loop (engine ``scalar``)."""
        incidents: list[Incident] = []
        for sample in samples:
            quarantine = sample_quarantine_reason(
                sample, self.config.quarantine_cpi_bound)
            if quarantine is not None:
                self._note_quarantined(sample, quarantine)
                continue
            window = self._windows.get(sample.taskname)
            if window is None:
                window = ColumnarWindow(sample.taskname)
                self._windows[sample.taskname] = window
            window.append_sample(sample)
            if self._degraded:
                self._note_stale_drop(t, sample)
                continue
            spec = self._specs.get(sample.key())
            _verdict, anomaly = self.detector.observe(sample, spec)
            if anomaly is None:
                continue
            incident = self._note_anomaly(t, anomaly)
            if incident is not None:
                incidents.append(incident)
        return incidents

    def _ingest_vector(self, t: int, samples: list[CpiSample],
                       columns: SampleColumns) -> list[Incident]:
        """Columnar ingest: masks over the batch, then batch detection.

        Trajectory-identical to :meth:`_ingest_scalar`: at most one
        analysis per batch can run in full (all samples in a window share
        time ``t`` and ``analysis_min_interval >= 1`` rate-limits the
        rest), drop paths mutate no machine state, and every sample lands
        in its task window before any anomaly is handled — and the one
        handled analysis only reads the *victim's* window, which holds
        exactly the same samples at that point in both orders.
        """
        cpi = columns.cpi
        usage = columns.cpu_usage
        bound = self.config.quarantine_cpi_bound
        ok = (np.isfinite(cpi) & np.isfinite(usage) & (cpi != 0.0)
              & (cpi <= bound))
        if not ok.all():
            for row in np.flatnonzero(~ok).tolist():
                sample = samples[row]
                self._note_quarantined(
                    sample, sample_quarantine_reason(sample, bound))
        ok_rows = np.flatnonzero(ok)
        if ok_rows.size == 0:
            return []
        tasks = columns.tasks
        keys = columns.keys
        task_code = columns.task_code
        # int(timestamp_seconds) == int64(microseconds / 1e6): same
        # float64 divide, same truncation toward zero.
        ts_sec = (columns.timestamp / 1e6).astype(np.int64)
        ts_us_list = columns.timestamp.tolist()
        ts_sec_list = ts_sec.tolist()
        usage_list = usage.tolist()
        cpi_list = cpi.tolist()
        task_code_list = task_code.tolist()
        key_code_list = columns.key_code.tolist()
        ok_list = ok_rows.tolist()
        for row in ok_list:
            taskname = tasks[task_code_list[row]]
            window = self._windows.get(taskname)
            if window is None:
                window = ColumnarWindow(taskname)
                self._windows[taskname] = window
            key = keys[key_code_list[row]]
            window.append(ts_us_list[row], ts_sec_list[row], usage_list[row],
                          cpi_list[row], key.jobname, key.platforminfo)
        if self._degraded:
            for row in ok_list:
                self._note_stale_drop(t, samples[row])
            return []
        stddevs = self.config.outlier_stddevs
        thresholds_by_key = np.zeros(len(keys))
        has_spec_by_key = np.zeros(len(keys), dtype=bool)
        for code, key in enumerate(keys):
            spec = self._specs.get(key)
            if spec is not None:
                has_spec_by_key[code] = True
                thresholds_by_key[code] = spec.outlier_threshold(stddevs)
        key_code_ok = columns.key_code[ok_rows]
        anomalies = self.detector.observe_batch(
            timestamps_sec=ts_sec[ok_rows],
            cpi=cpi[ok_rows],
            usage=usage[ok_rows],
            thresholds=thresholds_by_key[key_code_ok],
            has_spec=has_spec_by_key[key_code_ok],
            task_code=task_code[ok_rows],
            tasknames=tasks,
            key_code=key_code_ok,
            keys=keys,
        )
        incidents: list[Incident] = []
        for _row, anomaly in anomalies:
            incident = self._note_anomaly(t, anomaly)
            if incident is not None:
                incidents.append(incident)
        return incidents

    def _note_quarantined(self, sample: CpiSample, reason: str) -> None:
        self.obs.metrics.counter("samples_quarantined", reason=reason).inc()
        self.obs.events.event(
            "sample_quarantined", reason=reason,
            machine=self.machine.name, task=sample.taskname,
            job=sample.jobname)

    def _note_stale_drop(self, t: int, sample: CpiSample) -> None:
        self.obs.metrics.counter("analyses_dropped",
                                 reason="stale_spec").inc()
        self.obs.events.event(
            "analysis_dropped", reason="stale_spec",
            machine=self.machine.name, task=sample.taskname,
            job=sample.jobname,
            staleness=self.spec_staleness(t))

    def _note_anomaly(self, t: int, anomaly: AnomalyEvent
                      ) -> Optional[Incident]:
        """Count/emit one declared anomaly and hand it to analysis."""
        self.anomalies_seen += 1
        self.obs.metrics.counter("anomalies_detected").inc()
        self.obs.metrics.histogram("victim_cpi").observe(anomaly.cpi)
        self.obs.events.event(
            "anomaly_detected",
            machine=self.machine.name,
            task=anomaly.taskname,
            job=anomaly.jobname,
            cpi=round(anomaly.cpi, 4),
            threshold=round(anomaly.threshold, 4),
            violations=anomaly.violations,
        )
        return self._handle_anomaly(t, anomaly)

    # -- anomaly handling ------------------------------------------------------------

    def _rate_limited(self, t: int) -> bool:
        if (self._last_analysis is not None
                and t - self._last_analysis < self.config.analysis_min_interval):
            return True
        return False

    def _victim_series(self, taskname: str, now: int
                       ) -> tuple[list[int], list[float]]:
        """(timestamps, cpi values) for the victim inside the window."""
        window = self._windows.get(taskname)
        if window is None:
            return [], []
        horizon = now - self.config.correlation_window
        seconds = window.timestamps_sec
        inside = seconds > horizon
        if not inside.any():
            return [], []
        return seconds[inside].tolist(), window.cpi[inside].tolist()

    def _suspect_usage(self, task: Task, timestamps: list[int]) -> list[float]:
        """The suspect's CPU usage aligned to the victim's sample windows."""
        duration = self.config.sampling_duration
        return [
            task.cgroup.usage_between(ts - duration, ts)
            for ts in timestamps
        ]

    def _drop_analysis(self, t: int, anomaly: AnomalyEvent,
                       reason: str) -> None:
        """Make a skipped analysis visible: one event + one counted reason."""
        self.obs.metrics.counter("analyses_dropped", reason=reason).inc()
        if reason == "rate_limited":
            self.obs.metrics.counter("analyses_rate_limited").inc()
        self.obs.events.event(
            "analysis_dropped",
            reason=reason,
            machine=self.machine.name,
            task=anomaly.taskname,
            job=anomaly.jobname,
            cpi=round(anomaly.cpi, 4),
        )

    def _handle_anomaly(self, t: int, anomaly: AnomalyEvent) -> Optional[Incident]:
        """Identification + policy + actuation for one anomaly."""
        if self._rate_limited(t):
            self._drop_analysis(t, anomaly, "rate_limited")
            return None
        if not self.machine.has_task(anomaly.taskname):
            # The victim departed between sampling and analysis.
            self._drop_analysis(t, anomaly, "victim_departed")
            return None
        if any(f.victim.name == anomaly.taskname for f in self._followups):
            # An amelioration is already in flight for this victim; the paper
            # re-analyses only after the cap, if the CPI remained high.
            self._drop_analysis(t, anomaly, "followup_in_flight")
            return None
        self._last_analysis = t

        detect_start = (t if anomaly.first_flag_seconds is None
                        else anomaly.first_flag_seconds)
        trace = self.obs.tracer.start_trace(
            "incident", detect_start,
            machine=self.machine.name, victim=anomaly.taskname,
            victim_job=anomaly.jobname)
        trace.span("detect", detect_start, t,
                   cpi=round(anomaly.cpi, 4),
                   threshold=round(anomaly.threshold, 4),
                   violations=anomaly.violations)

        victim = self.machine.get_task(anomaly.taskname)
        timestamps, victim_cpi = self._victim_series(anomaly.taskname, t)
        if len(timestamps) < 2:
            self._drop_analysis(t, anomaly, "too_few_samples")
            trace.span("identify", t, t, outcome="too_few_samples")
            return None
        wall_start = time.perf_counter()
        scores, suspect_tasks = rank_cotenant_suspects(
            self.machine.resident_tasks(), victim.job.name, victim_cpi,
            timestamps, anomaly.threshold, self.config.sampling_duration,
            engine=self.analysis_engine)
        if not suspect_tasks:
            self._drop_analysis(t, anomaly, "no_cotenants")
            trace.span("identify", t, t, outcome="no_cotenants")
            return None
        identify_span = trace.span(
            "identify", t, t, suspects=len(scores),
            wall_us=int((time.perf_counter() - wall_start) * 1e6))
        if scores:
            identify_span.attributes["top_correlation"] = round(
                scores[0].correlation, 4)
            self.obs.metrics.histogram(
                "correlation_score", buckets=_CORRELATION_BUCKETS,
            ).observe(scores[0].correlation)
        scored_tasks = [(s, suspect_tasks[s.taskname]) for s in scores]
        decision = self.policy.decide(victim, scored_tasks)
        trace.span("decide", t, t, action=decision.action.value,
                   target=decision.target.name if decision.target else None,
                   reason=decision.reason)
        incident = Incident(
            incident_id=next(_incident_ids),
            machine=self.machine.name,
            time_seconds=t,
            victim_taskname=victim.name,
            victim_jobname=victim.job.name,
            victim_cpi=anomaly.cpi,
            cpi_threshold=anomaly.threshold,
            suspects=scores,
            decision=decision,
            trace=trace,
        )
        trace.attributes["incident_id"] = incident.incident_id
        self.incidents.append(incident)
        self.obs.metrics.counter("incidents_by_action",
                                 action=decision.action.value).inc()
        self.obs.events.event(
            "incident_opened",
            incident_id=incident.incident_id,
            machine=self.machine.name,
            victim=victim.name,
            victim_job=victim.job.name,
            action=decision.action.value,
            target=decision.target.name if decision.target else None,
            correlation=(round(decision.score.correlation, 4)
                         if decision.score else None),
        )
        self._actuate(t, incident, victim, decision)
        if decision.action is not PolicyAction.THROTTLE and self.incident_sink:
            # Throttled incidents reach the sink once their follow-up closes.
            self.incident_sink(incident)
        return incident

    def _actuate(self, t: int, incident: Incident, victim: Task,
                 decision: PolicyDecision) -> None:
        trace = incident.trace
        if decision.action is PolicyAction.THROTTLE:
            assert decision.target is not None and decision.score is not None
            action = self.throttler.cap(
                decision.target, t,
                victim_taskname=victim.name,
                correlation=decision.score.correlation,
            )
            self.policy.record_throttle(victim, decision.target)
            followup_span = None
            if trace is not None:
                trace.span("actuate", t, t, action="throttle",
                           target=decision.target.name, quota=action.quota)
                followup_span = trace.span("followup", t,
                                           antagonist=decision.target.name)
            self._followups.append(_FollowUp(
                due_at=t + self.config.hardcap_duration,
                incident=incident,
                victim=victim,
                antagonist=decision.target,
                antagonist_name=decision.target.name,
                span=followup_span,
            ))
            self._update_caps_gauge(t)
        elif decision.action in (PolicyAction.MIGRATE_VICTIM,
                                 PolicyAction.KILL_ANTAGONIST):
            target = (victim if decision.action is PolicyAction.MIGRATE_VICTIM
                      else decision.target)
            actuated = self.migrator is not None and target is not None
            if trace is not None:
                trace.span("actuate", t, t, action=decision.action.value,
                           target=target.name if target else None,
                           actuated=actuated)
            if actuated:
                self.migrator(target)
        elif trace is not None:
            trace.span("actuate", t, t, action=decision.action.value)

    def _update_caps_gauge(self, t: int) -> None:
        self.obs.metrics.gauge("caps_active", machine=self.machine.name).set(
            len(self.throttler.active_caps(t)))

    # -- follow-ups --------------------------------------------------------------------

    def tick(self, t: int) -> None:
        """Process due recovery checks.  Call at least once a minute."""
        self._refresh_degraded(t)
        if not self._followups:
            # The common case by far — this runs per machine per simulated
            # second, and follow-ups exist only while a cap is in flight.
            return
        due = [f for f in self._followups if f.due_at <= t]
        if not due:
            return
        self._followups = [f for f in self._followups if f.due_at > t]
        for followup in due:
            self._finish_followup(t, followup)

    def _finish_followup(self, t: int, followup: _FollowUp) -> None:
        incident = followup.incident
        victim = followup.victim
        post_cpi = self._recent_cpi(victim.name, since=incident.time_seconds)
        incident.post_cpi = post_cpi
        if post_cpi is None:
            # The victim left or stopped sampling; treat as recovered so we
            # don't escalate against a ghost.
            incident.recovered = True
            outcome = "victim_gone"
        else:
            incident.recovered = post_cpi <= incident.cpi_threshold
            outcome = "recovered" if incident.recovered else "still_suffering"
        if self.machine.has_task(victim.name):
            self.policy.record_outcome(victim, bool(incident.recovered))
        if followup.span is not None:
            followup.span.finish(t, outcome=outcome,
                                 post_cpi=(round(post_cpi, 4)
                                           if post_cpi is not None else None))
        self.obs.metrics.counter("followups_completed", outcome=outcome).inc()
        relative = incident.relative_cpi
        self.obs.events.event(
            "followup_completed",
            incident_id=incident.incident_id,
            machine=self.machine.name,
            victim=victim.name,
            antagonist=followup.antagonist_name,
            outcome=outcome,
            recovered=incident.recovered,
            post_cpi=round(post_cpi, 4) if post_cpi is not None else None,
            relative_cpi=round(relative, 4) if relative is not None else None,
        )
        self._update_caps_gauge(t)
        if self.incident_sink:
            self.incident_sink(incident)
        # If the victim is still suffering, the next anomalous sample will
        # trigger another round of analysis; the policy remembers the failed
        # pick and will not choose it again ("presumably we picked poorly").

    def _recent_cpi(self, taskname: str, since: int) -> Optional[float]:
        """Mean victim CPI over samples taken after ``since`` (the cap window)."""
        window = self._windows.get(taskname)
        if window is None:
            return None
        after = window.timestamps_sec > since
        if not after.any():
            return None
        values = window.cpi[after].tolist()
        # builtins.sum over the same python floats in the same order as the
        # old list comprehension — bit-identical mean.
        return sum(values) / len(values)

    # -- bookkeeping ----------------------------------------------------------------------

    def forget_task(self, taskname: str, now: Optional[int] = None) -> None:
        """Drop per-task state when a task departs the machine.

        Pending follow-ups whose victim is the departed task are purged and
        their incidents finalised through the sink immediately (departed
        victims count as recovered, with no post-cap CPI) — otherwise the
        stale entries would block analyses for any later task reusing the
        name until the follow-up's due time.

        Args:
            taskname: the departed task.
            now: current simulation time; each purged follow-up falls back
                to its own due time when omitted.
        """
        stale = [f for f in self._followups if f.victim.name == taskname]
        if stale:
            self._followups = [f for f in self._followups
                               if f.victim.name != taskname]
        # Window first: _finish_followup must see the victim as gone so the
        # departed-victim rule (recovered, post_cpi=None) applies.
        self._windows.pop(taskname, None)
        self.detector.forget_task(taskname)
        for followup in stale:
            self.obs.metrics.counter("followups_purged").inc()
            self.obs.events.event(
                "followup_purged",
                reason="victim_departed",
                incident_id=followup.incident.incident_id,
                machine=self.machine.name,
                victim=taskname,
                antagonist=followup.antagonist_name,
            )
            self._finish_followup(now if now is not None else followup.due_at,
                                  followup)

    # -- checkpoint / crash / recovery ----------------------------------------------

    def take_checkpoint(self, t: int) -> AgentCheckpoint:
        """Snapshot the state a restart must not lose; kept as latest.

        Covers the outlier windows (per-task recent samples), detector
        streaks, and in-flight follow-ups — the state whose loss would
        silently forget an anomalous task mid-incident.  The snapshot is
        plain JSON-able data (see :class:`~repro.faults.checkpoint.
        AgentCheckpoint`), i.e. what a real agent would write to disk.
        """
        checkpoint = AgentCheckpoint(
            machine=self.machine.name,
            taken_at=t,
            last_analysis=self._last_analysis,
            anomalies_seen=self.anomalies_seen,
            windows={name: [sample_to_dict(s) for s in window.samples]
                     for name, window in self._windows.items()
                     if len(window)},
            detector_flags=self.detector.export_flags(),
            followups=[
                FollowUpState(
                    due_at=f.due_at,
                    victim_taskname=f.victim.name,
                    antagonist_taskname=f.antagonist_name,
                    incident_id=f.incident.incident_id,
                    incident_time=f.incident.time_seconds,
                    victim_jobname=f.incident.victim_jobname,
                    victim_cpi=f.incident.victim_cpi,
                    cpi_threshold=f.incident.cpi_threshold,
                    action=f.incident.decision.action.value,
                ) for f in self._followups
            ],
        )
        self._last_checkpoint = checkpoint
        self.obs.metrics.counter("agent_checkpoints").inc()
        return checkpoint

    def crash(self, t: int) -> None:
        """Simulate the agent process dying: volatile state is gone.

        Windows, detector streaks, follow-ups, and the analysis rate-limit
        clock are lost.  The spec cache survives (a real agent persists the
        small spec map locally and re-reads it on start — losing it would
        blind detection until the next daily push).  Already-raised
        incidents survive in :attr:`incidents` as the historical record:
        they were shipped to the forensics sink when they opened.
        """
        self.crash_count += 1
        lost_followups = len(self._followups)
        self.obs.metrics.counter("agent_crashes").inc()
        self.obs.events.event(
            "agent_crashed", machine=self.machine.name,
            lost_followups=lost_followups, lost_windows=len(self._windows))
        self._windows = {}
        self._followups = []
        self._last_analysis = None
        self.detector = OutlierDetector(self.config, obs=self.obs)

    def restore(self, checkpoint: AgentCheckpoint, t: int) -> None:
        """Recover from a checkpoint after :meth:`crash`.

        Windows and detector streaks are reloaded wholesale.  Follow-ups
        are re-armed against the live machine: a follow-up whose victim or
        antagonist no longer exists is finalised immediately through the
        sink (counted as purged, reason ``lost_at_restore``) rather than
        silently dropped.  Incidents referenced by id are reused when this
        agent object still holds them; otherwise (restore into a fresh
        process) they are rebuilt from the checkpointed fields.
        """
        self._windows = {
            name: ColumnarWindow.from_samples(
                name, (sample_from_dict(s) for s in samples))
            for name, samples in checkpoint.windows.items()
        }
        self.detector.restore_flags(checkpoint.detector_flags)
        self._last_analysis = checkpoint.last_analysis
        self.anomalies_seen = max(self.anomalies_seen,
                                  checkpoint.anomalies_seen)
        recovered = 0
        for state in checkpoint.followups:
            incident = next((i for i in self.incidents
                             if i.incident_id == state.incident_id), None)
            antagonist = (self.machine.get_task(state.antagonist_taskname)
                          if self.machine.has_task(state.antagonist_taskname)
                          else None)
            if incident is None:
                incident = Incident(
                    incident_id=state.incident_id,
                    machine=checkpoint.machine,
                    time_seconds=state.incident_time,
                    victim_taskname=state.victim_taskname,
                    victim_jobname=state.victim_jobname,
                    victim_cpi=state.victim_cpi,
                    cpi_threshold=state.cpi_threshold,
                    suspects=[],
                    decision=PolicyDecision(
                        action=PolicyAction(state.action),
                        target=antagonist,
                        reason="restored-from-checkpoint"),
                )
                self.incidents.append(incident)
            if not self.machine.has_task(state.victim_taskname):
                # Victim left while the agent was down; finalise now so
                # the incident is not silently forgotten.
                self.obs.metrics.counter("followups_purged").inc()
                self.obs.events.event(
                    "followup_purged", reason="lost_at_restore",
                    incident_id=state.incident_id,
                    machine=self.machine.name,
                    victim=state.victim_taskname,
                    antagonist=state.antagonist_taskname)
                incident.recovered = True
                if self.incident_sink:
                    self.incident_sink(incident)
                continue
            self._followups.append(_FollowUp(
                due_at=state.due_at,
                incident=incident,
                victim=self.machine.get_task(state.victim_taskname),
                antagonist=antagonist,
                antagonist_name=state.antagonist_taskname,
            ))
            recovered += 1
        if recovered:
            self.obs.metrics.counter("followups_recovered").inc(recovered)
        self.obs.events.event(
            "agent_restored", machine=self.machine.name,
            checkpoint_age=t - checkpoint.taken_at,
            followups_recovered=recovered,
            windows_restored=len(self._windows))

    def restore_from_dict(self, data: dict, t: int) -> bool:
        """Restore from a serialised checkpoint (what a real agent reads
        off disk at start-up); returns whether anything was restored.

        A checkpoint written under a different schema version — a stale
        file left by a pre-upgrade agent — is ignored with a counted
        ``checkpoint_version_mismatch`` event: the agent relearns its
        windows instead of crashing on the file, which would wedge it in a
        restart loop a restart cannot fix.
        """
        try:
            checkpoint = AgentCheckpoint.from_dict(data)
        except CheckpointVersionError as error:
            self.obs.metrics.counter("checkpoint_version_mismatch").inc()
            self.obs.events.warning(
                "checkpoint_version_mismatch", machine=self.machine.name,
                error=str(error))
            return False
        self.restore(checkpoint, t)
        return True

    def crash_and_restart(self, t: int) -> None:
        """Crash, then restart from the latest checkpoint (if any)."""
        checkpoint = self._last_checkpoint
        self.crash(t)
        self.obs.metrics.counter("agent_restarts").inc()
        if checkpoint is not None:
            self.restore(checkpoint, t)
