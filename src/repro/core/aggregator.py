"""CPI sample aggregation: learning each job's normal behaviour.

"The data aggregation component of CPI2 calculates the mean and standard
deviation of CPI for each job, which is called its CPI spec.  This
information is updated every 24 hours. ... Historical data about prior runs
is incorporated using age-weighting, by multiplying the CPI value from the
previous day by about 0.9 before averaging it with the most recent day's
data.  We do not perform CPI management for applications with fewer than 5
tasks or fewer than 100 CPI samples per task."  (Section 3.1.)

:class:`CpiAggregator` ingests the per-task samples streamed off machines,
keeps running (Welford) statistics per (job, platform) key for the current
refresh period, and on each refresh blends the period's statistics with the
previous spec using the paper's age-weighting before publishing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.records import CpiSample, CpiSpec, SpecKey
from repro.core.samplebatch import SampleColumns
from repro.faults.quarantine import sample_quarantine_reason
from repro.obs import Observability

__all__ = ["CpiAggregator"]


@dataclass
class _RunningStats:
    """Welford accumulator for one (job, platform) key within one period."""

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    usage_sum: float = 0.0
    samples_per_task: dict[str, int] = field(default_factory=dict)

    def add(self, sample: CpiSample) -> None:
        self.count += 1
        delta = sample.cpi - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (sample.cpi - self.mean)
        self.usage_sum += sample.cpu_usage
        task = sample.taskname or f"{sample.jobname}/?"
        self.samples_per_task[task] = self.samples_per_task.get(task, 0) + 1

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self.m2 / self.count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def usage_mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.usage_sum / self.count

    @property
    def num_tasks(self) -> int:
        return len(self.samples_per_task)

    @property
    def min_samples_per_task(self) -> int:
        if not self.samples_per_task:
            return 0
        return min(self.samples_per_task.values())


class CpiAggregator:
    """The cluster-level CPI-spec learner."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 obs: Optional[Observability] = None):
        self.config = config
        self._current: dict[SpecKey, _RunningStats] = {}
        self._specs: dict[SpecKey, CpiSpec] = {}
        self._last_refresh: Optional[int] = None
        self.total_samples_ingested = 0
        self.total_samples_rejected = 0
        self._obs = obs
        # Cached so the per-sample ingest path is one attribute increment.
        self._c_ingested = (obs.metrics.counter("samples_ingested")
                            if obs is not None else None)
        # Per-reason rejection counters, cached the same way on first use so
        # a fault-heavy run pays one dict lookup per rejected sample, not a
        # labelled registry lookup.
        self._c_rejected: dict[str, object] = {}

    # -- ingest -----------------------------------------------------------------

    def ingest(self, sample: CpiSample) -> None:
        """Accumulate one sample into the current refresh period.

        Implausible samples — non-finite CPI or usage, zero CPI, CPI above
        the quarantine bound (corrupted counter reads or wire damage) —
        are rejected with a counted reason instead of being folded into
        the running statistics, where one NaN would poison a whole spec.
        """
        reason = sample_quarantine_reason(sample,
                                          self.config.quarantine_cpi_bound)
        if reason is not None:
            self._reject(reason, sample.jobname, sample.platforminfo)
            return
        key = sample.key()
        stats = self._current.get(key)
        if stats is None:
            stats = _RunningStats()
            self._current[key] = stats
        stats.add(sample)
        self.total_samples_ingested += 1
        if self._c_ingested is not None:
            self._c_ingested.inc()

    def _reject(self, reason: str, jobname: str, platforminfo: str) -> None:
        self.total_samples_rejected += 1
        if self._obs is None:
            return
        counter = self._c_rejected.get(reason)
        if counter is None:
            counter = self._obs.metrics.counter(
                "aggregator_samples_rejected", reason=reason)
            self._c_rejected[reason] = counter
        counter.inc()
        self._obs.events.event("aggregator_sample_rejected", reason=reason,
                               job=jobname, platform=platforminfo)

    def ingest_many(self, samples: Iterable[CpiSample]) -> None:
        """Accumulate a batch of samples."""
        for sample in samples:
            self.ingest(sample)

    def ingest_batch(self, batch: SampleColumns) -> None:
        """Accumulate one columnar batch.

        Bit-identical to feeding the same samples through :meth:`ingest`
        one at a time — the quarantine predicates run in the same order and
        the Welford recurrence is the same sequential float arithmetic; the
        win is dispatch, not math: one ``tolist`` per column instead of an
        attribute walk, a key construction, a quarantine call, and a
        counter increment per sample.  Cross-key processing order differs
        from the sample order (grouped by key), which is unobservable: each
        key owns an independent accumulator.
        """
        n = len(batch)
        if n == 0:
            return
        bound = self.config.quarantine_cpi_bound
        cpi = batch.cpi.tolist()
        usage = batch.cpu_usage.tolist()
        key_code = batch.key_code.tolist()
        task_code = batch.task_code.tolist()
        keys = batch.keys
        isfinite = math.isfinite
        accepted: dict[int, list[int]] = {}
        for i in range(n):
            c = cpi[i]
            if isfinite(c) and isfinite(usage[i]) and c != 0.0 and c <= bound:
                group = accepted.get(key_code[i])
                if group is None:
                    accepted[key_code[i]] = [i]
                else:
                    group.append(i)
                continue
            # Mirror sample_quarantine_reason's check order exactly.
            if not isfinite(c):
                reason = "non_finite_cpi"
            elif not isfinite(usage[i]):
                reason = "non_finite_usage"
            elif c == 0.0:
                reason = "zero_cpi"
            else:
                reason = "absurd_cpi"
            key = keys[key_code[i]]
            self._reject(reason, key.jobname, key.platforminfo)
        current = self._current
        tasks = batch.tasks
        ingested = 0
        for code, idxs in accepted.items():
            key = keys[code]
            stats = current.get(key)
            if stats is None:
                stats = _RunningStats()
                current[key] = stats
            count = stats.count
            mean = stats.mean
            m2 = stats.m2
            usage_sum = stats.usage_sum
            per_task = stats.samples_per_task
            for i in idxs:
                c = cpi[i]
                count += 1
                delta = c - mean
                mean += delta / count
                m2 += delta * (c - mean)
                usage_sum += usage[i]
                task = tasks[task_code[i]] or f"{key.jobname}/?"
                per_task[task] = per_task.get(task, 0) + 1
            stats.count = count
            stats.mean = mean
            stats.m2 = m2
            stats.usage_sum = usage_sum
            ingested += len(idxs)
        self.total_samples_ingested += ingested
        if self._c_ingested is not None and ingested:
            self._c_ingested.inc(ingested)

    # -- spec publication ----------------------------------------------------------

    def _eligible(self, stats: _RunningStats) -> bool:
        """The Section 3.1 robustness gates."""
        return (stats.num_tasks >= self.config.min_tasks_for_spec
                and stats.count >= self.config.min_samples_per_task * stats.num_tasks)

    def _blend(self, key: SpecKey, stats: _RunningStats) -> CpiSpec:
        """Combine the period's statistics with the previous spec.

        The previous spec's values are multiplied by the age weight (~0.9)
        before averaging with the fresh period, so history decays
        geometrically day over day.
        """
        previous = self._specs.get(key)
        if previous is None:
            return CpiSpec(
                jobname=key.jobname,
                platforminfo=key.platforminfo,
                num_samples=stats.count,
                cpu_usage_mean=stats.usage_mean,
                cpi_mean=stats.mean,
                cpi_stddev=stats.stddev,
            )
        w_old = self.config.history_age_weight
        w_new = 1.0
        total = w_old + w_new
        mean = (w_old * previous.cpi_mean + w_new * stats.mean) / total
        variance = (w_old * previous.cpi_stddev ** 2
                    + w_new * stats.variance) / total
        usage = (w_old * previous.cpu_usage_mean + w_new * stats.usage_mean) / total
        effective = int(w_old * previous.num_samples) + stats.count
        return CpiSpec(
            jobname=key.jobname,
            platforminfo=key.platforminfo,
            num_samples=effective,
            cpu_usage_mean=usage,
            cpi_mean=mean,
            cpi_stddev=math.sqrt(variance),
        )

    def recompute(self, now: int) -> dict[SpecKey, CpiSpec]:
        """Close the current period and publish updated specs.

        Keys whose period data fails the robustness gates keep their previous
        spec (if any) unchanged — a job that shrank below 5 tasks stops
        getting fresher predictions but is not forgotten mid-run.

        Returns the full published spec map.
        """
        updated = 0
        for key, stats in self._current.items():
            if stats.count == 0 or not self._eligible(stats):
                continue
            self._specs[key] = self._blend(key, stats)
            updated += 1
        self._current = {}
        self._last_refresh = now
        if self._obs is not None:
            self._obs.metrics.counter("spec_refreshes").inc()
            self._obs.metrics.gauge("specs_published").set(len(self._specs))
            self._obs.events.event("specs_published", updated=updated,
                                   published=len(self._specs))
        return dict(self._specs)

    def maybe_recompute(self, now: int) -> Optional[dict[SpecKey, CpiSpec]]:
        """Recompute if a refresh period has elapsed since the last one."""
        if (self._last_refresh is None
                or now - self._last_refresh >= self.config.spec_refresh_period):
            return self.recompute(now)
        return None

    # -- spec access ------------------------------------------------------------------

    def specs(self) -> dict[SpecKey, CpiSpec]:
        """The currently published specs (a copy)."""
        return dict(self._specs)

    def spec_for(self, jobname: str, platforminfo: str) -> Optional[CpiSpec]:
        """The published spec for one (job, platform), or ``None``."""
        return self._specs.get(SpecKey(jobname, platforminfo))

    def set_spec(self, spec: CpiSpec) -> None:
        """Inject a spec directly.

        Models the paper's warm start from historical data: "if we have seen
        a previous run of a job, we don't have to build a new model of its
        CPI behavior from scratch."  Also the natural hook for tests.
        """
        self._specs[spec.key()] = spec

    # -- durable state ----------------------------------------------------------

    def export_state(self) -> dict:
        """The complete learned state as a JSON-able dict.

        Entries are ordered lists, not maps: dict insertion order is part
        of the aggregator's observable behaviour (``recompute`` iterates
        ``_current`` in insertion order), so :meth:`restore_state` must be
        able to rebuild the exact same ordering.  Floats survive a JSON
        round-trip bit-exactly (Python emits shortest-repr float64).
        """
        from repro.core.storage import spec_to_dict

        return {
            "specs": [spec_to_dict(spec) for spec in self._specs.values()],
            "current": [
                {"jobname": key.jobname, "platforminfo": key.platforminfo,
                 "count": stats.count, "mean": stats.mean, "m2": stats.m2,
                 "usage_sum": stats.usage_sum,
                 "samples_per_task": dict(stats.samples_per_task)}
                for key, stats in self._current.items()],
            "last_refresh": self._last_refresh,
            "total_ingested": self.total_samples_ingested,
            "total_rejected": self.total_samples_rejected,
        }

    def restore_state(self, state: dict) -> None:
        """Install a state exported by :meth:`export_state`.

        Replaces all learned state (specs, in-period Welford accumulators,
        refresh clock, ingest totals).  Metric counters are deliberately
        not rewound: monitoring is external to the process being restored.
        """
        from repro.core.storage import spec_from_dict

        self._specs = {}
        for data in state["specs"]:
            spec = spec_from_dict(data)
            self._specs[spec.key()] = spec
        self._current = {}
        for entry in state["current"]:
            key = SpecKey(entry["jobname"], entry["platforminfo"])
            self._current[key] = _RunningStats(
                count=entry["count"], mean=entry["mean"], m2=entry["m2"],
                usage_sum=entry["usage_sum"],
                samples_per_task=dict(entry["samples_per_task"]))
        self._last_refresh = state["last_refresh"]
        self.total_samples_ingested = state["total_ingested"]
        self.total_samples_rejected = state["total_rejected"]

    def reset_state(self) -> None:
        """Forget everything — the crash half of crash/restore."""
        self._current = {}
        self._specs = {}
        self._last_refresh = None
        self.total_samples_ingested = 0
        self.total_samples_rejected = 0
