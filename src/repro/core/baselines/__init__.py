"""Baseline antagonist-identification schemes CPI2 is compared against.

Section 4.2 sketches the obvious alternative: "An active scheme might
rank-order a list of suspects based on heuristics like CPU usage and cache
miss rate, and temporarily throttle them back one by one to see if the CPI
of the victim task improves.  Unfortunately, this simple approach may
disrupt many innocent tasks."

* :class:`~repro.core.baselines.active_probe.ActiveProbeIdentifier` — that
  scheme, with disruption accounting, so the ablation benchmark can quantify
  the paper's objection.
* :mod:`~repro.core.baselines.usage_ranker` — passive heuristics (top CPU
  user, top L3 misser) without correlation.
* :mod:`~repro.core.baselines.random_pick` — the null hypothesis.
"""

from repro.core.baselines.active_probe import ActiveProbeIdentifier, ProbeReport
from repro.core.baselines.usage_ranker import rank_by_usage, rank_by_l3_misses
from repro.core.baselines.random_pick import pick_random_suspect
from repro.core.baselines.duty_cycle import DutyCycleAction, DutyCycleThrottler

__all__ = [
    "ActiveProbeIdentifier",
    "ProbeReport",
    "rank_by_usage",
    "rank_by_l3_misses",
    "pick_random_suspect",
    "DutyCycleAction",
    "DutyCycleThrottler",
]
