"""The active probing scheme the paper rejects (Section 4.2).

"An active scheme might rank-order a list of suspects based on heuristics
like CPU usage and cache miss rate, and temporarily throttle them back one
by one to see if the CPI of the victim task improves.  Unfortunately, this
simple approach may disrupt many innocent tasks.  (We'd rather the
antagonist-detection system were not the worst antagonist in the system!)"

:class:`ActiveProbeIdentifier` implements that scheme against the simulator,
with full disruption accounting: every CPU-second an innocent suspect loses
to a probe cap is charged to the identifier.  The passive-vs-active ablation
benchmark uses this to quantify the paper's objection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.simulation import ClusterSimulation
from repro.cluster.task import Task
from repro.core.baselines.usage_ranker import rank_by_usage

__all__ = ["ProbeReport", "ActiveProbeIdentifier"]


@dataclass
class ProbeReport:
    """What one active identification run did and found."""

    victim: str
    identified: Optional[str] = None
    probes_run: int = 0
    #: Tasks that were throttled during probing but were NOT the culprit.
    innocents_disrupted: list[str] = field(default_factory=list)
    #: CPU-seconds of demand denied to all probed tasks (culprit included).
    cpu_seconds_denied: float = 0.0
    #: Wall-clock simulation seconds the identification consumed.
    seconds_elapsed: int = 0


class ActiveProbeIdentifier:
    """Throttle-suspects-one-by-one identification, with disruption ledger."""

    def __init__(self, simulation: ClusterSimulation, machine: Machine,
                 probe_quota: float = 0.1, probe_seconds: int = 60,
                 improvement_fraction: float = 0.15):
        """Args:
            simulation: the running simulation (probes advance its clock).
            machine: the machine hosting the victim.
            probe_quota: CPU-sec/sec each suspect is capped to while probed.
            probe_seconds: how long each probe cap is held.
            improvement_fraction: the victim is deemed recovered when its
                mean CPI drops by this fraction below the pre-probe baseline.
        """
        if probe_seconds < 1:
            raise ValueError(f"probe_seconds must be >= 1, got {probe_seconds}")
        if not 0.0 < improvement_fraction < 1.0:
            raise ValueError("improvement_fraction must be in (0, 1), "
                             f"got {improvement_fraction}")
        if probe_quota < 0:
            raise ValueError(f"probe_quota must be >= 0, got {probe_quota}")
        self.simulation = simulation
        self.machine = machine
        self.probe_quota = probe_quota
        self.probe_seconds = probe_seconds
        self.improvement_fraction = improvement_fraction

    def _measure_victim_cpi(self, victim_name: str, seconds: int) -> float:
        """Run the simulation ``seconds`` and return the victim's mean CPI."""
        observed: list[float] = []
        for _ in range(seconds):
            results = self.simulation.step()
            result = results.get(self.machine.name)
            if result is not None and victim_name in result.cpis:
                observed.append(result.cpis[victim_name])
        if not observed:
            raise RuntimeError(
                f"victim {victim_name} produced no CPI during the probe")
        return float(np.mean(observed))

    def _demand_denied(self, suspect: Task, seconds: int) -> float:
        """Estimate CPU demand the cap denied the suspect over the probe."""
        now = self.simulation.now
        denied = 0.0
        for offset in range(seconds):
            demand = max(0.0, suspect.workload.cpu_demand(now + offset))
            denied += max(0.0, demand - self.probe_quota)
        return denied

    def identify(self, victim: Task, max_probes: int | None = None) -> ProbeReport:
        """Probe suspects hungriest-first until the victim's CPI improves.

        Each probe hard-caps one suspect for ``probe_seconds`` while the
        simulation advances, then compares the victim's mean CPI against the
        pre-probe baseline.  Innocents probed along the way are recorded.
        """
        report = ProbeReport(victim=victim.name)
        start_time = self.simulation.now
        baseline = self._measure_victim_cpi(victim.name, self.probe_seconds)

        window = (max(0, self.simulation.now - self.probe_seconds),
                  self.simulation.now)
        ranked = rank_by_usage(self.machine, victim, window)
        if max_probes is not None:
            ranked = ranked[:max_probes]

        for suspect, _usage in ranked:
            if not self.machine.has_task(suspect.name):
                continue  # departed while we were probing others
            report.probes_run += 1
            report.cpu_seconds_denied += self._demand_denied(
                suspect, self.probe_seconds)
            suspect.cgroup.apply_cap(self.probe_quota, self.simulation.now,
                                     self.probe_seconds)
            probed_cpi = self._measure_victim_cpi(victim.name, self.probe_seconds)
            suspect.cgroup.release_cap()
            if probed_cpi <= baseline * (1.0 - self.improvement_fraction):
                report.identified = suspect.name
                break
            report.innocents_disrupted.append(suspect.name)

        report.seconds_elapsed = self.simulation.now - start_time
        return report
