"""Hardware duty-cycle modulation as an alternative actuator (Section 8).

"An alternative would be to use hardware mechanisms like duty-cycle
modulation.  This offers fine-grain control of throttling (in microseconds
by hardware gating rather than milliseconds in the OS kernel scheduler),
but it is Intel-specific and operates on a per-core basis, forcing
hyper-threaded cores to the same duty-cycle level, so we chose not to use
it."

:class:`DutyCycleThrottler` mirrors the :class:`~repro.core.throttle.ThrottleController`
interface but actuates through the machine's per-core gating, so its caps
carry collateral: co-resident tasks lose CPU in proportion to the share of
cores the target occupies.  The ablation benchmark quantifies exactly the
trade the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cluster.machine import DutyCycleState, Machine
from repro.cluster.task import Task
from repro.core.config import CpiConfig, DEFAULT_CONFIG

__all__ = ["DutyCycleAction", "DutyCycleThrottler"]


@dataclass(frozen=True)
class DutyCycleAction:
    """One duty-cycle throttling decision, for the audit log."""

    taskname: str
    level: float
    core_share: float
    applied_at: int
    expires_at: int


class DutyCycleThrottler:
    """Caps antagonists by gating the cores they run on."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 min_level: float = 0.05):
        """Args:
            config: supplies the cap duration and quota targets.
            min_level: hardware modulation floor (real duty-cycle control
                bottoms out around 1/16 duty).
        """
        if not 0.0 < min_level <= 1.0:
            raise ValueError(f"min_level must be in (0, 1], got {min_level}")
        self.config = config
        self.min_level = min_level
        self.actions: list[DutyCycleAction] = []

    def _core_share(self, machine: Machine, task: Task, now: int) -> float:
        """Fraction of the machine's cores the target occupies.

        Estimated from recent usage, rounded *up* to whole cores — the
        hardware gates cores, and the hyper-thread sibling goes with it.
        """
        usage = task.cgroup.last_usage()
        if usage <= 0.0:
            usage = task.workload.cpu_demand(now)
        cores = max(1, math.ceil(usage))
        return min(1.0, cores / machine.platform.num_cores)

    def cap(self, machine: Machine, task: Task, now: int) -> DutyCycleAction:
        """Gate the task's cores so it nets the class quota.

        The level is chosen so ``usage * level ~ quota`` (like the CFS cap),
        clamped to the modulation floor.
        """
        if task.scheduling_class.value == "best-effort":
            quota = self.config.hardcap_quota_best_effort
        else:
            quota = self.config.hardcap_quota_batch
        usage = max(task.cgroup.last_usage(), 1e-6)
        level = min(1.0, max(self.min_level, quota / usage))
        share = self._core_share(machine, task, now)
        state: DutyCycleState = machine.apply_duty_cycle(
            task.name, level=level, core_share=share, now=now,
            duration=self.config.hardcap_duration)
        action = DutyCycleAction(
            taskname=task.name, level=state.level, core_share=state.core_share,
            applied_at=now, expires_at=state.expires_at)
        self.actions.append(action)
        return action

    def release(self, machine: Machine) -> None:
        """Lift the modulation early."""
        machine.clear_duty_cycle()
