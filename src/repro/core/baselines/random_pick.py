"""The null-hypothesis baseline: accuse a co-tenant at random.

Any identification scheme must beat this to be worth running; the accuracy
ablation uses it as the floor.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.task import Task

__all__ = ["pick_random_suspect"]


def pick_random_suspect(machine: Machine, victim: Task,
                        rng: np.random.Generator) -> Optional[Task]:
    """A uniformly random co-tenant from a different job, or None if alone."""
    suspects = [t for t in machine.resident_tasks()
                if t.job.name != victim.job.name]
    if not suspects:
        return None
    return suspects[int(rng.integers(len(suspects)))]
