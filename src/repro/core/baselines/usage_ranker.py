"""Passive heuristic baselines: blame the biggest consumer.

These are the heuristics the paper's hypothetical active scheme would
rank-order by ("CPU usage and cache miss rate"), used *without* the
probe step: just accuse the top consumer outright.  They are cheap and
plausible — and wrong whenever the hungriest co-tenant is an innocent
compute-bound spinner, which is exactly the failure mode the accuracy
ablation measures.
"""

from __future__ import annotations

from typing import Sequence

from repro.cluster.machine import Machine
from repro.cluster.task import Task
from repro.perf.events import CounterEvent

__all__ = ["rank_by_usage", "rank_by_l3_misses"]


def _suspects(machine: Machine, victim: Task) -> list[Task]:
    return [t for t in machine.resident_tasks() if t.job.name != victim.job.name]


def rank_by_usage(machine: Machine, victim: Task,
                  window: tuple[int, int]) -> list[tuple[Task, float]]:
    """Co-tenants ranked by mean CPU usage over ``window = (start, end)``.

    Returns (task, mean usage) pairs, hungriest first.
    """
    start, end = window
    scored = [
        (task, task.cgroup.usage_between(start, end))
        for task in _suspects(machine, victim)
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0].name))
    return scored


def rank_by_l3_misses(machine: Machine, victim: Task) -> list[tuple[Task, float]]:
    """Co-tenants ranked by cumulative L3 misses, biggest first.

    Uses lifetime counters (a real implementation would difference over a
    window; for ranking co-resident peers the cumulative totals give the
    same ordering when residency overlaps).
    """
    scored = [
        (task,
         machine.counters.counters_for(task.cgroup.name).read(
             CounterEvent.L3_MISSES))
        for task in _suspects(machine, victim)
    ]
    scored.sort(key=lambda pair: (-pair[1], pair[0].name))
    return scored
