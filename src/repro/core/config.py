"""CPI2 parameters — paper Table 2, every default verbatim.

    | Parameter                        | Value                       |
    |----------------------------------|-----------------------------|
    | Collection granularity           | task                        |
    | Sampling duration                | 10 seconds                  |
    | Sampling frequency               | every 1 minute              |
    | Aggregation granularity          | job x CPU type              |
    | Predicted CPI recalculated       | every 24 hours (goal: 1 h)  |
    | Required CPU usage               | >= 0.25 CPU-sec/sec         |
    | Outlier threshold 1              | 2 sigma                     |
    | Outlier threshold 2              | 3 violations in 5 minutes   |
    | Antagonist correlation threshold | 0.35                        |
    | Hard-capping quota               | 0.1 CPU-sec/sec             |
    | Hard-capping duration            | 5 mins                      |

Plus the aggregation-side gates from Section 3.1 (age-weighting of ~0.9/day;
no CPI management below 5 tasks or 100 samples/task) and the rate limit from
Section 4.2 (at most one correlation analysis per second per machine).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

__all__ = ["CpiConfig", "DEFAULT_CONFIG"]


@dataclass(frozen=True)
class CpiConfig:
    """All CPI2 knobs, defaulting to the paper's Table 2 values."""

    # -- sampling (Section 3.1) ------------------------------------------------
    #: Counter-collection window length, seconds.
    sampling_duration: int = 10
    #: One window starts every this many seconds.
    sampling_period: int = 60

    # -- spec aggregation (Section 3.1) ------------------------------------------
    #: Seconds between CPI-spec recalculations (24 h; the paper's goal is 1 h).
    spec_refresh_period: int = 24 * 3600
    #: Multiplier applied to the previous day's CPI before averaging with the
    #: most recent day's data ("about 0.9").
    history_age_weight: float = 0.9
    #: "We do not perform CPI management for applications with fewer than 5
    #: tasks or fewer than 100 CPI samples per task."
    min_tasks_for_spec: int = 5
    min_samples_per_task: int = 100

    # -- outlier detection (Section 4.1) -------------------------------------------
    #: Flag a sample when CPI > mean + this many stddevs.
    outlier_stddevs: float = 2.0
    #: Ignore samples from tasks using less CPU than this (CPU-sec/sec).
    min_cpu_usage: float = 0.25
    #: Anomaly = at least this many outliers ...
    anomaly_violations: int = 3
    #: ... within a window of this many seconds (5 minutes).
    anomaly_window: int = 300

    # -- antagonist identification (Section 4.2) --------------------------------------
    #: Correlation window length, seconds ("we typically use a 10-minute window").
    correlation_window: int = 600
    #: Declare an antagonist only at or above this correlation.
    correlation_threshold: float = 0.35
    #: At most one correlation analysis per this many seconds, per machine.
    analysis_min_interval: int = 1

    # -- robustness / degraded mode (not in the paper's tables; these govern
    # how the agent behaves when the fleet fabric misbehaves) -----------------
    #: Specs older than this many refresh periods are too stale to detect
    #: against; the agent suppresses anomaly detection (counted, not silent)
    #: rather than raise incidents from a model of a long-gone world.
    spec_ttl_periods: float = 3.0
    #: CPI values above this are quarantined as implausible (corrupted
    #: counter reads / wire damage) before they reach detection or specs.
    quarantine_cpi_bound: float = 1000.0
    #: Seconds between agent checkpoints of outlier-window/follow-up state;
    #: a crashed agent restarts from its latest checkpoint.
    checkpoint_interval: int = 60
    #: Seconds between aggregator spec-store snapshots; each snapshot
    #: compacts the WAL, bounding both replay time after a crash and the
    #: WAL's memory/disk footprint.
    specstore_snapshot_interval: int = 900

    # -- amelioration (Section 5) --------------------------------------------------------
    #: Hard-cap quota for ordinary batch antagonists, CPU-sec/sec.
    hardcap_quota_batch: float = 0.1
    #: Hard-cap quota for best-effort antagonists, CPU-sec/sec.
    hardcap_quota_best_effort: float = 0.01
    #: Cap duration, seconds (5 minutes).
    hardcap_duration: int = 300
    #: Whether the agent caps automatically (vs. only reporting incidents).
    auto_throttle: bool = True

    def __post_init__(self) -> None:
        positives = (
            "sampling_duration", "sampling_period", "spec_refresh_period",
            "min_tasks_for_spec", "min_samples_per_task", "anomaly_violations",
            "anomaly_window", "correlation_window", "analysis_min_interval",
            "hardcap_duration", "checkpoint_interval",
            "specstore_snapshot_interval",
        )
        for name in positives:
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        non_negatives = (
            "outlier_stddevs", "min_cpu_usage", "hardcap_quota_batch",
            "hardcap_quota_best_effort",
        )
        for name in non_negatives:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.spec_ttl_periods <= 0:
            raise ValueError(
                f"spec_ttl_periods must be > 0, got {self.spec_ttl_periods}")
        if self.quarantine_cpi_bound <= 0:
            raise ValueError("quarantine_cpi_bound must be > 0, "
                             f"got {self.quarantine_cpi_bound}")
        if not 0.0 <= self.history_age_weight <= 1.0:
            raise ValueError(
                f"history_age_weight must be in [0, 1], got {self.history_age_weight}")
        if not -1.0 <= self.correlation_threshold <= 1.0:
            raise ValueError("correlation_threshold must be in [-1, 1], "
                             f"got {self.correlation_threshold}")
        if self.sampling_period < self.sampling_duration:
            raise ValueError("sampling_period must be >= sampling_duration")

    def with_overrides(self, **overrides: Any) -> "CpiConfig":
        """A copy with the given fields replaced (ablation sweeps use this)."""
        return replace(self, **overrides)


#: The paper's defaults, shared and immutable.
DEFAULT_CONFIG = CpiConfig()
