"""Antagonist identification by passive cross-correlation (paper Section 4.2).

The paper rejects active probing ("we'd rather the antagonist-detection
system were not the worst antagonist in the system!") in favour of a passive
score between a victim's CPI series and each suspect's CPU-usage series::

    correlation(V, A) = 0
    for each time-aligned pair (u_i, c_i):
        if   c_i > c_threshold: correlation += u_i * (1 - c_threshold / c_i)
        elif c_i < c_threshold: correlation += u_i * (c_i / c_threshold - 1)

with the suspect's usage normalised so sum(u_i) = 1, giving a value in
[-1, 1]: it rises when the suspect's CPU spikes coincide with abnormally high
victim CPI and falls when the suspect runs hot while the victim is fine.

This module implements the formula verbatim plus the suspect-ranking wrapper
the agent uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

__all__ = ["antagonist_correlation", "SuspectScore", "rank_suspects",
           "top_suspects"]


def antagonist_correlation(
    victim_cpi: Sequence[float],
    suspect_usage: Sequence[float],
    cpi_threshold: float,
) -> float:
    """The paper's correlation score between one victim and one suspect.

    Args:
        victim_cpi: the victim's CPI samples ``c_1 .. c_n`` over the window.
        suspect_usage: the suspect's CPU usage ``u_1 .. u_n``, time-aligned
            with ``victim_cpi``.  Normalisation to sum 1 happens here.
        cpi_threshold: the victim's abnormal-CPI threshold (its spec's
            mean + 2 sigma point).

    Returns:
        A score in [-1, 1]; 0 when the suspect never ran during the window.

    Raises:
        ValueError: on mismatched lengths, an empty window, a non-positive
            threshold, or negative usage.
    """
    if len(victim_cpi) != len(suspect_usage):
        raise ValueError(
            f"series lengths differ: {len(victim_cpi)} != {len(suspect_usage)}")
    if not victim_cpi:
        raise ValueError("correlation window is empty")
    if cpi_threshold <= 0:
        raise ValueError(f"cpi_threshold must be positive, got {cpi_threshold}")
    total_usage = 0.0
    for u in suspect_usage:
        if u < 0:
            raise ValueError(f"usage values must be >= 0, got {u}")
        total_usage += u
    if total_usage <= 0.0:
        return 0.0
    score = 0.0
    for c, u in zip(victim_cpi, suspect_usage):
        if c < 0:
            raise ValueError(f"CPI values must be >= 0, got {c}")
        weight = u / total_usage
        if c > cpi_threshold:
            score += weight * (1.0 - cpi_threshold / c)
        elif c < cpi_threshold:
            score += weight * (c / cpi_threshold - 1.0)
    return score


def _victim_terms(victim_cpi: Sequence[float],
                  cpi_threshold: float) -> list[float | None]:
    """Precompute the per-sample victim factor of the correlation formula.

    The victim side of the score — validation of the series plus the
    ``(1 - threshold/c)`` / ``(c/threshold - 1)`` term — is identical for
    every suspect, so :func:`rank_suspects` computes it once instead of per
    suspect.  ``None`` marks samples exactly at the threshold, which the
    formula skips (contributing nothing, not a ``+ 0.0``, so accumulation
    stays bit-identical to :func:`antagonist_correlation`).
    """
    if not victim_cpi:
        raise ValueError("correlation window is empty")
    if cpi_threshold <= 0:
        raise ValueError(f"cpi_threshold must be positive, got {cpi_threshold}")
    terms: list[float | None] = []
    for c in victim_cpi:
        if c < 0:
            raise ValueError(f"CPI values must be >= 0, got {c}")
        if c > cpi_threshold:
            terms.append(1.0 - cpi_threshold / c)
        elif c < cpi_threshold:
            terms.append(c / cpi_threshold - 1.0)
        else:
            terms.append(None)
    return terms


def _correlate_with_terms(terms: list[float | None],
                          suspect_usage: Sequence[float]) -> float:
    """One suspect's score against precomputed victim terms.

    Same arithmetic, in the same order, as :func:`antagonist_correlation`.
    """
    if len(terms) != len(suspect_usage):
        raise ValueError(
            f"series lengths differ: {len(terms)} != {len(suspect_usage)}")
    total_usage = 0.0
    for u in suspect_usage:
        if u < 0:
            raise ValueError(f"usage values must be >= 0, got {u}")
        total_usage += u
    if total_usage <= 0.0:
        return 0.0
    score = 0.0
    for term, u in zip(terms, suspect_usage):
        if term is not None:
            score += (u / total_usage) * term
    return score


@dataclass(frozen=True)
class SuspectScore:
    """One suspect's correlation against a victim."""

    taskname: str
    jobname: str
    correlation: float

    def meets(self, threshold: float) -> bool:
        """Whether this suspect clears the declaration threshold."""
        return self.correlation >= threshold


def rank_suspects(
    victim_cpi: Sequence[float],
    cpi_threshold: float,
    suspects: Mapping[str, tuple[str, Sequence[float]]],
) -> list[SuspectScore]:
    """Score every suspect and rank them, highest correlation first.

    Args:
        victim_cpi: the victim's CPI series over the window.
        cpi_threshold: the victim's abnormal-CPI threshold.
        suspects: ``taskname -> (jobname, usage_series)`` for every co-tenant
            under consideration (everyone on the machine except the victim's
            own job).

    Returns:
        All suspects as :class:`SuspectScore`, sorted descending by
        correlation (ties broken by task name for determinism).

    The victim series is validated and its per-sample terms computed once,
    not once per suspect — same scores as calling
    :func:`antagonist_correlation` in a loop, at a fraction of the cost on
    machines with many co-tenants.
    """
    terms = _victim_terms(victim_cpi, cpi_threshold)
    scores = [
        SuspectScore(
            taskname=taskname,
            jobname=jobname,
            correlation=_correlate_with_terms(terms, usage),
        )
        for taskname, (jobname, usage) in suspects.items()
    ]
    scores.sort(key=lambda s: (-s.correlation, s.taskname))
    return scores


def top_suspects(scores: Iterable[SuspectScore], limit: int = 5,
                 threshold: float | None = None) -> list[SuspectScore]:
    """The first ``limit`` suspects, optionally filtered by a threshold.

    The case studies report "the top 5 suspects"; this is that view.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    ranked = sorted(scores, key=lambda s: (-s.correlation, s.taskname))
    if threshold is not None:
        ranked = [s for s in ranked if s.correlation >= threshold]
    return ranked[:limit]
