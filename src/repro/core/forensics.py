"""Offline performance forensics (the paper's Dremel stand-in).

"To allow offline analysis, we log and store data about CPIs and suspected
antagonists.  Job owners and administrators can issue SQL-like queries
against this data ... e.g., to find the most aggressive antagonists for a job
in a particular time window.  They can use this information to ask the
cluster scheduler to avoid co-locating their job and these antagonists in
the future."  (Section 5.)

:class:`ForensicsStore` keeps flattened :class:`IncidentRecord` rows and
offers a small fluent query interface (select / where / group-by / order-by /
limit) plus the two canned analyses the paper calls out: most-aggressive
antagonists, and co-location-avoidance hints for the scheduler.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable, Optional

from repro.core.agent import Incident

__all__ = ["IncidentRecord", "Query", "ForensicsStore"]


@dataclass(frozen=True)
class IncidentRecord:
    """One incident, flattened for querying."""

    incident_id: int
    time_seconds: int
    machine: str
    victim_job: str
    victim_task: str
    victim_cpi: float
    cpi_threshold: float
    action: str
    antagonist_job: Optional[str]
    antagonist_task: Optional[str]
    correlation: Optional[float]
    recovered: Optional[bool]
    relative_cpi: Optional[float]

    @classmethod
    def from_incident(cls, incident: Incident) -> "IncidentRecord":
        """Flatten a live :class:`~repro.core.agent.Incident`."""
        target = incident.decision.target
        score = incident.decision.score
        return cls(
            incident_id=incident.incident_id,
            time_seconds=incident.time_seconds,
            machine=incident.machine,
            victim_job=incident.victim_jobname,
            victim_task=incident.victim_taskname,
            victim_cpi=incident.victim_cpi,
            cpi_threshold=incident.cpi_threshold,
            action=incident.decision.action.value,
            antagonist_job=target.job.name if target is not None else None,
            antagonist_task=target.name if target is not None else None,
            correlation=score.correlation if score is not None else None,
            recovered=incident.recovered,
            relative_cpi=incident.relative_cpi,
        )


class Query:
    """A small fluent query over incident records.

    Example::

        (store.query()
              .where(victim_job="websearch-leaf")
              .where_fn(lambda r: r.correlation and r.correlation > 0.4)
              .order_by("correlation", descending=True)
              .limit(5)
              .run())
    """

    def __init__(self, rows: Iterable[IncidentRecord]):
        self._rows = list(rows)
        self._predicates: list[Callable[[IncidentRecord], bool]] = []
        self._order_key: Optional[str] = None
        self._order_desc = False
        self._limit: Optional[int] = None

    def where(self, **equals: Any) -> "Query":
        """Keep rows whose named fields equal the given values."""
        for name in equals:
            if name not in IncidentRecord.__dataclass_fields__:
                raise ValueError(f"unknown field {name!r}")

        def predicate(row: IncidentRecord) -> bool:
            return all(getattr(row, k) == v for k, v in equals.items())

        self._predicates.append(predicate)
        return self

    def where_fn(self, fn: Callable[[IncidentRecord], bool]) -> "Query":
        """Keep rows for which ``fn`` returns True."""
        self._predicates.append(fn)
        return self

    def between(self, start: int, end: int) -> "Query":
        """Keep rows with ``start <= time_seconds < end``."""
        if end <= start:
            raise ValueError(f"empty time range [{start}, {end})")
        return self.where_fn(lambda r: start <= r.time_seconds < end)

    def order_by(self, field: str, descending: bool = False) -> "Query":
        """Sort by one field; ``None`` values sort last."""
        if field not in IncidentRecord.__dataclass_fields__:
            raise ValueError(f"unknown field {field!r}")
        self._order_key = field
        self._order_desc = descending
        return self

    def limit(self, n: int) -> "Query":
        """Keep at most ``n`` rows."""
        if n < 0:
            raise ValueError(f"limit must be >= 0, got {n}")
        self._limit = n
        return self

    def run(self) -> list[IncidentRecord]:
        """Execute and return the matching rows."""
        rows = [r for r in self._rows
                if all(p(r) for p in self._predicates)]
        if self._order_key is not None:
            key = self._order_key
            present = [r for r in rows if getattr(r, key) is not None]
            missing = [r for r in rows if getattr(r, key) is None]
            present.sort(key=lambda r: getattr(r, key), reverse=self._order_desc)
            rows = present + missing  # None sorts last regardless of direction
        if self._limit is not None:
            rows = rows[:self._limit]
        return rows

    def group_count(self, field: str) -> dict[Any, int]:
        """Row counts grouped by one field's value."""
        if field not in IncidentRecord.__dataclass_fields__:
            raise ValueError(f"unknown field {field!r}")
        counts: dict[Any, int] = {}
        for row in self.run():
            value = getattr(row, field)
            counts[value] = counts.get(value, 0) + 1
        return counts

    #: Aggregations usable with :meth:`group_agg`.
    AGGREGATES: dict[str, Callable[[list[float]], float]] = {
        "mean": lambda xs: sum(xs) / len(xs),
        "sum": sum,
        "min": min,
        "max": max,
        "count": len,
        "median": lambda xs: float(sorted(xs)[len(xs) // 2]
                                   if len(xs) % 2
                                   else (sorted(xs)[len(xs) // 2 - 1]
                                         + sorted(xs)[len(xs) // 2]) / 2.0),
    }

    def group_agg(self, group_field: str, value_field: str,
                  agg: str = "mean") -> dict[Any, float]:
        """SQL's ``SELECT group, AGG(value) ... GROUP BY group``.

        Rows whose ``value_field`` is ``None`` are skipped; groups with no
        usable rows are omitted.

        Example — mean relative CPI per antagonist job::

            store.query().where(action="throttle").group_agg(
                "antagonist_job", "relative_cpi", "mean")
        """
        for field in (group_field, value_field):
            if field not in IncidentRecord.__dataclass_fields__:
                raise ValueError(f"unknown field {field!r}")
        try:
            fn = self.AGGREGATES[agg]
        except KeyError:
            raise ValueError(f"unknown aggregate {agg!r}; expected one of "
                             f"{sorted(self.AGGREGATES)}") from None
        grouped: dict[Any, list[float]] = {}
        for row in self.run():
            value = getattr(row, value_field)
            if value is None:
                continue
            grouped.setdefault(getattr(row, group_field), []).append(value)
        return {key: float(fn(values)) for key, values in grouped.items()}


class ForensicsStore:
    """The incident log and its query/analysis surface."""

    def __init__(self) -> None:
        self._records: list[IncidentRecord] = []

    # -- ingest ------------------------------------------------------------------

    def record(self, incident: Incident) -> IncidentRecord:
        """Log one incident (the agents' incident sink)."""
        row = IncidentRecord.from_incident(incident)
        self._records.append(row)
        return row

    def add_record(self, row: IncidentRecord) -> None:
        """Append an already-flattened record (bulk loads, merges)."""
        self._records.append(row)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[IncidentRecord]:
        """All records (a copy)."""
        return list(self._records)

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as plain dicts, for export."""
        return [asdict(r) for r in self._records]

    # -- queries --------------------------------------------------------------------

    def query(self) -> Query:
        """Start a fluent query over all records."""
        return Query(self._records)

    def top_antagonists(self, victim_job: Optional[str] = None,
                        start: Optional[int] = None, end: Optional[int] = None,
                        limit: int = 10) -> list[tuple[str, int]]:
        """The most-blamed antagonist jobs, optionally per victim and window.

        This is the paper's "find the most aggressive antagonists for a job
        in a particular time window".
        """
        query = self.query().where_fn(lambda r: r.antagonist_job is not None)
        if victim_job is not None:
            query = query.where(victim_job=victim_job)
        if start is not None and end is not None:
            query = query.between(start, end)
        counts = query.group_count("antagonist_job")
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:limit]

    def scheduler_hints(self, min_incidents: int = 2) -> list[tuple[str, str]]:
        """(victim_job, antagonist_job) pairs worth anti-affinitising.

        A pair qualifies once it has accumulated ``min_incidents`` incidents.
        Feeding these to :meth:`ClusterScheduler.avoid_colocation` closes the
        loop the paper leaves as future work ("we hope to provide this
        information to the scheduler automatically").
        """
        if min_incidents < 1:
            raise ValueError(f"min_incidents must be >= 1, got {min_incidents}")
        pair_counts: dict[tuple[str, str], int] = {}
        for row in self._records:
            if row.antagonist_job is None:
                continue
            pair = (row.victim_job, row.antagonist_job)
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
        return sorted(pair for pair, count in pair_counts.items()
                      if count >= min_incidents)
