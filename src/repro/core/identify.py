"""Matrix antagonist identification: Section 4.2 for all suspects at once.

:func:`~repro.core.correlation.rank_suspects` is the scalar reference — one
Python loop per suspect, and (upstream of it) one
:meth:`~repro.cluster.cgroup.Cgroup.usage_between` deque scan per suspect
per victim timestamp.  At 100 co-tenants and a 30-point victim series that
is ~3,000 deque scans of up to 900 entries each, per analysis.  This module
computes the same ranking from columnar data:

* :func:`suspect_usage_matrix` reads each suspect's per-second usage as one
  contiguous slice of the cgroup's ring ledger
  (:meth:`~repro.cluster.cgroup.Cgroup.usage_window_view`) and reduces all
  ``S x T`` sampling windows together.
* :func:`rank_suspects_matrix` evaluates the paper's asymmetric correlation
  formula over the whole ``(S, T)`` usage matrix in one vectorized pass.

Both are **bit-identical** to the scalar reference, which the golden-parity
suite (``tests/test_analysis_plane.py``) pins via ``float.hex()``.  The
rules that make that possible (see ``docs/performance.md``):

* Window sums and correlation accumulations run **sequentially along the
  time axis** (a Python loop of vectorized adds across the suspect axis) —
  numpy's pairwise ``.sum()`` and prefix-sum differences round differently
  from the scalar running sum and would break parity.
* Seconds with no recorded usage are zero-filled; ``x + 0.0 == x`` bitwise
  because usage is never ``-0.0``.
* Victim samples exactly at the threshold are *skipped* (no ``+ 0.0``
  term), via the shared :func:`~repro.core.correlation._victim_terms`.

The engine is selected by ``REPRO_ANALYSIS_ENGINE`` (``vector`` default,
``scalar`` forces the reference everywhere), mirroring
``REPRO_TICK_ENGINE`` for the simulation plane.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

import numpy as np

from repro.core.correlation import (SuspectScore, _victim_terms,
                                    rank_suspects)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cgroup import Cgroup
    from repro.cluster.task import Task

__all__ = ["ANALYSIS_ENGINES", "ANALYSIS_ENGINE_ENV",
           "resolve_analysis_engine", "suspect_usage_matrix",
           "rank_suspects_matrix", "rank_cotenant_suspects"]

#: Environment variable selecting the identification engine.
ANALYSIS_ENGINE_ENV = "REPRO_ANALYSIS_ENGINE"

#: Valid engine names: ``vector`` (default) and the scalar reference.
ANALYSIS_ENGINES = ("vector", "scalar")


def resolve_analysis_engine(explicit: Optional[str] = None) -> str:
    """The analysis engine to use: explicit choice, else the environment.

    Raises:
        ValueError: for a name outside :data:`ANALYSIS_ENGINES`.
    """
    engine = explicit or os.environ.get(ANALYSIS_ENGINE_ENV) or "vector"
    if engine not in ANALYSIS_ENGINES:
        raise ValueError(
            f"unknown analysis engine {engine!r}; valid: "
            f"{', '.join(ANALYSIS_ENGINES)}")
    return engine


def suspect_usage_matrix(cgroups: Sequence["Cgroup"],
                         timestamps: Sequence[int],
                         duration: int) -> np.ndarray:
    """Window-mean CPU usage for every suspect at every victim timestamp.

    Args:
        cgroups: one cgroup per suspect (row order preserved).
        timestamps: the victim's sample timestamps (seconds); entry ``t``
            covers the half-open window ``[t - duration, t)``.
        duration: the sampling window length in seconds (>= 1).

    Returns:
        An ``(S, T)`` float64 matrix where ``[s, k]`` equals
        ``cgroups[s].usage_between(timestamps[k] - duration,
        timestamps[k])`` bit-for-bit.

    Cgroups whose ring ledger is unavailable (non-consecutive charges;
    see :meth:`~repro.cluster.cgroup.Cgroup.usage_window_view`) fall back
    to the deque scan row by row, so the result is always exact.
    """
    if duration < 1:
        raise ValueError(f"duration must be >= 1, got {duration}")
    ts = np.asarray(timestamps, dtype=np.int64)
    n_suspects = len(cgroups)
    n_points = int(ts.size)
    means = np.empty((n_suspects, n_points))
    if n_points == 0 or n_suspects == 0:
        return means
    lo = int(ts.min()) - duration
    hi = int(ts.max())
    slab_rows: list[int] = []
    slab_views: list[np.ndarray] = []
    for s, cgroup in enumerate(cgroups):
        view = cgroup.usage_window_view(lo, hi)
        if view is None:
            means[s] = [cgroup.usage_between(int(t) - duration, int(t))
                        for t in ts.tolist()]
        else:
            slab_rows.append(s)
            slab_views.append(view)
    if slab_views:
        slab = np.stack(slab_views)  # (K, hi - lo), seconds lo .. hi-1
        # Gather each window's seconds: columns[k, j] is the slab column of
        # second j of window k.
        columns = (ts - duration - lo)[:, None] + np.arange(duration)[None, :]
        windows = slab[:, columns]  # (K, T, duration)
        # Sequential accumulation along the time axis — NOT .sum(), whose
        # pairwise rounding differs from the scalar running sum.
        acc = windows[:, :, 0].copy()
        for j in range(1, duration):
            acc += windows[:, :, j]
        acc /= duration
        means[slab_rows] = acc
    return means


def rank_suspects_matrix(
    victim_cpi: Sequence[float],
    cpi_threshold: float,
    suspects: Sequence[tuple[str, str]],
    usage: np.ndarray,
) -> list[SuspectScore]:
    """Score and rank all suspects from an ``(S, T)`` usage matrix.

    Args:
        victim_cpi: the victim's CPI series over the window (length ``T``).
        cpi_threshold: the victim's abnormal-CPI threshold.
        suspects: ``(taskname, jobname)`` per row of ``usage``.
        usage: suspect-by-timestamp window-mean usage, as from
            :func:`suspect_usage_matrix`.

    Returns:
        The same :class:`SuspectScore` list, in the same order, with the
        same float bits, as :func:`~repro.core.correlation.rank_suspects`
        over the equivalent per-suspect series.

    Raises:
        ValueError: on an empty window, a non-positive threshold, negative
            CPI or usage values, or a shape mismatch.
    """
    terms = _victim_terms(victim_cpi, cpi_threshold)
    n_suspects = len(suspects)
    if n_suspects == 0:
        return []
    usage = np.asarray(usage, dtype=np.float64)
    if usage.shape != (n_suspects, len(terms)):
        raise ValueError(
            f"usage matrix shape {usage.shape} != "
            f"({n_suspects}, {len(terms)})")
    negative = usage < 0.0
    if negative.any():
        # argwhere is row-major: first offending suspect, then first
        # offending sample — the order the scalar loops validate in.
        row, col = np.argwhere(negative)[0]
        raise ValueError(
            f"usage values must be >= 0, got {float(usage[row, col])}")
    # Per-suspect total usage: sequential along the time axis so the
    # normalisation denominator matches the scalar running sum bit-for-bit.
    totals = usage[:, 0].copy()
    for j in range(1, usage.shape[1]):
        totals += usage[:, j]
    # The scalar reference short-circuits to 0.0 only for totals <= 0.0;
    # a NaN total (NaN usage) flows through the arithmetic there, so it
    # must flow through here too — mask exactly the <= 0.0 rows.
    zero_rows = totals <= 0.0
    denominator = np.where(zero_rows, 1.0, totals)
    scores = np.zeros(n_suspects)
    for j, term in enumerate(terms):
        if term is None:
            continue  # exactly at threshold: skipped, not + 0.0
        scores += (usage[:, j] / denominator) * term
    if zero_rows.any():
        scores[zero_rows] = 0.0
    ranked = [
        SuspectScore(taskname=taskname, jobname=jobname, correlation=score)
        for (taskname, jobname), score in zip(suspects, scores.tolist())
    ]
    ranked.sort(key=lambda s: (-s.correlation, s.taskname))
    return ranked


def rank_cotenant_suspects(
    tasks: Iterable["Task"],
    victim_jobname: str,
    victim_cpi: Sequence[float],
    timestamps: Sequence[int],
    cpi_threshold: float,
    duration: int,
    engine: str = "vector",
) -> tuple[list[SuspectScore], dict[str, "Task"]]:
    """Rank every co-tenant of a victim's machine, engine-selectable.

    The shared identification front end for the agent and the trial
    harness: filters out the victim's job-mates ("never suspect the
    victim's own job-mates"), gathers each remaining task's usage aligned
    to the victim's sample windows, and ranks.  ``engine="scalar"`` runs
    the reference :func:`~repro.core.correlation.rank_suspects` loop;
    ``"vector"`` the matrix path.  Both return identical rankings.

    Returns:
        ``(scores, suspect_tasks)`` where ``suspect_tasks`` maps taskname
        to the live task for every co-tenant considered (empty when the
        victim has no co-tenants from other jobs).
    """
    cotenants = [task for task in tasks if task.job.name != victim_jobname]
    suspect_tasks = {task.name: task for task in cotenants}
    if not cotenants:
        return [], suspect_tasks
    if engine == "scalar":
        suspects = {
            task.name: (
                task.job.name,
                [task.cgroup.usage_between(t - duration, t)
                 for t in timestamps],
            )
            for task in cotenants
        }
        return rank_suspects(victim_cpi, cpi_threshold, suspects), suspect_tasks
    usage = suspect_usage_matrix([task.cgroup for task in cotenants],
                                 timestamps, duration)
    labels = [(task.name, task.job.name) for task in cotenants]
    return (rank_suspects_matrix(victim_cpi, cpi_threshold, labels, usage),
            suspect_tasks)
