"""The system-operator interface (paper Section 5).

"We provide an interface to system operators so they can hard-cap suspects,
and turn CPI protection on or off for an entire cluster.  Since our
applications are written to tolerate failures, an operator may choose to
kill an antagonist task and restart it somewhere else if it is a persistent
offender — our version of task migration."

:class:`OperatorConsole` wraps a deployed :class:`~repro.core.pipeline.CpiPipeline`
with exactly those controls, plus the status view an on-call engineer wants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cluster.machine import Machine
from repro.cluster.task import Task
from repro.core.pipeline import CpiPipeline
from repro.core.throttle import CapAction

__all__ = ["ClusterStatus", "OperatorConsole"]


@dataclass(frozen=True)
class ClusterStatus:
    """A point-in-time summary of CPI2 across the cluster."""

    protection_enabled: bool
    machines: int
    active_caps: int
    incidents_total: int
    incidents_open: int
    anomalies_seen: int


class OperatorConsole:
    """Manual controls over a running CPI2 deployment."""

    def __init__(self, pipeline: CpiPipeline):
        self.pipeline = pipeline
        self._protection_enabled = pipeline.config.auto_throttle

    # -- cluster-wide protection switch ---------------------------------------

    @property
    def protection_enabled(self) -> bool:
        """Whether agents may hard-cap automatically."""
        return self._protection_enabled

    def disable_protection(self) -> None:
        """Cluster-wide off switch: agents keep detecting and reporting but
        stop capping (the paper's conservative-rollout mode)."""
        self._set_auto_throttle(False)

    def enable_protection(self) -> None:
        """Re-enable automatic capping cluster-wide."""
        self._set_auto_throttle(True)

    def _set_auto_throttle(self, enabled: bool) -> None:
        self._protection_enabled = enabled
        for agent in self.pipeline.agents.values():
            agent.policy.config = agent.policy.config.with_overrides(
                auto_throttle=enabled)

    # -- manual actions ----------------------------------------------------------

    def _locate(self, taskname: str) -> tuple[Machine, Task]:
        for machine in self.pipeline.simulation.machines.values():
            if machine.has_task(taskname):
                return machine, machine.get_task(taskname)
        raise KeyError(f"no running task named {taskname!r} in the cluster")

    def cap_task(self, taskname: str, quota: Optional[float] = None,
                 duration: Optional[int] = None) -> CapAction:
        """Hard-cap a suspect by hand (the case-study workflow).

        Uses the class-appropriate quota and the configured 5-minute duration
        unless overridden.  The action lands in the machine agent's audit
        trail like any automatic cap.
        """
        machine, task = self._locate(taskname)
        agent = self.pipeline.agents[machine.name]
        now = self.pipeline.simulation.now
        return agent.throttler.cap(task, now, quota=quota, duration=duration,
                                   victim_taskname=None, correlation=None)

    def release_task(self, taskname: str) -> None:
        """Lift a cap early."""
        machine, task = self._locate(taskname)
        self.pipeline.agents[machine.name].throttler.release(task)

    def kill_and_restart(self, taskname: str) -> str:
        """Kill a persistent offender and restart it on another machine.

        Returns the new machine's name.

        Raises:
            KeyError: if the task is not running anywhere.
            repro.cluster.scheduler.PlacementError: if no other machine can
                take it (the task is left where it was).
        """
        _machine, task = self._locate(taskname)
        new_machine = self.pipeline.simulation.scheduler.migrate_task(task)
        return new_machine.name

    # -- visibility ------------------------------------------------------------------

    def status(self) -> ClusterStatus:
        """The on-call summary."""
        now = self.pipeline.simulation.now
        agents = self.pipeline.agents.values()
        incidents = self.pipeline.all_incidents()
        open_incidents = sum(
            1 for i in incidents
            if i.decision.action.value == "throttle" and i.recovered is None)
        return ClusterStatus(
            protection_enabled=self._protection_enabled,
            machines=len(self.pipeline.agents),
            active_caps=sum(len(a.throttler.active_caps(now))
                            for a in agents),
            incidents_total=len(incidents),
            incidents_open=open_incidents,
            anomalies_seen=sum(a.anomalies_seen for a in agents),
        )

    def worst_offenders(self, limit: int = 5) -> list[tuple[str, int]]:
        """The most-blamed antagonist jobs so far (forensics passthrough)."""
        return self.pipeline.forensics.top_antagonists(limit=limit)
