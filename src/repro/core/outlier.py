"""Local CPI outlier and anomaly detection (paper Section 4.1).

"A CPI measurement is flagged as an outlier if it is larger than the 2-sigma
point on the predicted CPI distribution ... We ignore CPI measurements from
tasks that use less than 0.25 CPU-sec/sec since CPI sometimes increases
significantly if CPU usage drops to near zero.  To reduce occasional false
alarms from noisy data, a task is considered to be suffering anomalous
behavior only if it is flagged as an outlier at least 3 times in a 5 minute
window."

Detection is *local*: every machine's agent runs its own
:class:`OutlierDetector` against the specs the aggregator pushed down, "which
enables rapid responses and increases scalability".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.records import CpiSample, CpiSpec
from repro.obs import Observability

__all__ = ["OutlierVerdict", "AnomalyEvent", "OutlierDetector"]


@dataclass(frozen=True)
class OutlierVerdict:
    """What the detector concluded about one sample."""

    #: The sample was above threshold (and above the usage gate).
    flagged: bool
    #: The sample was skipped entirely (usage gate or missing spec).
    skipped: bool
    #: Why it was skipped, if it was ("low-usage" or "no-spec").
    skip_reason: Optional[str] = None
    #: Outlier flags for this task currently inside the anomaly window.
    violations_in_window: int = 0
    #: The threshold used, if a spec was available.
    threshold: Optional[float] = None


@dataclass(frozen=True)
class AnomalyEvent:
    """A task crossed the 3-in-5-minutes line: it is suffering interference."""

    taskname: str
    jobname: str
    platforminfo: str
    time_seconds: int
    cpi: float
    threshold: float
    violations: int
    #: When the oldest in-window outlier flag landed — the start of the
    #: detection episode, used as the trace's ``detect`` span start.
    first_flag_seconds: Optional[int] = None


class OutlierDetector:
    """Per-machine streak tracker implementing the Section 4.1 rules."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 obs: Optional[Observability] = None):
        self.config = config
        #: Per-task timestamps (seconds) of recent outlier flags.
        self._flags: dict[str, deque[int]] = {}
        self.samples_seen = 0
        self.samples_skipped_low_usage = 0
        self.samples_skipped_no_spec = 0
        # Instruments are resolved once here so the per-sample path below
        # pays a plain attribute increment, nothing more.
        metrics = (obs.metrics if obs is not None else None)
        self._c_seen = metrics.counter("detector_samples_seen") if metrics else None
        self._c_no_spec = (metrics.counter("detector_samples_skipped",
                                           reason="no_spec")
                           if metrics else None)
        self._c_low_usage = (metrics.counter("detector_samples_skipped",
                                             reason="low_usage")
                             if metrics else None)
        self._c_flagged = (metrics.counter("detector_outliers_flagged")
                           if metrics else None)

    def observe(self, sample: CpiSample, spec: Optional[CpiSpec]
                ) -> tuple[OutlierVerdict, Optional[AnomalyEvent]]:
        """Process one sample; returns the verdict and an anomaly, if declared.

        An anomaly is (re-)declared on every flagged sample at or beyond the
        violation count — the caller's rate-limit on antagonist analysis is
        what stops that from causing repeated work.
        """
        self.samples_seen += 1
        if self._c_seen is not None:
            self._c_seen.inc()
        if spec is None:
            self.samples_skipped_no_spec += 1
            if self._c_no_spec is not None:
                self._c_no_spec.inc()
            return OutlierVerdict(flagged=False, skipped=True,
                                  skip_reason="no-spec"), None
        threshold = spec.outlier_threshold(self.config.outlier_stddevs)
        if sample.cpu_usage < self.config.min_cpu_usage:
            self.samples_skipped_low_usage += 1
            if self._c_low_usage is not None:
                self._c_low_usage.inc()
            return OutlierVerdict(flagged=False, skipped=True,
                                  skip_reason="low-usage",
                                  threshold=threshold), None
        t = int(sample.timestamp_seconds)
        flags = self._flags.get(sample.taskname)
        if flags is None:
            flags = deque()
            self._flags[sample.taskname] = flags
        # Expire flags older than the anomaly window (inclusive: a flag
        # exactly window-seconds old still counts).
        horizon = t - self.config.anomaly_window
        while flags and flags[0] < horizon:
            flags.popleft()
        if sample.cpi <= threshold:
            return OutlierVerdict(flagged=False, skipped=False,
                                  violations_in_window=len(flags),
                                  threshold=threshold), None
        flags.append(t)
        if self._c_flagged is not None:
            self._c_flagged.inc()
        verdict = OutlierVerdict(flagged=True, skipped=False,
                                 violations_in_window=len(flags),
                                 threshold=threshold)
        anomaly: Optional[AnomalyEvent] = None
        if len(flags) >= self.config.anomaly_violations:
            anomaly = AnomalyEvent(
                taskname=sample.taskname,
                jobname=sample.jobname,
                platforminfo=sample.platforminfo,
                time_seconds=t,
                cpi=sample.cpi,
                threshold=threshold,
                violations=len(flags),
                first_flag_seconds=flags[0],
            )
        return verdict, anomaly

    def forget_task(self, taskname: str) -> None:
        """Drop state for a departed task."""
        self._flags.pop(taskname, None)

    # -- checkpoint support (agent crash/recovery) ------------------------------

    def export_flags(self) -> dict[str, list[int]]:
        """Per-task in-window outlier flag timestamps, JSON-able.

        This is the detector's only state that matters across an agent
        restart: losing a streak mid-anomaly would silently re-arm the
        3-in-5-minutes rule and delay detection.
        """
        return {name: list(flags)
                for name, flags in self._flags.items() if flags}

    def restore_flags(self, flags: dict[str, list[int]]) -> None:
        """Replace streak state from an :meth:`export_flags` snapshot."""
        self._flags = {name: deque(times) for name, times in flags.items()}

    def violations_for(self, taskname: str) -> int:
        """Current in-window outlier count for a task (0 if unknown)."""
        flags = self._flags.get(taskname)
        return len(flags) if flags else 0
