"""Local CPI outlier and anomaly detection (paper Section 4.1).

"A CPI measurement is flagged as an outlier if it is larger than the 2-sigma
point on the predicted CPI distribution ... We ignore CPI measurements from
tasks that use less than 0.25 CPU-sec/sec since CPI sometimes increases
significantly if CPU usage drops to near zero.  To reduce occasional false
alarms from noisy data, a task is considered to be suffering anomalous
behavior only if it is flagged as an outlier at least 3 times in a 5 minute
window."

Detection is *local*: every machine's agent runs its own
:class:`OutlierDetector` against the specs the aggregator pushed down, "which
enables rapid responses and increases scalability".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.records import CpiSample, CpiSpec, SpecKey
from repro.obs import Observability

__all__ = ["OutlierVerdict", "AnomalyEvent", "OutlierDetector"]

#: Cached-verdict dictionaries are cleared past this size; thresholds only
#: churn when specs are republished, so in practice the caches stay tiny.
_VERDICT_CACHE_LIMIT = 512


@dataclass(frozen=True)
class OutlierVerdict:
    """What the detector concluded about one sample."""

    #: The sample was above threshold (and above the usage gate).
    flagged: bool
    #: The sample was skipped entirely (usage gate or missing spec).
    skipped: bool
    #: Why it was skipped, if it was ("low-usage" or "no-spec").
    skip_reason: Optional[str] = None
    #: Outlier flags for this task currently inside the anomaly window.
    violations_in_window: int = 0
    #: The threshold used, if a spec was available.
    threshold: Optional[float] = None


@dataclass(frozen=True)
class AnomalyEvent:
    """A task crossed the 3-in-5-minutes line: it is suffering interference."""

    taskname: str
    jobname: str
    platforminfo: str
    time_seconds: int
    cpi: float
    threshold: float
    violations: int
    #: When the oldest in-window outlier flag landed — the start of the
    #: detection episode, used as the trace's ``detect`` span start.
    first_flag_seconds: Optional[int] = None


class OutlierDetector:
    """Per-machine streak tracker implementing the Section 4.1 rules."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 obs: Optional[Observability] = None):
        self.config = config
        #: Per-task timestamps (seconds) of recent outlier flags.
        self._flags: dict[str, deque[int]] = {}
        self.samples_seen = 0
        self.samples_skipped_low_usage = 0
        self.samples_skipped_no_spec = 0
        # Instruments are resolved once here so the per-sample path below
        # pays a plain attribute increment, nothing more.
        metrics = (obs.metrics if obs is not None else None)
        self._c_seen = metrics.counter("detector_samples_seen") if metrics else None
        self._c_no_spec = (metrics.counter("detector_samples_skipped",
                                           reason="no_spec")
                           if metrics else None)
        self._c_low_usage = (metrics.counter("detector_samples_skipped",
                                             reason="low_usage")
                             if metrics else None)
        self._c_flagged = (metrics.counter("detector_outliers_flagged")
                           if metrics else None)
        # Verdict caches: the overwhelmingly common outcomes (skipped, or
        # clean below threshold) are immutable reads for callers, so the
        # per-sample path hands out shared instances instead of allocating
        # a fresh frozen dataclass every observation.
        self._verdict_no_spec = OutlierVerdict(flagged=False, skipped=True,
                                               skip_reason="no-spec")
        self._verdicts_low_usage: dict[float, OutlierVerdict] = {}
        self._verdicts_clean: dict[tuple[int, float], OutlierVerdict] = {}

    def observe(self, sample: CpiSample, spec: Optional[CpiSpec]
                ) -> tuple[OutlierVerdict, Optional[AnomalyEvent]]:
        """Process one sample; returns the verdict and an anomaly, if declared.

        An anomaly is (re-)declared on every flagged sample at or beyond the
        violation count — the caller's rate-limit on antagonist analysis is
        what stops that from causing repeated work.
        """
        self.samples_seen += 1
        if self._c_seen is not None:
            self._c_seen.inc()
        if spec is None:
            self.samples_skipped_no_spec += 1
            if self._c_no_spec is not None:
                self._c_no_spec.inc()
            return self._verdict_no_spec, None
        threshold = spec.outlier_threshold(self.config.outlier_stddevs)
        if sample.cpu_usage < self.config.min_cpu_usage:
            self.samples_skipped_low_usage += 1
            if self._c_low_usage is not None:
                self._c_low_usage.inc()
            verdict = self._verdicts_low_usage.get(threshold)
            if verdict is None:
                if len(self._verdicts_low_usage) >= _VERDICT_CACHE_LIMIT:
                    self._verdicts_low_usage.clear()
                verdict = OutlierVerdict(flagged=False, skipped=True,
                                         skip_reason="low-usage",
                                         threshold=threshold)
                self._verdicts_low_usage[threshold] = verdict
            return verdict, None
        t = int(sample.timestamp_seconds)
        flags = self._flags.get(sample.taskname)
        if flags is None:
            flags = deque()
            self._flags[sample.taskname] = flags
        # Expire flags older than the anomaly window (inclusive: a flag
        # exactly window-seconds old still counts).
        horizon = t - self.config.anomaly_window
        while flags and flags[0] < horizon:
            flags.popleft()
        if sample.cpi <= threshold:
            key = (len(flags), threshold)
            verdict = self._verdicts_clean.get(key)
            if verdict is None:
                if len(self._verdicts_clean) >= _VERDICT_CACHE_LIMIT:
                    self._verdicts_clean.clear()
                verdict = OutlierVerdict(flagged=False, skipped=False,
                                         violations_in_window=len(flags),
                                         threshold=threshold)
                self._verdicts_clean[key] = verdict
            return verdict, None
        flags.append(t)
        if self._c_flagged is not None:
            self._c_flagged.inc()
        verdict = OutlierVerdict(flagged=True, skipped=False,
                                 violations_in_window=len(flags),
                                 threshold=threshold)
        anomaly: Optional[AnomalyEvent] = None
        if len(flags) >= self.config.anomaly_violations:
            anomaly = AnomalyEvent(
                taskname=sample.taskname,
                jobname=sample.jobname,
                platforminfo=sample.platforminfo,
                time_seconds=t,
                cpi=sample.cpi,
                threshold=threshold,
                violations=len(flags),
                first_flag_seconds=flags[0],
            )
        return verdict, anomaly

    def observe_batch(
        self,
        timestamps_sec: np.ndarray,
        cpi: np.ndarray,
        usage: np.ndarray,
        thresholds: np.ndarray,
        has_spec: np.ndarray,
        task_code: np.ndarray,
        tasknames: Sequence[str],
        key_code: np.ndarray,
        keys: Sequence[SpecKey],
    ) -> list[tuple[int, AnomalyEvent]]:
        """Vectorized :meth:`observe` over one closed sampling window.

        The spec lookup, usage gate, and threshold comparison run as array
        masks over the whole batch; only rows that actually touch streak
        state (flagged outliers, plus below-threshold samples of tasks
        with live flags, whose expiry the scalar path would advance) fall
        into the sequential per-row loop.  Trajectory- and counter-
        identical to calling :meth:`observe` per sample in row order; no
        per-sample verdicts are materialised.

        Args:
            timestamps_sec: truncated-second timestamps per row (int64).
            cpi, usage: per-row CPI and CPU usage (float64).
            thresholds: per-row outlier threshold (valid where
                ``has_spec``; unread elsewhere).
            has_spec: per-row "a spec is published for this key".
            task_code: per-row index into ``tasknames``.
            tasknames: the batch's taskname table.
            key_code: per-row index into ``keys``.
            keys: the batch's aggregation-key table (jobname/platforminfo
                for the emitted anomalies).

        Returns:
            ``(row, anomaly)`` pairs in row order, one per declared
            anomaly — the exact events the scalar loop would declare.
        """
        n = len(cpi)
        self.samples_seen += n
        if self._c_seen is not None and n:
            self._c_seen.inc(n)
        no_spec = ~has_spec
        skipped_no_spec = int(no_spec.sum())
        if skipped_no_spec:
            self.samples_skipped_no_spec += skipped_no_spec
            if self._c_no_spec is not None:
                self._c_no_spec.inc(skipped_no_spec)
        low_usage = has_spec & (usage < self.config.min_cpu_usage)
        skipped_low_usage = int(low_usage.sum())
        if skipped_low_usage:
            self.samples_skipped_low_usage += skipped_low_usage
            if self._c_low_usage is not None:
                self._c_low_usage.inc(skipped_low_usage)
        active = has_spec & ~low_usage
        # ``~(cpi <= thr)`` rather than ``cpi > thr``: identical for real
        # thresholds and preserves the scalar path's behaviour for a NaN
        # threshold (nothing compares <= NaN, so the sample flags).
        flagged = active & ~(cpi <= thresholds)
        flagged_count = int(flagged.sum())
        if flagged_count and self._c_flagged is not None:
            self._c_flagged.inc(flagged_count)
        anomalies: list[tuple[int, AnomalyEvent]] = []
        if not active.any():
            return anomalies
        # Rows that must replay sequentially: every flagged sample, plus
        # active samples of any task that is either already tracked or
        # becomes flagged in this batch (their expiry must advance exactly
        # as per-sample observation would advance it).
        n_tasks = len(tasknames)
        touched = np.zeros(n_tasks, dtype=bool)
        for code, name in enumerate(tasknames):
            if self._flags.get(name):
                touched[code] = True
        if flagged_count:
            touched[task_code[flagged]] = True
        work = active & (flagged | touched[task_code])
        if not work.any():
            return anomalies
        anomaly_window = self.config.anomaly_window
        anomaly_violations = self.config.anomaly_violations
        flagged_list = flagged.tolist()
        for row in np.flatnonzero(work).tolist():
            taskname = tasknames[task_code[row]]
            t = int(timestamps_sec[row])
            flags = self._flags.get(taskname)
            if flags is None:
                flags = deque()
                self._flags[taskname] = flags
            horizon = t - anomaly_window
            while flags and flags[0] < horizon:
                flags.popleft()
            if not flagged_list[row]:
                continue
            flags.append(t)
            if len(flags) >= anomaly_violations:
                key = keys[key_code[row]]
                anomalies.append((row, AnomalyEvent(
                    taskname=taskname,
                    jobname=key.jobname,
                    platforminfo=key.platforminfo,
                    time_seconds=t,
                    cpi=float(cpi[row]),
                    threshold=float(thresholds[row]),
                    violations=len(flags),
                    first_flag_seconds=flags[0],
                )))
        return anomalies

    def forget_task(self, taskname: str) -> None:
        """Drop state for a departed task."""
        self._flags.pop(taskname, None)

    # -- checkpoint support (agent crash/recovery) ------------------------------

    def export_flags(self) -> dict[str, list[int]]:
        """Per-task in-window outlier flag timestamps, JSON-able.

        This is the detector's only state that matters across an agent
        restart: losing a streak mid-anomaly would silently re-arm the
        3-in-5-minutes rule and delay detection.
        """
        return {name: list(flags)
                for name, flags in self._flags.items() if flags}

    def restore_flags(self, flags: dict[str, list[int]]) -> None:
        """Replace streak state from an :meth:`export_flags` snapshot."""
        self._flags = {name: deque(times) for name, times in flags.items()}

    def violations_for(self, taskname: str) -> int:
        """Current in-window outlier count for a task (0 if unknown)."""
        flags = self._flags.get(taskname)
        return len(flags) if flags else 0
