"""The cluster-level CPI2 data pipeline (paper Figure 6).

"CPI data is gathered for every task on a machine, then sent off-machine to
a service where data from related tasks is aggregated.  The per-job,
per-platform aggregated CPI values are then sent back to each machine that
is running a task from that job.  Anomalies are detected locally, which
enables rapid responses and increases scalability."

:class:`CpiPipeline` wires one :class:`~repro.cluster.simulation.ClusterSimulation`
to CPI2: it installs a :class:`~repro.core.agent.MachineAgent` on every
machine, routes closed sampling windows both to the central
:class:`~repro.core.aggregator.CpiAggregator` (upward path) and to the local
agent (local path), pushes refreshed specs back down, forwards incidents to
the :class:`~repro.core.forensics.ForensicsStore`, and actuates
migrate/kill decisions through the cluster scheduler.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.machine import Machine, TickResult
from repro.cluster.scheduler import PlacementError
from repro.cluster.simulation import SECONDS_PER_DAY, ClusterSimulation
from repro.cluster.task import Task
from repro.core.aggregator import CpiAggregator
from repro.core.agent import Incident, MachineAgent
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.forensics import ForensicsStore
from repro.core.records import CpiSample, CpiSpec
from repro.core.samplebatch import SampleColumns
from repro.core.specstore import AggregatorHost, DurableSpecStore
from repro.core.throttle import ThrottleController
from repro.faults.plane import FaultPlane
from repro.faults.profile import FaultProfile, resolve_fault_profile
from repro.obs import Observability, default_observability, render_metrics_report

__all__ = ["CpiPipeline"]


class CpiPipeline:
    """CPI2 deployed across a simulated cluster."""

    def __init__(
        self,
        simulation: ClusterSimulation,
        config: CpiConfig = DEFAULT_CONFIG,
        forensics: Optional[ForensicsStore] = None,
        throttler_factory=None,
        enable_migration: bool = False,
        log_samples: bool = False,
        obs: Optional[Observability] = None,
        fault_profile: "FaultProfile | str | None" = None,
        fault_seed: int = 0,
        analysis_engine: Optional[str] = None,
        spec_store: Optional[DurableSpecStore] = None,
    ):
        """Args:
            simulation: the cluster to deploy onto.  The pipeline registers
                its sinks/hooks on construction.
            config: CPI2 parameters (the simulation's sampler should use the
                same duty cycle; this is the caller's responsibility).
            forensics: incident store (a fresh one if omitted).
            throttler_factory: ``() -> ThrottleController`` per agent; lets
                experiments swap in :class:`AdaptiveCapController`.
            enable_migration: actuate MIGRATE_VICTIM / KILL_ANTAGONIST
                decisions through the scheduler (off by default, matching the
                paper: "we don't automatically do this").
            log_samples: retain every CPI sample in :attr:`sample_log` for
                offline analysis ("we log and store data about CPIs and
                suspected antagonists"); pair with
                :func:`repro.core.storage.save_samples` to persist.
            obs: telemetry handle shared by the whole deployment — the
                aggregator, every agent (and through them detectors and
                throttlers), and the simulation.  The process default when
                omitted; pass a fresh :class:`~repro.obs.Observability` for
                an isolated registry.
            fault_profile: a :class:`~repro.faults.profile.FaultProfile`
                or preset name (``none``/``light``/``moderate``/``heavy``)
                describing the machine <-> aggregator fabric's failure
                behaviour.  The default (or any zero profile) bypasses the
                fault plane entirely: sample uploads and spec pushes stay
                in-process and runs are byte-identical to a build without
                fault injection.
            fault_seed: root seed for all injected-fault randomness,
                independent of the simulation seed so the workload is
                unchanged under different fault schedules.
            analysis_engine: analysis-plane engine for every agent
                (``vector``/``scalar``; default ``$REPRO_ANALYSIS_ENGINE``
                or ``vector``) — byte-identical output either way, see
                ``docs/performance.md``.
            spec_store: a :class:`~repro.core.specstore.DurableSpecStore`
                to WAL every aggregator mutation into.  One is created
                automatically when the fault profile can kill the
                aggregator; pass one explicitly to keep a handle on it
                (the soak harness does) or to mirror it to disk.
        """
        self.simulation = simulation
        self.config = config
        self.obs = obs or default_observability()
        self.obs.bind_clock(lambda: simulation.now)
        self.aggregator = CpiAggregator(config, obs=self.obs)
        self.forensics = forensics or ForensicsStore()
        self.enable_migration = enable_migration
        make_throttler = throttler_factory or (lambda: ThrottleController(config))
        self.agents: dict[str, MachineAgent] = {}
        for name, machine in simulation.machines.items():
            self.agents[name] = MachineAgent(
                machine=machine,
                config=config,
                throttler=make_throttler(),
                incident_sink=self.forensics.record,
                migrator=self._migrate if enable_migration else None,
                obs=self.obs,
                analysis_engine=analysis_engine,
            )
        profile = resolve_fault_profile(fault_profile)
        self.fault_profile = profile
        #: Durable process shell around the aggregator; only built when
        #: something needs it (a kill schedule, an outage, or an explicit
        #: store) so plain runs keep their direct aggregator calls.
        self.host: Optional[AggregatorHost] = None
        if (spec_store is not None or profile.has_aggregator_faults
                or profile.aggregator_outage_seconds > 0):
            self.host = AggregatorHost(self.aggregator, profile, fault_seed,
                                       config, obs=self.obs, store=spec_store)
        #: The injectable transport/crash fabric; ``None`` (zero profile)
        #: keeps every path a direct in-process call.  A non-zero outage
        #: forces the plane even on an otherwise clean profile: refusing
        #: uploads only means something when uploads ride the fabric's
        #: retry/backoff clients.
        self.faults: Optional[FaultPlane] = None
        if not profile.is_zero or profile.aggregator_outage_seconds > 0:
            self.faults = FaultPlane(profile, fault_seed, self.aggregator,
                                     self.agents, config, obs=self.obs,
                                     host=self.host)
        self._last_pump: Optional[int] = None
        #: When set (shard worker), the fault plane is pumped for these
        #: machines only; the coordinator owns the rest of the control plane.
        self.shard_names: Optional[frozenset[str]] = None
        simulation.add_sample_sink(self._on_samples)
        simulation.add_tick_hook(self._on_tick)
        #: Telemetry plane: when the facade carries a TSDB, scrape it at
        #: every sampling-window close.  A shard worker disables the local
        #: scrape (restrict_to_shard) and ships its registry state to the
        #: coordinator instead, whose TSDB then holds the fleet view.
        self._scrape_locally = True
        if self.obs.timeseries is not None:
            sampler = simulation.config.sampler
            self._scrape_offset = sampler.duration_seconds
            self._scrape_period = sampler.period_seconds
            simulation.add_step_hook(self._on_step_end)
        if simulation.obs is None:
            simulation.set_observability(self.obs)
        self.total_samples = 0
        self.machine_seconds = 0
        self.log_samples = log_samples
        #: Every sample seen, when ``log_samples`` is on.
        self.sample_log: list[CpiSample] = []

    # -- simulation plumbing ------------------------------------------------------

    def _on_samples(self, t: int, machine_name: str,
                    samples: Sequence[CpiSample]) -> None:
        n = len(samples)
        self.total_samples += n
        if self.log_samples:
            self.sample_log.extend(samples)
        # The vector sampler ships its window as WindowSamples — columns
        # already built, objects only on demand.  Reuse them everywhere.
        columns: Optional[SampleColumns] = getattr(samples, "columns", None)
        if self.faults is None:
            if n:
                # Columnar even in-process: ingest_batch is bit-identical to
                # per-sample ingest and dodges its per-sample dispatch.  An
                # empty window skips the encode and the batch call outright
                # (ingest_batch early-returns on n == 0, so unobservable).
                if columns is None:
                    columns = SampleColumns.from_samples(samples)
                if self.host is not None:
                    self.host.ingest_columns(t, columns, samples=samples)
                else:
                    self.aggregator.ingest_batch(columns)
        else:
            self.faults.upload(t, machine_name, samples)
        refreshed = (self.host.maybe_recompute(t) if self.host is not None
                     else self.aggregator.maybe_recompute(t))
        if refreshed is not None:
            if self.faults is None:
                for agent in self.agents.values():
                    agent.update_specs(refreshed, now=t)
            else:
                self.faults.push_specs(t, refreshed)
        # The agent reuses the batch's columns (vector engine) instead of
        # re-encoding; under faults the local path stays object-based and
        # the agent encodes only if its batch clears the vector cutoff.
        self.agents[machine_name].ingest_samples(t, samples, columns=columns)

    def _on_tick(self, t: int, machine: Machine, result: TickResult) -> None:
        self.machine_seconds += 1
        if ((self.faults is not None or self.host is not None)
                and t != self._last_pump):
            # Once per simulated second (hooks fire per machine): the host
            # first (an outage ending at t is back up before t's
            # deliveries), then the fabric — deliver due messages, advance
            # retries, inject crashes, checkpoint.
            self._last_pump = t
            if self.host is not None:
                self.host.pump(t)
            if self.faults is not None:
                self.faults.pump(t, only=self.shard_names)
        agent = self.agents[machine.name]
        agent.tick(t)
        for task, _state in result.departures:
            agent.forget_task(task.name, now=t)

    # -- telemetry plane ---------------------------------------------------------

    def _on_step_end(self, t: int) -> None:
        """Scrape at sampling-window closes (only registered with a TSDB)."""
        if not self._scrape_locally:
            return
        if t < self._scrape_offset or (t - self._scrape_offset) % self._scrape_period:
            return
        self.scrape_now(t)

    def scrape_now(self, t: int) -> None:
        """Take one telemetry scrape of this deployment's registry."""
        tsdb = self.obs.timeseries
        if tsdb is None:
            return
        tsdb.scrape_registry(t, self.obs.metrics,
                             extra_gauges={"fleet_machines": len(self.agents)})
        if self.obs.alerts is not None:
            self.obs.alerts.evaluate(tsdb, t)

    def scrape_shards(self, t: int, states: list[dict]) -> None:
        """Coordinator-side scrape: own registry state plus worker states.

        ``states`` are :func:`repro.obs.metrics.export_state` dumps shipped
        by the shard workers at barrier ``t``; summed with the
        coordinator's own registry they reconstruct exactly what a
        single-process scrape at ``t`` would have read.
        """
        tsdb = self.obs.timeseries
        if tsdb is None:
            return
        from repro.obs.metrics import export_state

        tsdb.scrape_states(t, [export_state(self.obs.metrics)] + list(states),
                           extra_gauges={"fleet_machines": len(self.agents)})
        if self.obs.alerts is not None:
            self.obs.alerts.evaluate(tsdb, t)

    def fleet_console(self):
        """The per-machine health scoreboard for this deployment."""
        from repro.obs.console import build_console

        machine_faults = (self.faults.machine_fault_tallies()
                          if self.faults is not None else {})
        rows = {
            name: {
                "anomalies": agent.anomalies_seen,
                "caps_active": int(self.obs.metrics.value(
                    "caps_active", machine=name) or 0),
                "degraded": agent.degraded,
                "crashes": agent.crash_count,
                "faults": machine_faults.get(name, {}),
            }
            for name, agent in self.agents.items()
        }
        engine = self.obs.alerts
        tsdb = self.obs.timeseries
        return build_console(
            rows, seconds=self.simulation.now,
            alerts_fired=engine.fired_counts() if engine is not None else {},
            alerts_active=engine.active() if engine is not None else [],
            scrapes=tsdb.scrapes if tsdb is not None else 0)

    def _migrate(self, task: Task) -> None:
        try:
            self.simulation.scheduler.migrate_task(task)
            self.obs.metrics.counter("migrations", outcome="moved").inc()
            self.obs.events.event("task_migrated", task=task.name,
                                  job=task.job.name)
        except PlacementError:
            # Nowhere to go; the task stays put and CPI2 retries later.
            self.obs.metrics.counter("migrations", outcome="no_placement").inc()
            self.obs.events.event("migration_failed", task=task.name,
                                  job=task.job.name, reason="no_placement")

    def restrict_to_shard(self, names) -> None:
        """Confine this deployment to a subset of machines (shard worker).

        The simulation drops non-shard machines/samplers from its
        iteration tables and the fault plane is pumped for the shard only;
        agents for non-shard machines remain constructed (their RNG-free
        construction already happened) but never tick.  See
        :mod:`repro.cluster.shards` for the coordinator side.
        """
        keep = frozenset(names)
        self.simulation.restrict_to(keep)
        self.shard_names = keep
        # The coordinator owns the fleet TSDB; workers only ship state.
        self._scrape_locally = False
        if self.host is not None:
            # The coordinator owns the canonical durable host; this
            # worker's host only tracks the up/down schedule so its
            # endpoint gate refuses exactly what the coordinator's would.
            # Accepted batches must keep flowing to the arrival capture
            # (endpoint.ingest), not into the replica's WAL.
            self.host.become_replica()
            if self.faults is not None:
                self.faults.endpoint.batch_sink = None

    # -- operator conveniences ---------------------------------------------------------

    def bootstrap_specs(self, specs: list[CpiSpec]) -> None:
        """Warm-start the aggregator and all agents with known specs.

        Models the paper's use of historical data from prior runs, and lets
        experiments begin detecting immediately rather than after a learning
        period.
        """
        for spec in specs:
            if self.host is not None:
                self.host.set_spec(spec)
            else:
                self.aggregator.set_spec(spec)
        published = self.aggregator.specs()
        for agent in self.agents.values():
            agent.update_specs(published)

    def refresh_specs_now(self) -> None:
        """Force a spec recomputation and push, off the normal schedule."""
        refreshed = (self.host.recompute(self.simulation.now)
                     if self.host is not None
                     else self.aggregator.recompute(self.simulation.now))
        for agent in self.agents.values():
            agent.update_specs(refreshed)

    def metrics_report(self) -> str:
        """This deployment's metrics, rendered for the terminal."""
        return render_metrics_report(self.obs.metrics)

    def all_incidents(self) -> list[Incident]:
        """Every incident raised by any agent, in id order."""
        incidents = [i for agent in self.agents.values() for i in agent.incidents]
        incidents.sort(key=lambda i: i.incident_id)
        return incidents

    def incident_rate_per_machine_day(self) -> float:
        """Identified-antagonist incidents per machine-day (Section 7: ~0.37).

        Counts incidents where an antagonist was identified (the policy chose
        a target), divided by elapsed machine-days.
        """
        if self.machine_seconds == 0:
            return 0.0
        identified = sum(
            1 for i in self.all_incidents() if i.decision.target is not None)
        machine_days = self.machine_seconds / SECONDS_PER_DAY
        return identified / machine_days if machine_days > 0 else 0.0

    def apply_scheduler_hints(self, min_incidents: int = 2) -> int:
        """Feed forensics anti-affinity hints to the scheduler.

        Returns the number of pairs installed.  This is the Section 9 future
        work ("making job placement antagonist-aware automatically") made
        concrete.
        """
        hints = self.forensics.scheduler_hints(min_incidents)
        for victim_job, antagonist_job in hints:
            self.simulation.scheduler.avoid_colocation(victim_job, antagonist_job)
        return len(hints)
