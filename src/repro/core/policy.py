"""The amelioration policy (paper Section 5).

"Our policy is simple: we give preference to latency-sensitive jobs over
batch ones.  If the suspected antagonist is a batch job and the victim is a
latency-sensitive one, then we forcibly reduce the antagonist's CPU usage
... CPI2 will do hard-capping automatically if it is confident in its
antagonist selection and the victim job is eligible for protection ... if the
victim's CPI remains high, then we return for another round of analysis."

The policy here encodes those rules plus the escalation paths the paper
describes around them: operators may kill a persistent offender ("our
version of task migration"), and case 4 shows that when throttling brings
only modest relief "the correct response ... would be to migrate the victim
to another machine."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cluster.task import Task
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.correlation import SuspectScore

__all__ = ["PolicyAction", "PolicyDecision", "AmeliorationPolicy"]


class PolicyAction(enum.Enum):
    """What to do about an identified antagonist."""

    #: Hard-cap the antagonist automatically.
    THROTTLE = "throttle"
    #: Log the incident but take no automatic action (conservative rollout,
    #: or every strong suspect is itself latency-sensitive).
    REPORT_ONLY = "report-only"
    #: No suspect cleared the correlation threshold.
    NO_ACTION = "no-action"
    #: Throttling has repeatedly failed to help; move the victim instead.
    MIGRATE_VICTIM = "migrate-victim"
    #: The same antagonist keeps reoffending; kill/restart it elsewhere.
    KILL_ANTAGONIST = "kill-antagonist"


@dataclass(frozen=True)
class PolicyDecision:
    """The policy's verdict for one anomaly."""

    action: PolicyAction
    #: The chosen antagonist task, for THROTTLE / KILL_ANTAGONIST.
    target: Optional[Task] = None
    #: The winning suspect's score, when one exists.
    score: Optional[SuspectScore] = None
    #: Human-readable justification, for the incident log.
    reason: str = ""


@dataclass
class _VictimHistory:
    """Per-victim record of amelioration attempts that did not help."""

    failed_throttles: int = 0
    #: Antagonists throttled for this victim so far (bookkeeping only: the
    #: paper relies on the natural mechanism — "since throttling the
    #: antagonist's CPU reduces its correlation with the victim's CPI, it is
    #: not likely to get picked in a later round" — and case 4 shows the same
    #: antagonist legitimately throttled twice).
    throttled_antagonists: set[str] = field(default_factory=set)


class AmeliorationPolicy:
    """Decides THROTTLE / REPORT / MIGRATE / KILL for detected anomalies."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 migrate_after_failures: int = 2,
                 kill_after_offences: int = 3):
        """Args:
            config: CPI2 parameters (threshold, auto-throttle flag).
            migrate_after_failures: consecutive unhelpful throttles for one
                victim before recommending victim migration (case 4's lesson).
            kill_after_offences: times one antagonist may be capped (for any
                victim) before the policy recommends kill-and-restart.
        """
        if migrate_after_failures < 1:
            raise ValueError(
                f"migrate_after_failures must be >= 1, got {migrate_after_failures}")
        if kill_after_offences < 1:
            raise ValueError(
                f"kill_after_offences must be >= 1, got {kill_after_offences}")
        self.config = config
        self.migrate_after_failures = migrate_after_failures
        self.kill_after_offences = kill_after_offences
        self._victims: dict[str, _VictimHistory] = {}
        self._offences: dict[str, int] = {}

    # -- the decision ------------------------------------------------------------

    def decide(self, victim: Task,
               suspects: Sequence[tuple[SuspectScore, Task]]) -> PolicyDecision:
        """Choose an action for a victim given its ranked, scored suspects.

        ``suspects`` must be ranked best-first (as :func:`rank_suspects`
        returns) and carry the resolved :class:`Task` for each score.
        """
        history = self._victims.setdefault(victim.name, _VictimHistory())
        if history.failed_throttles >= self.migrate_after_failures:
            return PolicyDecision(
                action=PolicyAction.MIGRATE_VICTIM,
                reason=(f"{history.failed_throttles} throttling attempts did not "
                        f"restore {victim.name}; migrate the victim"),
            )

        qualified = [
            (score, task) for score, task in suspects
            if score.meets(self.config.correlation_threshold)
        ]
        if not qualified:
            best = suspects[0][0].correlation if suspects else float("nan")
            return PolicyDecision(
                action=PolicyAction.NO_ACTION,
                reason=(f"no suspect above correlation threshold "
                        f"{self.config.correlation_threshold} (best: {best:.2f})"),
            )

        # Preference for latency-sensitive jobs over batch: only batch
        # suspects are throttle-eligible; among them the highest-correlated
        # wins.  A currently-capped suspect's usage (and hence correlation)
        # has already collapsed, so re-picks of a just-throttled antagonist
        # only happen once its cap lapsed and it reoffended — which is
        # exactly when the paper throttles it again (case 4).
        for score, task in qualified:
            if not task.scheduling_class.is_batch:
                continue
            if self._offences.get(task.name, 0) >= self.kill_after_offences:
                return PolicyDecision(
                    action=PolicyAction.KILL_ANTAGONIST, target=task, score=score,
                    reason=(f"{task.name} capped {self._offences[task.name]} times "
                            "already; kill and restart it elsewhere"),
                )
            if not victim.job.protection_eligible:
                return PolicyDecision(
                    action=PolicyAction.REPORT_ONLY, target=task, score=score,
                    reason=f"victim job {victim.job.name} not protection-eligible",
                )
            if not self.config.auto_throttle:
                return PolicyDecision(
                    action=PolicyAction.REPORT_ONLY, target=task, score=score,
                    reason="auto-throttling disabled; reporting for operators",
                )
            return PolicyDecision(
                action=PolicyAction.THROTTLE, target=task, score=score,
                reason=(f"{task.name} ({task.scheduling_class.value}) correlates "
                        f"{score.correlation:.2f} with victim {victim.name}"),
            )

        top = qualified[0][0]
        return PolicyDecision(
            action=PolicyAction.REPORT_ONLY, score=top,
            reason=("no throttle-eligible batch suspect remaining (all are "
                    "latency-sensitive, or already capped for this victim)"),
        )

    # -- feedback ------------------------------------------------------------------

    def record_throttle(self, victim: Task, antagonist: Task) -> None:
        """Note that ``antagonist`` was capped on behalf of ``victim``."""
        history = self._victims.setdefault(victim.name, _VictimHistory())
        history.throttled_antagonists.add(antagonist.name)
        self._offences[antagonist.name] = self._offences.get(antagonist.name, 0) + 1

    def record_outcome(self, victim: Task, recovered: bool) -> None:
        """Report whether the victim's CPI returned to normal after a cap."""
        history = self._victims.setdefault(victim.name, _VictimHistory())
        if recovered:
            history.failed_throttles = 0
            history.throttled_antagonists.clear()
        else:
            history.failed_throttles += 1

    def offence_count(self, taskname: str) -> int:
        """How many times a task has been capped, across all victims."""
        return self._offences.get(taskname, 0)
