"""Compatibility re-export: the wire records live in :mod:`repro.records`.

They are defined at the top level because both the perf-counter substrate
(which produces samples) and the CPI2 core (which aggregates them) need
them, and neither package should have to import the other's ``__init__``.
"""

from repro.records import (  # noqa: F401
    MICROSECONDS_PER_SECOND,
    CpiSample,
    CpiSpec,
    SpecKey,
)

__all__ = ["MICROSECONDS_PER_SECOND", "CpiSample", "CpiSpec", "SpecKey"]
