"""Columnar CPI sample batches: the sharded pipeline's wire format.

A closed sampling window's samples cross two boundaries on their way into
the aggregator — machine -> coordinator (a process boundary under
``--jobs N``) and pipeline -> :meth:`CpiAggregator.ingest_batch`.  Shipping
them as a list of :class:`~repro.records.CpiSample` dataclasses means one
pickled Python object per sample plus one attribute-walking ``ingest`` call
per sample on arrival.  :class:`SampleColumns` is the struct-of-arrays
alternative: three small string tables (aggregation keys and tasknames) and
four numpy columns, so a 500-sample window pickles as a handful of buffers
and ingests as one tight loop.

The format is *lossless*: ``to_samples`` reconstructs samples that compare
equal, field by field, to the originals (float64 round-trips exactly), so
the single-process path can use the same objects without changing a byte of
output — which the golden-parity tests in ``tests/test_shards.py`` pin.
"""

from __future__ import annotations

import json
import struct
from collections.abc import Sequence as SequenceABC
from typing import Iterable, Sequence

import numpy as np

from repro.records import CpiSample, SpecKey

__all__ = ["SampleColumns", "WindowSamples"]

#: Segment record header: n samples, n keys, n tasks, string-blob bytes.
_WIRE_HEADER = struct.Struct("<4q")
_WIRE_ALIGN = 8


def _pad8(n: int) -> int:
    return (n + _WIRE_ALIGN - 1) & ~(_WIRE_ALIGN - 1)


class SampleColumns:
    """One batch of CPI samples as a struct of arrays.

    Attributes:
        keys: table of distinct (job, platform) aggregation keys.
        tasks: table of distinct tasknames.
        key_code: per-sample index into :attr:`keys` (int32).
        task_code: per-sample index into :attr:`tasks` (int32).
        timestamp: per-sample microseconds since the epoch (int64).
        cpu_usage: per-sample CPU-sec/sec (float64).
        cpi: per-sample cycles/instruction (float64).
    """

    __slots__ = ("keys", "tasks", "key_code", "task_code", "timestamp",
                 "cpu_usage", "cpi", "_blob")

    def __init__(self, keys: Sequence[SpecKey], tasks: Sequence[str],
                 key_code: np.ndarray, task_code: np.ndarray,
                 timestamp: np.ndarray, cpu_usage: np.ndarray,
                 cpi: np.ndarray):
        self.keys = tuple(keys)
        self.tasks = tuple(tasks)
        self.key_code = key_code
        self.task_code = task_code
        self.timestamp = timestamp
        self.cpu_usage = cpu_usage
        self.cpi = cpi
        #: Lazily-built string-table blob for the segment wire format.
        self._blob: bytes | None = None

    def __len__(self) -> int:
        return len(self.cpi)

    @classmethod
    def from_samples(cls, samples: Iterable[CpiSample]) -> "SampleColumns":
        """Encode an ordered sample stream (order is preserved exactly)."""
        samples = list(samples)
        n = len(samples)
        key_index: dict[tuple[str, str], int] = {}
        keys: list[SpecKey] = []
        task_index: dict[str, int] = {}
        tasks: list[str] = []
        key_code = np.empty(n, dtype=np.int32)
        task_code = np.empty(n, dtype=np.int32)
        timestamp = np.empty(n, dtype=np.int64)
        cpu_usage = np.empty(n, dtype=np.float64)
        cpi = np.empty(n, dtype=np.float64)
        for i, s in enumerate(samples):
            k = (s.jobname, s.platforminfo)
            kc = key_index.get(k)
            if kc is None:
                kc = len(keys)
                key_index[k] = kc
                keys.append(SpecKey(s.jobname, s.platforminfo))
            tc = task_index.get(s.taskname)
            if tc is None:
                tc = len(tasks)
                task_index[s.taskname] = tc
                tasks.append(s.taskname)
            key_code[i] = kc
            task_code[i] = tc
            timestamp[i] = s.timestamp
            cpu_usage[i] = s.cpu_usage
            cpi[i] = s.cpi
        return cls(keys, tasks, key_code, task_code, timestamp, cpu_usage,
                   cpi)

    @classmethod
    def empty(cls) -> "SampleColumns":
        """A zero-sample batch (what a window with no survivors encodes to)."""
        return cls((), (), np.empty(0, dtype=np.int32),
                   np.empty(0, dtype=np.int32), np.empty(0, dtype=np.int64),
                   np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64))

    def to_samples(self) -> list[CpiSample]:
        """Decode back to sample objects, field-equal to the originals.

        Only valid for batches of *plausible* samples: :class:`CpiSample`
        rejects negative values at construction, so corrupted in-flight
        batches should stay columnar (``ingest_batch`` never materialises
        objects).
        """
        keys = self.keys
        tasks = self.tasks
        return [
            CpiSample(jobname=keys[kc].jobname,
                      platforminfo=keys[kc].platforminfo,
                      timestamp=ts, cpu_usage=usage, cpi=cpi, taskname=tasks[tc])
            for kc, tc, ts, usage, cpi in zip(
                self.key_code.tolist(), self.task_code.tolist(),
                self.timestamp.tolist(), self.cpu_usage.tolist(),
                self.cpi.tolist())
        ]

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the numeric columns."""
        return (self.key_code.nbytes + self.task_code.nbytes
                + self.timestamp.nbytes + self.cpu_usage.nbytes
                + self.cpi.nbytes)

    # -- shared-memory segment wire format ------------------------------------
    #
    # [header: n, n_keys, n_tasks, blob_len (4 x int64)]
    # [string blob: JSON [[jobname, platforminfo]...], [taskname...]; padded]
    # [timestamp int64[n]] [cpu_usage f64[n]] [cpi f64[n]]
    # [key_code int32[n]] [task_code int32[n]] [pad to 8]
    #
    # Numeric columns are written raw, so the decoder can hand back numpy
    # *views* over the segment (zero-copy); only the small string tables
    # pay a (de)serialization.  Every float — NaN quarantine candidates
    # included — round-trips bit-exactly.

    def _string_blob(self) -> bytes:
        blob = self._blob
        if blob is None:
            blob = json.dumps(
                [[k.jobname, k.platforminfo] for k in self.keys],
                separators=(",", ":")).encode("utf-8") + b"\x00" + json.dumps(
                list(self.tasks), separators=(",", ":")).encode("utf-8")
            self._blob = blob
        return blob

    @property
    def encoded_nbytes(self) -> int:
        """Exact size of this batch on the segment wire."""
        n = len(self)
        return (_WIRE_HEADER.size + _pad8(len(self._string_blob()))
                + 24 * n + _pad8(8 * n))

    def encode_into(self, buf: memoryview) -> int:
        """Serialize into ``buf`` (exactly :attr:`encoded_nbytes` long).

        Designed to run inside :meth:`repro.cluster.shm.ShmRing.write`,
        filling the ring slot in place — the numeric columns are copied
        once, straight from their arrays into shared memory.
        """
        n = len(self)
        blob = self._string_blob()
        _WIRE_HEADER.pack_into(buf, 0, n, len(self.keys), len(self.tasks),
                               len(blob))
        off = _WIRE_HEADER.size
        buf[off:off + len(blob)] = blob
        off += _pad8(len(blob))
        for arr, width in ((self.timestamp, 8), (self.cpu_usage, 8),
                           (self.cpi, 8), (self.key_code, 4),
                           (self.task_code, 4)):
            raw = arr.tobytes()
            buf[off:off + width * n] = raw
            off += width * n
        return _pad8(off)

    @classmethod
    def decode(cls, buf: memoryview, copy: bool = False) -> "SampleColumns":
        """Deserialize a batch encoded by :meth:`encode_into`.

        With ``copy=False`` the numeric columns are numpy views over
        ``buf`` — valid only until the underlying ring slot is released
        (call :meth:`materialize` to keep a batch past that point).
        """
        n, n_keys, n_tasks, blob_len = _WIRE_HEADER.unpack_from(buf, 0)
        off = _WIRE_HEADER.size
        key_json, task_json = bytes(buf[off:off + blob_len]).split(b"\x00", 1)
        keys = tuple(SpecKey(job, platform)
                     for job, platform in json.loads(key_json))
        tasks = tuple(json.loads(task_json))
        if len(keys) != n_keys or len(tasks) != n_tasks:
            raise ValueError(
                f"corrupt batch header: {n_keys}/{n_tasks} declared, "
                f"{len(keys)}/{len(tasks)} decoded")
        off += _pad8(blob_len)
        columns = []
        for dtype, width in ((np.int64, 8), (np.float64, 8), (np.float64, 8),
                             (np.int32, 4), (np.int32, 4)):
            arr = np.frombuffer(buf, dtype=dtype, count=n, offset=off)
            columns.append(arr.copy() if copy else arr)
            off += width * n
        timestamp, cpu_usage, cpi, key_code, task_code = columns
        return cls(keys, tasks, key_code, task_code, timestamp, cpu_usage,
                   cpi)

    def materialize(self) -> "SampleColumns":
        """Detach from any borrowed buffer by copying the numeric columns.

        Called by the coordinator's backpressure relief: a batch decoded
        zero-copy can be kept past the ring commit only after this.
        Returns ``self`` for chaining.
        """
        self.key_code = np.array(self.key_code)
        self.task_code = np.array(self.task_code)
        self.timestamp = np.array(self.timestamp)
        self.cpu_usage = np.array(self.cpu_usage)
        self.cpi = np.array(self.cpi)
        return self

    def __repr__(self) -> str:
        return (f"SampleColumns(n={len(self)}, keys={len(self.keys)}, "
                f"tasks={len(self.tasks)})")


class WindowSamples(SequenceABC):
    """A closed sampling window: columns first, objects only on demand.

    The vectorized sampler emits :class:`SampleColumns` directly — no
    :class:`~repro.records.CpiSample` objects exist on the clean path.  But
    the window still flows through consumers written against sample lists
    (``sample_log.extend``, the fault plane's upload clients, the agent's
    scalar engine, tests indexing ``samples[0]``), so this wrapper *is* a
    sequence of samples: materialization via :meth:`SampleColumns.to_samples`
    happens lazily on the first element access and is cached.  Consumers
    that only need ``len``/truthiness (the simulation's dispatch guard, the
    pipeline's empty-window skip) never build an object.

    Equality against lists/tuples compares the materialized samples, so the
    golden-parity suites can diff a vector window against a scalar one
    field by field.
    """

    __slots__ = ("columns", "_samples")

    def __init__(self, columns: SampleColumns):
        self.columns = columns
        self._samples: list[CpiSample] | None = None

    def _list(self) -> list[CpiSample]:
        samples = self._samples
        if samples is None:
            samples = self.columns.to_samples()
            self._samples = samples
        return samples

    def __len__(self) -> int:
        return len(self.columns)

    def __bool__(self) -> bool:
        return len(self.columns) > 0

    def __getitem__(self, index):
        return self._list()[index]

    def __iter__(self):
        return iter(self._list())

    def __eq__(self, other) -> bool:
        if isinstance(other, WindowSamples):
            return self._list() == other._list()
        if isinstance(other, (list, tuple)):
            return self._list() == list(other)
        return NotImplemented

    __hash__ = None  # mutable cache; matches list semantics

    def __repr__(self) -> str:
        state = "materialized" if self._samples is not None else "columnar"
        return f"WindowSamples(n={len(self)}, {state})"
