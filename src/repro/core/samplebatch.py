"""Columnar CPI sample batches: the sharded pipeline's wire format.

A closed sampling window's samples cross two boundaries on their way into
the aggregator — machine -> coordinator (a process boundary under
``--jobs N``) and pipeline -> :meth:`CpiAggregator.ingest_batch`.  Shipping
them as a list of :class:`~repro.records.CpiSample` dataclasses means one
pickled Python object per sample plus one attribute-walking ``ingest`` call
per sample on arrival.  :class:`SampleColumns` is the struct-of-arrays
alternative: three small string tables (aggregation keys and tasknames) and
four numpy columns, so a 500-sample window pickles as a handful of buffers
and ingests as one tight loop.

The format is *lossless*: ``to_samples`` reconstructs samples that compare
equal, field by field, to the originals (float64 round-trips exactly), so
the single-process path can use the same objects without changing a byte of
output — which the golden-parity tests in ``tests/test_shards.py`` pin.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.records import CpiSample, SpecKey

__all__ = ["SampleColumns"]


class SampleColumns:
    """One batch of CPI samples as a struct of arrays.

    Attributes:
        keys: table of distinct (job, platform) aggregation keys.
        tasks: table of distinct tasknames.
        key_code: per-sample index into :attr:`keys` (int32).
        task_code: per-sample index into :attr:`tasks` (int32).
        timestamp: per-sample microseconds since the epoch (int64).
        cpu_usage: per-sample CPU-sec/sec (float64).
        cpi: per-sample cycles/instruction (float64).
    """

    __slots__ = ("keys", "tasks", "key_code", "task_code", "timestamp",
                 "cpu_usage", "cpi")

    def __init__(self, keys: Sequence[SpecKey], tasks: Sequence[str],
                 key_code: np.ndarray, task_code: np.ndarray,
                 timestamp: np.ndarray, cpu_usage: np.ndarray,
                 cpi: np.ndarray):
        self.keys = tuple(keys)
        self.tasks = tuple(tasks)
        self.key_code = key_code
        self.task_code = task_code
        self.timestamp = timestamp
        self.cpu_usage = cpu_usage
        self.cpi = cpi

    def __len__(self) -> int:
        return len(self.cpi)

    @classmethod
    def from_samples(cls, samples: Iterable[CpiSample]) -> "SampleColumns":
        """Encode an ordered sample stream (order is preserved exactly)."""
        samples = list(samples)
        n = len(samples)
        key_index: dict[tuple[str, str], int] = {}
        keys: list[SpecKey] = []
        task_index: dict[str, int] = {}
        tasks: list[str] = []
        key_code = np.empty(n, dtype=np.int32)
        task_code = np.empty(n, dtype=np.int32)
        timestamp = np.empty(n, dtype=np.int64)
        cpu_usage = np.empty(n, dtype=np.float64)
        cpi = np.empty(n, dtype=np.float64)
        for i, s in enumerate(samples):
            k = (s.jobname, s.platforminfo)
            kc = key_index.get(k)
            if kc is None:
                kc = len(keys)
                key_index[k] = kc
                keys.append(SpecKey(s.jobname, s.platforminfo))
            tc = task_index.get(s.taskname)
            if tc is None:
                tc = len(tasks)
                task_index[s.taskname] = tc
                tasks.append(s.taskname)
            key_code[i] = kc
            task_code[i] = tc
            timestamp[i] = s.timestamp
            cpu_usage[i] = s.cpu_usage
            cpi[i] = s.cpi
        return cls(keys, tasks, key_code, task_code, timestamp, cpu_usage,
                   cpi)

    def to_samples(self) -> list[CpiSample]:
        """Decode back to sample objects, field-equal to the originals.

        Only valid for batches of *plausible* samples: :class:`CpiSample`
        rejects negative values at construction, so corrupted in-flight
        batches should stay columnar (``ingest_batch`` never materialises
        objects).
        """
        keys = self.keys
        tasks = self.tasks
        return [
            CpiSample(jobname=keys[kc].jobname,
                      platforminfo=keys[kc].platforminfo,
                      timestamp=ts, cpu_usage=usage, cpi=cpi, taskname=tasks[tc])
            for kc, tc, ts, usage, cpi in zip(
                self.key_code.tolist(), self.task_code.tolist(),
                self.timestamp.tolist(), self.cpu_usage.tolist(),
                self.cpi.tolist())
        ]

    @property
    def nbytes(self) -> int:
        """Approximate wire size of the numeric columns."""
        return (self.key_code.nbytes + self.task_code.nbytes
                + self.timestamp.nbytes + self.cpu_usage.nbytes
                + self.cpi.nbytes)

    def __repr__(self) -> str:
        return (f"SampleColumns(n={len(self)}, keys={len(self.keys)}, "
                f"tasks={len(self.tasks)})")
