"""Durable aggregator state: snapshot + WAL spec store, crash/restore host.

The paper leans on long-lived state — "historical CPI data has significant
value" (Section 3.1) — yet an aggregation service is an ordinary process:
it gets restarted, upgraded, OOM-killed.  This module makes the
aggregator's learned state survive that:

* :class:`DurableSpecStore` — an append-only write-ahead log of every
  state mutation (spec injections, ingested batches, refresh points) plus
  periodic snapshots that compact the log.  The in-memory record list is
  canonical (it models the durable medium that outlives the simulated
  process); :meth:`~DurableSpecStore.attach_disk` additionally mirrors it
  to real files — ``wal.jsonl`` appended record-by-record, the snapshot
  written via atomic rename — and :meth:`~DurableSpecStore.load` reads
  them back, tolerating a torn trailing WAL record (partial JSON from an
  interrupted write is discarded with a counted ``wal_torn_tail`` event;
  corruption anywhere earlier raises).

* :class:`AggregatorHost` — the process supervisor wrapped around one
  :class:`~repro.core.aggregator.CpiAggregator`: it WAL-logs every
  mutation before applying it, snapshots on a configured cadence, and
  executes the fault profile's aggregator kill schedule.  A crash wipes
  the aggregator and the endpoint's dedup watermark; recovery replays
  snapshot + WAL into a shadow aggregator and transplants the result —
  reconstructing spec values, Welford running stats, and dedup watermarks
  byte-identically (pinned by tests/test_specstore.py).  With a non-zero
  outage the endpoint refuses batches while down and the machine-side
  upload clients ride it out on retry/backoff.

Recovery invariant: because every mutation is logged before it is
applied, ``recover()`` after a crash at any point reproduces exactly the
state the aggregator held at that point — so a run with kills ends
byte-identical to the same run without them.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.core.aggregator import CpiAggregator
from repro.core.config import CpiConfig
from repro.core.samplebatch import SampleColumns
from repro.core.storage import (sample_from_dict, sample_to_dict,
                                spec_from_dict, spec_to_dict)
from repro.faults.checkpoint import CrashInjector
from repro.faults.retry import AggregatorEndpoint
from repro.obs import Observability
from repro.records import CpiSample, CpiSpec, SpecKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.profile import FaultProfile
    from repro.faults.retry import SampleBatch

__all__ = ["SPECSTORE_FORMAT_VERSION", "RecoveredState", "DurableSpecStore",
           "AggregatorHost"]

#: Snapshot schema version; recovery refuses snapshots it cannot read.
SPECSTORE_FORMAT_VERSION = 1

WAL_FILENAME = "wal.jsonl"
SNAPSHOT_FILENAME = "snapshot.json"

#: Extra seed-sequence entropy for the host's crash schedule, so it can
#: never collide with the fault plane's per-machine spawn children (their
#: schedules must not shift when aggregator kills are switched on).
_HOST_STREAM_KEY = 0x5370_6563  # "Spec"

PathLike = Union[str, Path]


@dataclass(frozen=True)
class RecoveredState:
    """What a recovery pass reconstructs: aggregator + endpoint state."""

    aggregator: dict
    endpoint: dict
    replayed_records: int


class DurableSpecStore:
    """Append-only WAL + compacting snapshots for aggregator state.

    The store object itself models the durable medium: it survives the
    simulated death of the aggregator process, and :meth:`recover` rebuilds
    the state that process held.  ``attach_disk`` mirrors everything to a
    directory so the same recovery works across real process boundaries.
    """

    def __init__(self, obs: Optional[Observability] = None):
        self.obs = obs
        self._snapshot: Optional[dict] = None
        self._wal: list[dict] = []
        self._seq = 0
        self.directory: Optional[Path] = None
        self._wal_handle = None
        self.snapshots_taken = 0
        self.torn_tail_records = 0

    # -- telemetry ---------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name).inc(n)

    # -- the write path ----------------------------------------------------------

    @property
    def wal_records(self) -> int:
        """Records currently in the WAL (since the last compaction)."""
        return len(self._wal)

    def append(self, record: dict) -> None:
        """Log one mutation record (callers log *before* applying)."""
        record = {"seq": self._seq, **record}
        self._seq += 1
        self._wal.append(record)
        if self._wal_handle is not None:
            self._wal_handle.write(json.dumps(record) + "\n")
            self._wal_handle.flush()
        self._count("wal_records_appended")

    def log_set_spec(self, spec: CpiSpec) -> None:
        self.append({"op": "set_spec", "spec": spec_to_dict(spec)})

    def log_wire_batch(self, t: int, batch: "SampleBatch") -> None:
        """One accepted (non-duplicate) upload batch, samples included."""
        self.append({"op": "wire", "t": t, "batch": batch.batch_id,
                     "machine": batch.machine,
                     "samples": [sample_to_dict(s) for s in batch.samples]})

    def log_ingest(self, t: int, samples: list[CpiSample]) -> None:
        """One directly-ingested columnar window (clean-mode upward path)."""
        self.append({"op": "ingest", "t": t,
                     "samples": [sample_to_dict(s) for s in samples]})

    def log_refresh(self, now: int) -> None:
        """A spec recomputation that actually fired at ``now``."""
        self.append({"op": "refresh", "t": now})

    def take_snapshot(self, t: int, aggregator_state: dict,
                      endpoint_state: dict) -> None:
        """Snapshot full state at ``t`` and compact the WAL away."""
        self._snapshot = {
            "version": SPECSTORE_FORMAT_VERSION,
            "taken_at": t,
            "next_seq": self._seq,
            "aggregator": aggregator_state,
            "endpoint": endpoint_state,
        }
        compacted = len(self._wal)
        self._wal.clear()
        if self.directory is not None:
            self._write_snapshot_file()
            self._reopen_wal(truncate=True)
        self.snapshots_taken += 1
        self._count("snapshot_compactions")
        if self.obs is not None:
            self.obs.events.event("specstore_snapshot", t=t,
                                  wal_compacted=compacted)

    # -- recovery ----------------------------------------------------------------

    def recover(self, config: CpiConfig) -> RecoveredState:
        """Reconstruct aggregator + endpoint state: snapshot, then WAL.

        The replay runs through a shadow :class:`CpiAggregator` with no
        telemetry handle — the original ingests were already counted when
        they happened; recovery must not double-count them — and returns
        its exported state for the live aggregator to adopt wholesale.
        """
        shadow = CpiAggregator(config)
        seen: "OrderedDict[str, None]" = OrderedDict()
        received = 0
        duplicates = 0
        if self._snapshot is not None:
            if self._snapshot["version"] != SPECSTORE_FORMAT_VERSION:
                raise ValueError(
                    f"spec-store snapshot version "
                    f"{self._snapshot['version']!r} != "
                    f"{SPECSTORE_FORMAT_VERSION}")
            shadow.restore_state(self._snapshot["aggregator"])
            endpoint = self._snapshot["endpoint"]
            seen = OrderedDict((batch_id, None)
                               for batch_id in endpoint["seen"])
            received = endpoint["received"]
            duplicates = endpoint["duplicates"]
        for record in self._wal:
            op = record["op"]
            if op == "set_spec":
                shadow.set_spec(spec_from_dict(record["spec"]))
            elif op == "wire":
                # The endpoint already deduped live arrivals; every wire
                # record is a distinct accepted batch.  Per-sample scalar
                # ingest, exactly like the live wire path.
                seen[record["batch"]] = None
                while len(seen) > AggregatorEndpoint.DEDUP_WINDOW:
                    seen.popitem(last=False)
                received += 1
                for data in record["samples"]:
                    shadow.ingest(sample_from_dict(data))
            elif op == "ingest":
                shadow.ingest_batch(SampleColumns.from_samples(
                    [sample_from_dict(data) for data in record["samples"]]))
            elif op == "refresh":
                shadow.recompute(record["t"])
            else:
                raise ValueError(f"unknown WAL op {op!r} "
                                 f"(seq {record.get('seq')})")
        return RecoveredState(
            aggregator=shadow.export_state(),
            endpoint={"seen": list(seen), "received": received,
                      "duplicates": duplicates},
            replayed_records=len(self._wal),
        )

    # -- the disk mirror ---------------------------------------------------------

    def attach_disk(self, directory: PathLike) -> None:
        """Mirror this store to ``directory`` from now on.

        Flushes the current in-memory snapshot and WAL first, so attaching
        after a warm start (bootstrap specs already logged) loses nothing.
        Call this on the canonical store only — coordinator or CLI side —
        never inside shard workers, whose replica stores are write-only
        by-products of the replicated build.
        """
        path = Path(directory)
        path.mkdir(parents=True, exist_ok=True)
        self.directory = path
        if self._snapshot is not None:
            self._write_snapshot_file()
        self._reopen_wal(truncate=True)
        for record in self._wal:
            self._wal_handle.write(json.dumps(record) + "\n")
        self._wal_handle.flush()

    def close(self) -> None:
        """Release the WAL file handle (disk-attached stores only)."""
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None

    def _write_snapshot_file(self) -> None:
        target = self.directory / SNAPSHOT_FILENAME
        tmp = self.directory / (SNAPSHOT_FILENAME + ".tmp")
        tmp.write_text(json.dumps(self._snapshot) + "\n", encoding="utf-8")
        os.replace(tmp, target)

    def _reopen_wal(self, truncate: bool) -> None:
        self.close()
        mode = "w" if truncate else "a"
        self._wal_handle = open(self.directory / WAL_FILENAME, mode,
                                encoding="utf-8")

    @classmethod
    def load(cls, directory: PathLike,
             obs: Optional[Observability] = None) -> "DurableSpecStore":
        """Reopen a disk store after a (real) process restart.

        The snapshot is all-or-nothing by construction (atomic rename).
        The WAL tolerates a torn tail: a final line that fails to parse is
        the residue of an interrupted append — dropped with a counted
        ``wal_torn_tail`` event (and rewritten away on attach).  A bad
        record anywhere earlier raises with the path and line number.
        """
        store = cls(obs=obs)
        path = Path(directory)
        snapshot_file = path / SNAPSHOT_FILENAME
        if snapshot_file.exists():
            store._snapshot = json.loads(
                snapshot_file.read_text(encoding="utf-8"))
            if store._snapshot["version"] != SPECSTORE_FORMAT_VERSION:
                raise ValueError(
                    f"{snapshot_file}: snapshot version "
                    f"{store._snapshot['version']!r} != "
                    f"{SPECSTORE_FORMAT_VERSION}")
            store._seq = store._snapshot["next_seq"]
        wal_file = path / WAL_FILENAME
        if wal_file.exists():
            lines = wal_file.read_text(encoding="utf-8").splitlines()
            last = max((i for i, line in enumerate(lines) if line.strip()),
                       default=-1)
            for index, line in enumerate(lines):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as error:
                    if index != last:
                        raise ValueError(
                            f"{wal_file}:{index + 1}: corrupt WAL record "
                            f"mid-file: {error}") from error
                    store.torn_tail_records += 1
                    store._count("wal_torn_tail")
                    if obs is not None:
                        obs.events.warning(
                            "wal_torn_tail", path=str(wal_file),
                            line=index + 1, error=str(error))
                    break
                store._wal.append(record)
                store._seq = record["seq"] + 1
        # Re-attach: rewrites the WAL from memory, dropping any torn tail.
        store.attach_disk(path)
        return store


class AggregatorHost:
    """The aggregation service's process shell: durability + kill schedule.

    Sits between the pipeline/endpoint and the :class:`CpiAggregator`:
    every mutation is WAL-logged before it is applied, snapshots fire on
    the config cadence, and :meth:`pump` (once per simulated second)
    executes the profile's crash schedule — tear down, then restore from
    the store after ``aggregator_outage_seconds``.

    Shard workers call :meth:`become_replica`: the replica tracks only the
    up/down schedule (drawing identical RNG values, so its endpoint gate
    matches the canonical host's) and performs no state changes, no store
    writes, and no telemetry — the coordinator owns the canonical host.
    """

    def __init__(
        self,
        aggregator: CpiAggregator,
        profile: "FaultProfile",
        fault_seed: int,
        config: CpiConfig,
        obs: Optional[Observability] = None,
        store: Optional[DurableSpecStore] = None,
    ):
        self.aggregator = aggregator
        self.config = config
        self.obs = obs
        self.store = store if store is not None else DurableSpecStore(obs=obs)
        if self.store.obs is None:
            self.store.obs = obs
        self.endpoint: Optional[AggregatorEndpoint] = None
        self.outage = profile.aggregator_outage_seconds
        self.kill_ticks = frozenset(profile.aggregator_kill_ticks)
        self.snapshot_interval = config.specstore_snapshot_interval
        rng = np.random.default_rng(
            np.random.SeedSequence([fault_seed, _HOST_STREAM_KEY]))
        self.injector = CrashInjector(profile.aggregator_crash_rate, rng)
        self.replica = False
        self.crashes = 0
        self.restarts = 0
        self.records_replayed = 0
        self.reference: Optional[CpiAggregator] = None
        self._down_until: Optional[int] = None
        #: Next snapshot due time; a boundary that lands while the service
        #: is down fires at the first up tick after the restore instead of
        #: being skipped for a whole interval.
        self._next_snapshot = self.snapshot_interval
        #: Last tick this host was pumped for (-1 = never); the sharded
        #: coordinator uses it to catch up tick-by-tick between barriers.
        self.pumped_through = -1

    # -- wiring ------------------------------------------------------------------

    def bind_endpoint(self, endpoint: AggregatorEndpoint) -> None:
        """Adopt the service-side endpoint whose dedup state is durable."""
        self.endpoint = endpoint

    def become_replica(self) -> None:
        """Track the kill schedule only (shard workers).

        The worker's aggregator replica is already dead weight (arrivals
        are captured for the coordinator), its store holds nothing worth
        recovering, and its endpoint's live dedup set must *keep* working
        through an outage — recovery is lossless, so keep-as-is is
        state-identical to wipe-plus-full-restore.
        """
        self.replica = True

    def attach_reference(self) -> CpiAggregator:
        """Start a shadow aggregator fed the same accepted mutations.

        The shadow never crashes and never recovers; comparing it against
        the durable aggregator at the end of a churn run proves the
        snapshot/WAL plumbing added zero drift (the soak harness's
        zero-spec-drift assertion).
        """
        self.reference = CpiAggregator(self.aggregator.config)
        self.reference.restore_state(self.aggregator.export_state())
        return self.reference

    # -- availability ------------------------------------------------------------

    @property
    def is_up(self) -> bool:
        return self._down_until is None

    def accepting(self) -> bool:
        """Endpoint gate: refuse uploads while the service is down."""
        return self._down_until is None

    # -- the per-second schedule -------------------------------------------------

    def pump(self, t: int) -> None:
        """Advance the host's clock by one second (call once per tick).

        Order matters and is identical in every execution mode: restore
        first (an outage ending at ``t`` is back up before ``t``'s
        deliveries), then the crash draw, then the snapshot cadence —
        so a snapshot at ``t`` always captures state from *before* any of
        tick ``t``'s ingests, single-process and sharded alike.
        """
        if self._down_until is not None and t >= self._down_until:
            self._restore(t)
        # The Bernoulli draw must happen every tick (replica parity).
        if ((self.injector.should_crash() or t in self.kill_ticks)
                and self._down_until is None):
            self._crash(t)
        if (not self.replica and self._down_until is None
                and t >= self._next_snapshot):
            self.snapshot(t)
            while self._next_snapshot <= t:
                self._next_snapshot += self.snapshot_interval
        self.pumped_through = t

    def _crash(self, t: int) -> None:
        self.crashes += 1
        if not self.replica:
            wal_pending = self.store.wal_records
            self.aggregator.reset_state()
            if self.endpoint is not None:
                self.endpoint.reset_state()
            if self.obs is not None:
                self.obs.metrics.counter("aggregator_crashes").inc()
                self.obs.events.event("aggregator_crashed", t=t,
                                      wal_pending=wal_pending,
                                      down_for=self.outage)
        if self.outage > 0:
            self._down_until = t + self.outage
            return
        self._restore(t)

    def _restore(self, t: int) -> None:
        self._down_until = None
        self.restarts += 1
        if self.replica:
            return
        state = self.store.recover(self.aggregator.config)
        self.aggregator.restore_state(state.aggregator)
        if self.endpoint is not None:
            self.endpoint.restore_dedup_state(state.endpoint)
        self.records_replayed += state.replayed_records
        if self.obs is not None:
            self.obs.metrics.counter("aggregator_restarts").inc()
            self.obs.metrics.counter("wal_replayed_records").inc(
                state.replayed_records)
            self.obs.events.event("aggregator_restored", t=t,
                                  wal_replayed=state.replayed_records)

    def snapshot(self, t: int) -> None:
        """Snapshot now (the pump calls this on the config cadence)."""
        endpoint_state = (self.endpoint.export_dedup_state()
                          if self.endpoint is not None
                          else {"seen": [], "received": 0, "duplicates": 0})
        self.store.take_snapshot(t, self.aggregator.export_state(),
                                 endpoint_state)

    # -- mutation surfaces (log first, then apply) --------------------------------

    def ingest_wire_batch(self, t: int, batch: "SampleBatch") -> None:
        """Endpoint batch sink: one accepted non-duplicate upload batch."""
        self.store.log_wire_batch(t, batch)
        for sample in batch.samples:
            self.aggregator.ingest(sample)
        if self.reference is not None:
            for sample in batch.samples:
                self.reference.ingest(sample)

    def ingest_columns(self, t: int, columns: SampleColumns,
                       samples: Optional[list[CpiSample]] = None) -> None:
        """Clean-mode upward path: one closed window, columnar."""
        if samples is None:
            samples = columns.to_samples()
        self.store.log_ingest(t, samples)
        self.aggregator.ingest_batch(columns)
        if self.reference is not None:
            self.reference.ingest_batch(columns)

    def maybe_recompute(self, now: int) -> Optional[dict[SpecKey, CpiSpec]]:
        """The refresh check; a down service publishes nothing."""
        if self._down_until is not None:
            return None
        published = self.aggregator.maybe_recompute(now)
        if published is not None:
            self.store.log_refresh(now)
            if self.reference is not None:
                self.reference.recompute(now)
        return published

    def recompute(self, now: int) -> dict[SpecKey, CpiSpec]:
        """Force a refresh (operator path), WAL-logged like any other."""
        published = self.aggregator.recompute(now)
        self.store.log_refresh(now)
        if self.reference is not None:
            self.reference.recompute(now)
        return published

    def set_spec(self, spec: CpiSpec) -> None:
        """Warm-start injection, WAL-logged so restores keep it."""
        self.store.log_set_spec(spec)
        self.aggregator.set_spec(spec)
        if self.reference is not None:
            self.reference.set_spec(spec)

    # -- drift accounting --------------------------------------------------------

    def reference_drift(self) -> dict:
        """Compare the durable aggregator against the reference shadow.

        Hex-exact float comparison over published specs and in-period
        Welford accumulators: ``exact`` is True only when every value is
        bit-identical, which is the soak harness's zero-drift bar.
        """
        if self.reference is None:
            raise RuntimeError("no reference attached; "
                               "call attach_reference() first")

        def canon(aggregator: CpiAggregator) -> list:
            state = aggregator.export_state()
            return [
                [(s["jobname"], s["platforminfo"], s["num_samples"],
                  float(s["cpu_usage_mean"]).hex(), float(s["cpi_mean"]).hex(),
                  float(s["cpi_stddev"]).hex()) for s in state["specs"]],
                [(c["jobname"], c["platforminfo"], c["count"],
                  float(c["mean"]).hex(), float(c["m2"]).hex(),
                  float(c["usage_sum"]).hex(), sorted(
                      c["samples_per_task"].items()))
                 for c in state["current"]],
                state["last_refresh"], state["total_ingested"],
                state["total_rejected"],
            ]

        durable = canon(self.aggregator)
        shadow = canon(self.reference)
        return {
            "exact": durable == shadow,
            "specs_compared": len(shadow[0]),
            "accumulators_compared": len(shadow[1]),
        }
