"""Durable storage for specs, samples and incident logs.

Two of CPI2's data flows outlive a process:

* **Spec history** — "Other jobs run repeatedly, and have similar behavior
  on each invocation, so historical CPI data has significant value: if we
  have seen a previous run of a job, we don't have to build a new model of
  its CPI behavior from scratch."  (Section 3.1.)
* **The incident log** — "To allow offline analysis, we log and store data
  about CPIs and suspected antagonists."  (Section 5.)

Everything here is JSON-lines: one record per line, append-friendly,
greppable, and loadable into the matching in-memory types.

Loaders tolerate a *torn tail*: a final line that fails to parse (partial
JSON from a write interrupted by a crash) is skipped with a counted
``storage_torn_tail`` warning — the same rule the spec-store WAL recovery
applies — while corruption anywhere earlier in the file still raises with
the path and line number.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.core.forensics import ForensicsStore, IncidentRecord
from repro.obs import Observability, default_observability
from repro.records import CpiSample, CpiSpec

__all__ = [
    "spec_to_dict", "spec_from_dict", "save_specs", "load_specs",
    "sample_to_dict", "sample_from_dict", "save_samples", "load_samples",
    "save_forensics", "load_forensics",
]

PathLike = Union[str, Path]


def _load_jsonl(path: PathLike, parse: Callable[[dict], object], kind: str,
                obs: Optional[Observability] = None) -> list:
    """Parse one record per line, torn-tail tolerant.

    A record that fails to parse raises ``ValueError`` naming the path and
    line — unless it is the final non-blank line *and* the failure is a
    JSON parse error (partial JSON is what an interrupted write leaves
    behind), in which case the torn tail is skipped with a counted
    warning.  A final line that parses as JSON but has the wrong schema is
    not a torn write and still raises.
    """
    with open(path, encoding="utf-8") as handle:
        lines = handle.readlines()
    last = max((i for i, line in enumerate(lines) if line.strip()),
               default=-1)
    out: list = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as error:
            if index != last:
                raise ValueError(
                    f"{path}:{index + 1}: {error}") from error
            obs = obs or default_observability()
            obs.metrics.counter("storage_torn_tail", kind=kind).inc()
            obs.events.warning("storage_torn_tail", path=str(path),
                               line=index + 1, kind=kind, error=str(error))
            continue
        try:
            out.append(parse(record))
        except ValueError as error:
            raise ValueError(f"{path}:{index + 1}: {error}") from error
    return out


# -- specs ---------------------------------------------------------------------

def spec_to_dict(spec: CpiSpec) -> dict:
    """A plain-dict form of one spec (JSON-safe)."""
    return {
        "jobname": spec.jobname,
        "platforminfo": spec.platforminfo,
        "num_samples": spec.num_samples,
        "cpu_usage_mean": spec.cpu_usage_mean,
        "cpi_mean": spec.cpi_mean,
        "cpi_stddev": spec.cpi_stddev,
    }


def spec_from_dict(data: dict) -> CpiSpec:
    """Rebuild a spec; raises on missing/extra keys so corruption is loud."""
    expected = {"jobname", "platforminfo", "num_samples", "cpu_usage_mean",
                "cpi_mean", "cpi_stddev"}
    if set(data) != expected:
        raise ValueError(
            f"bad spec record: keys {sorted(data)} != {sorted(expected)}")
    return CpiSpec(**data)


def save_specs(path: PathLike, specs: Iterable[CpiSpec]) -> int:
    """Write specs as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for spec in specs:
            handle.write(json.dumps(spec_to_dict(spec)) + "\n")
            count += 1
    return count


def load_specs(path: PathLike,
               obs: Optional[Observability] = None) -> list[CpiSpec]:
    """Read specs written by :func:`save_specs` (torn-tail tolerant)."""
    return _load_jsonl(path, spec_from_dict, "specs", obs=obs)


# -- samples ---------------------------------------------------------------------

def sample_to_dict(sample: CpiSample) -> dict:
    """A plain-dict form of one sample (JSON-safe)."""
    return {
        "jobname": sample.jobname,
        "platforminfo": sample.platforminfo,
        "timestamp": sample.timestamp,
        "cpu_usage": sample.cpu_usage,
        "cpi": sample.cpi,
        "taskname": sample.taskname,
    }


def sample_from_dict(data: dict) -> CpiSample:
    """Rebuild a sample from its dict form."""
    expected = {"jobname", "platforminfo", "timestamp", "cpu_usage", "cpi",
                "taskname"}
    if set(data) != expected:
        raise ValueError(
            f"bad sample record: keys {sorted(data)} != {sorted(expected)}")
    return CpiSample(**data)


def save_samples(path: PathLike, samples: Iterable[CpiSample]) -> int:
    """Write samples as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for sample in samples:
            handle.write(json.dumps(sample_to_dict(sample)) + "\n")
            count += 1
    return count


def load_samples(path: PathLike,
                 obs: Optional[Observability] = None) -> list[CpiSample]:
    """Read samples written by :func:`save_samples` (torn-tail tolerant)."""
    return _load_jsonl(path, sample_from_dict, "samples", obs=obs)


# -- forensics --------------------------------------------------------------------

def save_forensics(path: PathLike, store: ForensicsStore) -> int:
    """Persist an incident log; returns the number of records written."""
    rows = store.to_dicts()
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return len(rows)


def load_forensics(path: PathLike,
                   obs: Optional[Observability] = None) -> ForensicsStore:
    """Load an incident log written by :func:`save_forensics`."""
    field_names = set(IncidentRecord.__dataclass_fields__)

    def parse(data: dict) -> IncidentRecord:
        if set(data) != field_names:
            raise ValueError("bad incident record keys")
        return IncidentRecord(**data)

    store = ForensicsStore()
    for record in _load_jsonl(path, parse, "forensics", obs=obs):
        store.add_record(record)
    return store
