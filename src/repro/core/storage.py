"""Durable storage for specs, samples and incident logs.

Two of CPI2's data flows outlive a process:

* **Spec history** — "Other jobs run repeatedly, and have similar behavior
  on each invocation, so historical CPI data has significant value: if we
  have seen a previous run of a job, we don't have to build a new model of
  its CPI behavior from scratch."  (Section 3.1.)
* **The incident log** — "To allow offline analysis, we log and store data
  about CPIs and suspected antagonists."  (Section 5.)

Everything here is JSON-lines: one record per line, append-friendly,
greppable, and loadable into the matching in-memory types.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Union

from repro.core.forensics import ForensicsStore, IncidentRecord
from repro.records import CpiSample, CpiSpec

__all__ = [
    "spec_to_dict", "spec_from_dict", "save_specs", "load_specs",
    "sample_to_dict", "sample_from_dict", "save_samples", "load_samples",
    "save_forensics", "load_forensics",
]

PathLike = Union[str, Path]


# -- specs ---------------------------------------------------------------------

def spec_to_dict(spec: CpiSpec) -> dict:
    """A plain-dict form of one spec (JSON-safe)."""
    return {
        "jobname": spec.jobname,
        "platforminfo": spec.platforminfo,
        "num_samples": spec.num_samples,
        "cpu_usage_mean": spec.cpu_usage_mean,
        "cpi_mean": spec.cpi_mean,
        "cpi_stddev": spec.cpi_stddev,
    }


def spec_from_dict(data: dict) -> CpiSpec:
    """Rebuild a spec; raises on missing/extra keys so corruption is loud."""
    expected = {"jobname", "platforminfo", "num_samples", "cpu_usage_mean",
                "cpi_mean", "cpi_stddev"}
    if set(data) != expected:
        raise ValueError(
            f"bad spec record: keys {sorted(data)} != {sorted(expected)}")
    return CpiSpec(**data)


def save_specs(path: PathLike, specs: Iterable[CpiSpec]) -> int:
    """Write specs as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for spec in specs:
            handle.write(json.dumps(spec_to_dict(spec)) + "\n")
            count += 1
    return count


def load_specs(path: PathLike) -> list[CpiSpec]:
    """Read specs written by :func:`save_specs`."""
    specs = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                specs.append(spec_from_dict(json.loads(line)))
            except (ValueError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: {error}") from error
    return specs


# -- samples ---------------------------------------------------------------------

def sample_to_dict(sample: CpiSample) -> dict:
    """A plain-dict form of one sample (JSON-safe)."""
    return {
        "jobname": sample.jobname,
        "platforminfo": sample.platforminfo,
        "timestamp": sample.timestamp,
        "cpu_usage": sample.cpu_usage,
        "cpi": sample.cpi,
        "taskname": sample.taskname,
    }


def sample_from_dict(data: dict) -> CpiSample:
    """Rebuild a sample from its dict form."""
    expected = {"jobname", "platforminfo", "timestamp", "cpu_usage", "cpi",
                "taskname"}
    if set(data) != expected:
        raise ValueError(
            f"bad sample record: keys {sorted(data)} != {sorted(expected)}")
    return CpiSample(**data)


def save_samples(path: PathLike, samples: Iterable[CpiSample]) -> int:
    """Write samples as JSON lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for sample in samples:
            handle.write(json.dumps(sample_to_dict(sample)) + "\n")
            count += 1
    return count


def load_samples(path: PathLike) -> list[CpiSample]:
    """Read samples written by :func:`save_samples`."""
    samples = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                samples.append(sample_from_dict(json.loads(line)))
            except (ValueError, json.JSONDecodeError) as error:
                raise ValueError(
                    f"{path}:{line_number}: {error}") from error
    return samples


# -- forensics --------------------------------------------------------------------

def save_forensics(path: PathLike, store: ForensicsStore) -> int:
    """Persist an incident log; returns the number of records written."""
    rows = store.to_dicts()
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row) + "\n")
    return len(rows)


def load_forensics(path: PathLike) -> ForensicsStore:
    """Load an incident log written by :func:`save_forensics`."""
    store = ForensicsStore()
    field_names = set(IncidentRecord.__dataclass_fields__)
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if set(data) != field_names:
                raise ValueError(
                    f"{path}:{line_number}: bad incident record keys")
            store.add_record(IncidentRecord(**data))
    return store
