"""Hard-capping: CPI2's actuator (paper Section 5).

"If the suspected antagonist is a batch job and the victim is a
latency-sensitive one, then we forcibly reduce the antagonist's CPU usage by
applying CPU hard-capping ... Performance caps are currently applied for 5
minutes at a time, and we limit the antagonist to 0.01 CPU-sec/sec for
low-importance ('best effort') batch jobs and 0.1 CPU-sec/sec for other job
types."

:class:`ThrottleController` issues those caps against task cgroups and keeps
an audit trail.  :class:`AdaptiveCapController` implements the Section 9
future-work idea: "a feedback-driven policy that dynamically adjusts the
amount of throttling to keep the victim CPI degradation just below an
acceptable threshold" — it widens or tightens the quota between episodes
based on whether the victim actually recovered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.task import SchedulingClass, Task
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.obs import Observability

__all__ = ["CapAction", "ThrottleController", "AdaptiveCapController"]


@dataclass(frozen=True)
class CapAction:
    """One hard-capping decision, for the audit log."""

    taskname: str
    jobname: str
    quota: float
    applied_at: int
    expires_at: int
    victim_taskname: Optional[str] = None
    correlation: Optional[float] = None


class ThrottleController:
    """Applies and releases CFS bandwidth caps on antagonist tasks."""

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 obs: Optional[Observability] = None):
        self.config = config
        self.actions: list[CapAction] = []
        #: Telemetry handle; the owning agent injects its own if unset.
        self.obs = obs

    def quota_for(self, task: Task) -> float:
        """The cap quota the policy assigns to this task's class."""
        if task.scheduling_class is SchedulingClass.BEST_EFFORT:
            return self.config.hardcap_quota_best_effort
        return self.config.hardcap_quota_batch

    def cap(self, task: Task, now: int,
            victim_taskname: Optional[str] = None,
            correlation: Optional[float] = None,
            quota: Optional[float] = None,
            duration: Optional[int] = None) -> CapAction:
        """Hard-cap ``task`` starting now.

        Args:
            task: the antagonist to throttle.
            now: current simulation time, seconds.
            victim_taskname: the victim this cap protects, for the audit log.
            correlation: the identification score, for the audit log.
            quota: override the class-derived quota (adaptive capping does).
            duration: override the configured duration.
        """
        actual_quota = self.quota_for(task) if quota is None else quota
        actual_duration = (self.config.hardcap_duration
                           if duration is None else duration)
        task.cgroup.apply_cap(actual_quota, now, actual_duration)
        action = CapAction(
            taskname=task.name,
            jobname=task.job.name,
            quota=actual_quota,
            applied_at=now,
            expires_at=now + actual_duration,
            victim_taskname=victim_taskname,
            correlation=correlation,
        )
        self.actions.append(action)
        if self.obs is not None:
            self.obs.metrics.counter("caps_applied").inc()
            self.obs.metrics.histogram(
                "cap_quota", buckets=(0.01, 0.05, 0.1, 0.25, 0.5, 1.0),
            ).observe(actual_quota)
            self.obs.events.event(
                "cap_applied",
                task=task.name,
                job=task.job.name,
                quota=actual_quota,
                applied_at=now,
                expires_at=action.expires_at,
                victim=victim_taskname,
                correlation=correlation,
            )
        return action

    def release(self, task: Task) -> None:
        """Lift a cap early (operator intervention)."""
        task.cgroup.release_cap()
        if self.obs is not None:
            self.obs.events.event("cap_released", task=task.name,
                                  job=task.job.name)

    def active_caps(self, now: int) -> list[CapAction]:
        """Audit-log entries whose caps are still in force at ``now``."""
        return [a for a in self.actions if a.applied_at <= now < a.expires_at]


@dataclass
class _AdaptiveState:
    """Per-antagonist adaptive quota memory."""

    quota: float
    consecutive_successes: int = 0


class AdaptiveCapController(ThrottleController):
    """Feedback-driven capping (paper Section 9, implemented).

    The first cap on an antagonist uses the configured class quota.  After
    each episode the owner reports whether the victim recovered:

    * not recovered -> the quota halves (down to ``min_quota``) so the next
      episode bites harder;
    * recovered twice in a row -> the quota doubles (up to ``max_quota``),
      giving the antagonist back as much CPU as the victim can tolerate —
      the paper's "keep the victim CPI degradation just below an acceptable
      threshold" with the fewest wasted antagonist cycles.
    """

    def __init__(self, config: CpiConfig = DEFAULT_CONFIG,
                 min_quota: float = 0.01, max_quota: float = 1.0):
        super().__init__(config)
        if min_quota <= 0:
            raise ValueError(f"min_quota must be positive, got {min_quota}")
        if max_quota < min_quota:
            raise ValueError("max_quota must be >= min_quota")
        self.min_quota = min_quota
        self.max_quota = max_quota
        self._state: dict[str, _AdaptiveState] = {}

    def cap(self, task: Task, now: int, **kwargs) -> CapAction:
        state = self._state.get(task.name)
        if state is None:
            state = _AdaptiveState(quota=self.quota_for(task))
            self._state[task.name] = state
        kwargs.setdefault("quota", state.quota)
        return super().cap(task, now, **kwargs)

    def report_outcome(self, taskname: str, victim_recovered: bool) -> float:
        """Feed back one episode's outcome; returns the next episode's quota.

        Raises:
            KeyError: if the task was never capped by this controller.
        """
        try:
            state = self._state[taskname]
        except KeyError:
            raise KeyError(f"no adaptive state for {taskname!r}; "
                           "was it capped by this controller?") from None
        if victim_recovered:
            state.consecutive_successes += 1
            if state.consecutive_successes >= 2:
                state.quota = min(self.max_quota, state.quota * 2.0)
                state.consecutive_successes = 0
        else:
            state.quota = max(self.min_quota, state.quota / 2.0)
            state.consecutive_successes = 0
        return state.quota

    def current_quota(self, taskname: str) -> Optional[float]:
        """The quota the next episode would use, or None if never capped."""
        state = self._state.get(taskname)
        return state.quota if state else None
