"""Columnar per-task sample windows (the correlation window's raw material).

The agent used to keep each task's recent samples as a deque of
:class:`~repro.records.CpiSample` objects and walk it attribute-by-attribute
on every analysis (victim series, follow-up CPI, checkpointing).
:class:`ColumnarWindow` stores the same window as numpy ring buffers —
microsecond timestamps, truncated-second timestamps, CPU usage, and CPI —
so the analysis plane reads contiguous float64/int64 slices instead of
boxed Python floats, and batch ingest writes scalars straight from
:class:`~repro.core.samplebatch.SampleColumns` columns.

Two compatibility contracts are preserved exactly:

* ``window.samples`` materialises the window as ``CpiSample`` objects that
  are field-equal to what the old deque held, which keeps the agent
  checkpoint format (``sample_to_dict`` round-trips) byte-identical.
* The capacity is the old ``deque(maxlen=64)``: appending to a full window
  evicts the oldest sample.

The buffers are allocated at twice the capacity so the live region is
always one contiguous slice; when the write cursor hits the end, the last
``capacity`` rows are copied back to the front (amortised O(1) per append,
like a deque, but with zero-copy reads in between).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro.core.records import CpiSample

__all__ = ["WINDOW_CAPACITY", "ColumnarWindow"]

#: Samples retained per task — the old ``deque(maxlen=64)``.
WINDOW_CAPACITY = 64


class ColumnarWindow:
    """Recent samples for one task, stored column-wise."""

    __slots__ = ("taskname", "capacity", "_ts_us", "_ts_sec", "_usage",
                 "_cpi", "_meta", "_start", "_end")

    def __init__(self, taskname: str, capacity: int = WINDOW_CAPACITY):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.taskname = taskname
        self.capacity = capacity
        size = 2 * capacity
        self._ts_us = np.empty(size, dtype=np.int64)
        self._ts_sec = np.empty(size, dtype=np.int64)
        self._usage = np.empty(size, dtype=np.float64)
        self._cpi = np.empty(size, dtype=np.float64)
        #: Per-sample (jobname, platforminfo), evicted in lockstep with the
        #: columns.  Kept for lossless checkpoint round-trips; in practice
        #: every entry is the same tuple object (a task's job and the
        #: machine's platform never change), so this costs one pointer per
        #: sample.
        self._meta: deque[tuple[str, str]] = deque(maxlen=capacity)
        self._start = 0
        self._end = 0

    def __len__(self) -> int:
        return self._end - self._start

    def append(self, timestamp_us: int, timestamp_sec: int, cpu_usage: float,
               cpi: float, jobname: str, platforminfo: str) -> None:
        """Append one sample, evicting the oldest at capacity."""
        end = self._end
        if end == len(self._ts_us):
            # Compact: copy the live tail back to the front.  Amortised:
            # this runs once per ``capacity`` appends.
            start = self._start
            n = end - start
            for column in (self._ts_us, self._ts_sec, self._usage, self._cpi):
                column[:n] = column[start:end]
            self._start = 0
            self._end = end = n
        self._ts_us[end] = timestamp_us
        self._ts_sec[end] = timestamp_sec
        self._usage[end] = cpu_usage
        self._cpi[end] = cpi
        self._meta.append((jobname, platforminfo))
        self._end = end + 1
        if self._end - self._start > self.capacity:
            self._start += 1

    def append_sample(self, sample: CpiSample) -> None:
        """Append one :class:`CpiSample` object (the scalar ingest path)."""
        self.append(sample.timestamp, int(sample.timestamp_seconds),
                    sample.cpu_usage, sample.cpi, sample.jobname,
                    sample.platforminfo)

    # -- columnar reads (zero-copy views, oldest first) -----------------------

    @property
    def timestamps_us(self) -> np.ndarray:
        """Microsecond timestamps, oldest first (int64 view)."""
        return self._ts_us[self._start:self._end]

    @property
    def timestamps_sec(self) -> np.ndarray:
        """Truncated-second timestamps (``int(timestamp_seconds)``), oldest
        first (int64 view)."""
        return self._ts_sec[self._start:self._end]

    @property
    def cpu_usage(self) -> np.ndarray:
        """CPU usage column, oldest first (float64 view)."""
        return self._usage[self._start:self._end]

    @property
    def cpi(self) -> np.ndarray:
        """CPI column, oldest first (float64 view)."""
        return self._cpi[self._start:self._end]

    # -- object-view compatibility -------------------------------------------

    @property
    def samples(self) -> list[CpiSample]:
        """The window as sample objects, field-equal to what was appended.

        This is the compatibility/checkpoint view: ``take_checkpoint`` runs
        ``sample_to_dict`` over it, so restored agents see exactly the
        dicts the deque-based window produced.
        """
        ts = self._ts_us[self._start:self._end].tolist()
        usage = self._usage[self._start:self._end].tolist()
        cpi = self._cpi[self._start:self._end].tolist()
        return [
            CpiSample(jobname=jobname, platforminfo=platforminfo,
                      timestamp=t, cpu_usage=u, cpi=c,
                      taskname=self.taskname)
            for (jobname, platforminfo), t, u, c in zip(self._meta, ts,
                                                        usage, cpi)
        ]

    @classmethod
    def from_samples(cls, taskname: str, samples: Iterable[CpiSample],
                     capacity: int = WINDOW_CAPACITY) -> "ColumnarWindow":
        """Build a window from sample objects (checkpoint restore)."""
        window = cls(taskname, capacity=capacity)
        for sample in samples:
            window.append_sample(sample)
        return window

    def __repr__(self) -> str:
        return (f"ColumnarWindow({self.taskname!r}, n={len(self)}, "
                f"capacity={self.capacity})")
