"""Evaluation experiments: one builder per table/figure in the paper.

The benchmark harness under ``benchmarks/`` is a thin layer over this
package: each benchmark calls one experiment function, prints a
paper-vs-measured report via :mod:`repro.experiments.reporting`, and asserts
the result's *shape* (who wins, directions, crossovers), not absolute
numbers.

Modules:

* :mod:`~repro.experiments.scenarios` — reusable cluster scenario builders.
* :mod:`~repro.experiments.metric_validation` — Figures 2-5, 7, Table 1.
* :mod:`~repro.experiments.casestudies` — Figures 8-13 (cases 1-6).
* :mod:`~repro.experiments.trials` — the Section 7 manual-capping harness.
* :mod:`~repro.experiments.analyses` — Figures 14-16 over trial data.
* :mod:`~repro.experiments.fleet` — Figure 1 and the incident rate.
* :mod:`~repro.experiments.ablations` — design-choice probes.
* :mod:`~repro.experiments.reporting` — paper-vs-measured tables.
"""

from repro.experiments.reporting import Comparison, ExperimentReport
from repro.experiments.scenarios import (
    Scenario,
    build_cluster,
    populated_fleet,
    victim_antagonist_machine,
)
from repro.experiments.trials import TrialConfig, TrialResult, run_trial, run_trials

__all__ = [
    "Comparison",
    "ExperimentReport",
    "Scenario",
    "build_cluster",
    "populated_fleet",
    "victim_antagonist_machine",
    "TrialConfig",
    "TrialResult",
    "run_trial",
    "run_trials",
]
