"""Ablation experiments on CPI2's design choices.

Each function probes one of the parameters or mechanisms the paper fixes by
judgement or measurement: the anomaly window, the minimum-usage gate,
passive vs active identification, the hard-cap quota, spec age-weighting,
and the known blind spot of the correlation scheme (groups of individually
weak antagonists, Section 4.2's closing caveat).  The correlation-threshold
sweep itself lives in :mod:`repro.experiments.analyses` since it reuses the
Section 7 trial data.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.interference import ResourceProfile
from repro.cluster.job import JobSpec
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.core.baselines import ActiveProbeIdentifier
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.correlation import antagonist_correlation, rank_suspects
from repro.core.outlier import OutlierDetector
from repro.experiments.scenarios import victim_antagonist_machine
from repro.experiments.trials import TrialConfig, TrialResult, run_trials
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import CpiSample
from repro.workloads import AntagonistKind
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import constant, on_off, with_noise

__all__ = [
    "WindowPolicyResult", "anomaly_window_policies",
    "UsageGateResult", "usage_gate_sweep",
    "PassiveActiveResult", "passive_vs_active",
    "CapQuotaResult", "cap_quota_sweep",
    "AgeWeightResult", "age_weight_sweep",
    "GroupAntagonistResult", "group_antagonists",
    "ActuatorComparisonResult", "cfs_vs_duty_cycle",
    "SpecConvergenceResult", "spec_convergence",
]


# -- anomaly-window policy ---------------------------------------------------

@dataclass
class WindowPolicyResult:
    """Anomalies raised under different k-in-window policies, same stream."""

    policy: str
    anomalies_interference: int
    anomalies_noise_only: int


def anomaly_window_policies(seed: int = 0, minutes: int = 120
                            ) -> list[WindowPolicyResult]:
    """Probe the 3-in-5-minutes rule against 1-shot and stricter variants.

    Two sample streams are replayed through each detector configuration: one
    from a genuinely interfered victim, one from a healthy victim whose spec
    is fitted to its own noise (so ~2% of samples flag by construction).
    The paper's rule should keep the real anomalies while dropping the
    spurious ones a 1-shot rule raises.
    """
    from repro.records import CpiSpec

    interfered = _victim_sample_stream(seed, interfered=True,
                                       minutes=minutes)
    healthy = _victim_sample_stream(seed + 1, interfered=False,
                                    minutes=minutes)
    interfered_spec = CpiSpec("victim-service", "westmere-2.6", 1000, 1.0,
                              1.05, 0.08)
    healthy_cpis = [s.cpi for s in healthy]
    healthy_spec = CpiSpec(
        "victim-service", "westmere-2.6", 1000, 1.0,
        float(np.mean(healthy_cpis)),
        max(1e-3, float(np.std(healthy_cpis))))

    policies = [
        ("1-shot", DEFAULT_CONFIG.with_overrides(anomaly_violations=1)),
        ("3-in-5-min (paper)", DEFAULT_CONFIG),
        ("5-in-5-min", DEFAULT_CONFIG.with_overrides(anomaly_violations=5)),
    ]
    return [
        WindowPolicyResult(
            policy=name,
            anomalies_interference=_replay(interfered, config,
                                           interfered_spec),
            anomalies_noise_only=_replay(healthy, config, healthy_spec),
        )
        for name, config in policies
    ]


def _victim_sample_stream(seed: int, interfered: bool,
                          minutes: int = 40) -> list[CpiSample]:
    """A per-minute victim sample stream, interfered or noise-only."""
    scenario, victim, antagonist = victim_antagonist_machine(
        seed=seed,
        antagonist_kind=AntagonistKind.CACHE_THRASHER,
        antagonist_scale=1.2 if interfered else 0.0,
    )
    samples: list[CpiSample] = []
    scenario.simulation.add_sample_sink(
        lambda t, name, batch: samples.extend(
            s for s in batch if s.jobname == "victim-service"))
    # Detection side effects are irrelevant; disable enforcement.
    for agent in scenario.pipeline.agents.values():
        agent.update_specs({})
    scenario.simulation.run_minutes(minutes)
    return samples


def _replay(samples: list[CpiSample], config: CpiConfig, spec) -> int:
    detector = OutlierDetector(config)
    anomalies = 0
    for sample in samples:
        _, anomaly = detector.observe(sample, spec)
        if anomaly is not None:
            anomalies += 1
    return anomalies


# -- usage gate -----------------------------------------------------------------

@dataclass
class UsageGateResult:
    """False alarms vs the minimum-usage gate setting."""

    min_cpu_usage: float
    false_anomalies_bimodal: int
    true_anomalies_interfered: int


def usage_gate_sweep(gates=(0.0, 0.1, 0.25, 0.5), seed: int = 0
                     ) -> list[UsageGateResult]:
    """Sweep the 0.25 CPU-sec/sec gate (case 3's fix).

    The bimodal stream must stop raising anomalies once the gate reaches the
    paper's value, while a genuinely interfered victim (running at ~1
    CPU-sec/sec) keeps being detected until the gate is absurdly high.
    """
    from repro.experiments.casestudies import case3_bimodal_false_alarm  # noqa: F401
    from repro.workloads.services import make_bimodal_frontend_spec
    from repro.cluster.job import Job
    from repro.cluster.machine import Machine
    from repro.cluster.platform import get_platform
    from repro.records import CpiSpec

    # Bimodal stream (self-inflicted swings).
    machine = Machine("abl-gate", get_platform("westmere-2.6"),
                      cpi_noise_sigma=0.02)
    job = Job(make_bimodal_frontend_spec("bimodal", num_tasks=1, seed=seed,
                                         period=600, cold_start_penalty=6.0))
    machine.place(job.tasks[0])
    sampler = CpiSampler(machine, SamplerConfig())
    bimodal_samples: list[CpiSample] = []
    for t in range(40 * 60):
        machine.tick(t)
        bimodal_samples.extend(sampler.tick(t))
    bimodal_spec = CpiSpec("bimodal", "westmere-2.6", 1000, 0.3, 3.0, 1.0)

    interfered = _victim_sample_stream(seed, interfered=True)
    interfered_spec = CpiSpec("victim-service", "westmere-2.6", 1000, 1.0,
                              1.05, 0.08)

    results = []
    for gate in gates:
        config = DEFAULT_CONFIG.with_overrides(min_cpu_usage=gate)
        results.append(UsageGateResult(
            min_cpu_usage=gate,
            false_anomalies_bimodal=_replay(bimodal_samples, config,
                                            bimodal_spec),
            true_anomalies_interfered=_replay(interfered, config,
                                              interfered_spec),
        ))
    return results


# -- passive vs active identification ----------------------------------------------

@dataclass
class PassiveActiveResult:
    """The paper's argument quantified: identification accuracy vs disruption."""

    passive_identified_correctly: bool
    passive_top_correlation: float
    passive_cpu_seconds_denied: float
    active_identified_correctly: bool
    active_probes: int
    active_innocents_disrupted: int
    active_cpu_seconds_denied: float
    active_seconds_elapsed: int


def passive_vs_active(seed: int = 0) -> PassiveActiveResult:
    """Compare Section 4.2's passive correlation with the active probe scheme.

    Both face the same machine: a sensitive victim, a bursty real antagonist,
    and an innocent CPU spinner that out-consumes everyone.  Passive
    identification costs nobody anything; the active scheme gets there by
    throttling innocents first.
    """
    from repro.testing import (
        NOISY_NEIGHBOR_PROFILE,
        QUIET_PROFILE,
        SENSITIVE_PROFILE,
        make_quiet_machine,
        make_scripted_job,
    )

    machine = make_quiet_machine("abl-active")
    rng = np.random.default_rng(seed)
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    machine.place(victim.tasks[0])
    antagonist_job = JobSpec(
        name="ant", num_tasks=1, scheduling_class=SchedulingClass.BATCH,
        priority_band=PriorityBand.NONPRODUCTION, cpu_limit_per_task=8.0,
        workload_factory=lambda i: SyntheticWorkload(
            base_cpi=1.5, profile=NOISY_NEIGHBOR_PROFILE,
            demand=with_noise(on_off(4.0, 0.3, period=240, duty=0.5), 0.05,
                              rng),
            threads=8))
    from repro.cluster.job import Job
    ant = Job(antagonist_job)
    machine.place(ant.tasks[0])
    spinner = make_scripted_job("spin", [6.0], cpu_limit=8.0,
                                scheduling_class=SchedulingClass.BATCH,
                                profile=QUIET_PROFILE, base_cpi=0.7)
    machine.place(spinner.tasks[0])

    sim = ClusterSimulation([machine], SimConfig(seed=seed))
    sampler = CpiSampler(machine, SamplerConfig())
    victim_samples: list[CpiSample] = []
    for _ in range(20 * 60):
        sim.step()
        t = sim.now - 1
        for sample in sampler.tick(t):
            if sample.taskname == "victim/0":
                victim_samples.append(sample)

    # Passive: one correlation pass over the last 10 minutes.
    window = [s for s in victim_samples if s.timestamp_seconds > sim.now - 600]
    timestamps = [int(s.timestamp_seconds) for s in window]
    threshold = 1.0 * 1.2  # mean 1.0, ~2 sigma
    suspects = {}
    for task in machine.resident_tasks():
        if task.job.name == "victim":
            continue
        usage = [task.cgroup.usage_between(ts - 10, ts) for ts in timestamps]
        suspects[task.name] = (task.job.name, usage)
    ranked = rank_suspects([s.cpi for s in window], threshold, suspects)
    passive_correct = ranked[0].jobname == "ant"

    # Active: probe one by one, hungriest first.
    probe = ActiveProbeIdentifier(sim, machine, probe_seconds=60)
    report = probe.identify(victim.tasks[0])
    return PassiveActiveResult(
        passive_identified_correctly=passive_correct,
        passive_top_correlation=ranked[0].correlation,
        passive_cpu_seconds_denied=0.0,
        active_identified_correctly=(report.identified == "ant/0"),
        active_probes=report.probes_run,
        active_innocents_disrupted=len(report.innocents_disrupted),
        active_cpu_seconds_denied=report.cpu_seconds_denied,
        active_seconds_elapsed=report.seconds_elapsed,
    )


# -- hard-cap quota -------------------------------------------------------------------

@dataclass
class CapQuotaResult:
    """Victim relief and antagonist cost at one cap quota."""

    quota: float
    victim_relative_cpi: float
    antagonist_usage_during_cap: float


def cap_quota_sweep(quotas=(0.01, 0.1, 0.5, 1.0, 2.0), seed: int = 0
                    ) -> list[CapQuotaResult]:
    """Sweep the hard-cap quota (the paper fixes 0.01 / 0.1 CPU-sec/sec).

    Tighter caps buy more victim relief at more antagonist starvation; the
    sweep shows the knee the paper's feedback-driven future work would seek.
    """
    results = []
    for i, quota in enumerate(quotas):
        scenario, victim, antagonist = victim_antagonist_machine(
            seed=seed + i,
            config=DEFAULT_CONFIG.with_overrides(auto_throttle=False),
            antagonist_kind=AntagonistKind.CACHE_THRASHER,
            antagonist_scale=1.3)
        samples: list[CpiSample] = []
        scenario.simulation.add_sample_sink(
            lambda t, name, batch: samples.extend(
                s for s in batch if s.jobname == "victim-service"))
        sim = scenario.simulation
        sim.run_minutes(15)
        pre = [s.cpi for s in samples if s.timestamp_seconds > sim.now - 600]
        cgroup = antagonist.tasks[0].cgroup
        cap_start = sim.now
        cgroup.apply_cap(quota, now=sim.now, duration=300)
        sim.run(300)
        post = [s.cpi for s in samples if s.timestamp_seconds > cap_start]
        results.append(CapQuotaResult(
            quota=quota,
            victim_relative_cpi=(float(np.mean(post)) / float(np.mean(pre))
                                 if pre and post else float("nan")),
            antagonist_usage_during_cap=cgroup.usage_between(
                cap_start, cap_start + 300),
        ))
    return results


# -- age weighting --------------------------------------------------------------------

@dataclass
class AgeWeightResult:
    """Spec tracking error under one age-weighting factor."""

    age_weight: float
    mean_abs_error: float
    worst_abs_error: float


def age_weight_sweep(weights=(0.0, 0.5, 0.9, 1.0), days: int = 14,
                     drift_per_day: float = 0.04, day_noise: float = 0.05,
                     samples_per_day: int = 60, seed: int = 0
                     ) -> list[AgeWeightResult]:
    """Sweep the 0.9/day history weight against a slowly drifting true CPI.

    Each simulated day feeds the aggregator a modest batch of samples drawn
    around a drifting-and-jittering true mean (small daily batches make the
    day estimate itself noisy — the regime where history helps).  Too little
    history (0.0) chases the daily jitter; too much (1.0) never forgets old
    levels; the paper's 0.9 balances the two.
    """
    from repro.core.aggregator import CpiAggregator
    from repro.records import CpiSample

    results = []
    for weight in weights:
        config = CpiConfig(history_age_weight=weight, min_tasks_for_spec=3,
                           min_samples_per_task=5)
        aggregator = CpiAggregator(config)
        rng = np.random.default_rng(np.random.SeedSequence((seed, 17)))
        true_mean = 1.5
        errors = []
        for day in range(days):
            true_mean += drift_per_day
            day_level = true_mean * float(
                np.exp(rng.normal(0.0, day_noise)))
            for i in range(samples_per_day):
                aggregator.ingest(CpiSample(
                    jobname="drifting", platforminfo="westmere-2.6",
                    timestamp=(day * 86400 + i * 60) * 1_000_000,
                    cpu_usage=1.0,
                    cpi=max(0.01, day_level
                            + float(rng.normal(0.0, 0.15))),
                    taskname=f"drifting/{i % 6}"))
            specs = aggregator.recompute(day * 86400)
            spec = next(iter(specs.values()))
            if day >= 2:  # skip the cold-start days every weight shares
                errors.append(abs(spec.cpi_mean - true_mean))
        results.append(AgeWeightResult(
            age_weight=weight,
            mean_abs_error=float(np.mean(errors)),
            worst_abs_error=float(np.max(errors)),
        ))
    return results


# -- group antagonists ------------------------------------------------------------------

@dataclass
class GroupAntagonistResult:
    """Section 4.2's caveat, measured.

    The failure mode is not mis-ranking — every member *is* guilty while it
    runs — but that throttling the single top suspect barely helps, because
    the remaining members keep taking their turns.  Throttling the group as
    a unit is what restores the victim, which is the paper's suggested
    extension ("looking at groups of antagonists as a unit").
    """

    num_antagonists: int
    max_individual_correlation: float
    group_correlation: float
    victim_cpi_inflation: float
    relative_cpi_top1_capped: float
    relative_cpi_group_capped: float


def group_antagonists(group_size: int = 4, seed: int = 0
                      ) -> GroupAntagonistResult:
    """A group of antagonists that take turns filling the cache."""
    from repro.cluster.job import Job
    from repro.cluster.machine import Machine
    from repro.cluster.platform import get_platform
    from repro.testing import SENSITIVE_PROFILE, make_scripted_job

    machine = Machine("abl-group", get_platform("westmere-2.6"),
                      cpi_noise_sigma=0.02,
                      rng=np.random.default_rng(seed))
    victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                               base_cpi=1.0, profile=SENSITIVE_PROFILE)
    machine.place(victim.tasks[0])

    heavy = ResourceProfile(cache_mib_per_cpu=8.0, membw_gbps_per_cpu=5.0,
                            cache_sensitivity=0.1, membw_sensitivity=0.1,
                            base_l3_mpki=15.0)
    period = 60 * group_size
    rng = np.random.default_rng(seed)
    members = []
    for i in range(group_size):
        spec = JobSpec(
            name=f"member-{i}", num_tasks=1,
            scheduling_class=SchedulingClass.BATCH,
            priority_band=PriorityBand.NONPRODUCTION, cpu_limit_per_task=8.0,
            workload_factory=lambda idx, i=i: SyntheticWorkload(
                base_cpi=1.5, profile=heavy,
                demand=with_noise(
                    on_off(4.0, 0.0, period=period,
                           duty=1.0 / group_size, phase=-i * 60), 0.05, rng),
                threads=4))
        job = Job(spec)
        machine.place(job.tasks[0])
        members.append(job.tasks[0])

    sampler = CpiSampler(machine, SamplerConfig())
    victim_samples: list[CpiSample] = []
    for t in range(30 * 60):
        machine.tick(t)
        for sample in sampler.tick(t):
            if sample.taskname == "victim/0":
                victim_samples.append(sample)

    window = victim_samples[-10:]
    timestamps = [int(s.timestamp_seconds) for s in window]
    cpis = [s.cpi for s in window]
    threshold = 1.2
    individual = []
    usages = []
    for member in members:
        usage = [member.cgroup.usage_between(ts - 10, ts)
                 for ts in timestamps]
        usages.append(usage)
        individual.append(antagonist_correlation(cpis, usage, threshold))
    combined = [sum(u) for u in zip(*usages)]
    group_corr = antagonist_correlation(cpis, combined, threshold)
    pre_cpi = float(np.mean(cpis))
    inflation = pre_cpi / 1.0

    def run_capped(capped_tasks, start):
        for task in capped_tasks:
            task.cgroup.apply_cap(0.1, now=start, duration=300)
        observed = []
        for t in range(start, start + 300):
            machine.tick(t)
            for sample in sampler.tick(t):
                if sample.taskname == "victim/0":
                    observed.append(sample.cpi)
        for task in capped_tasks:
            task.cgroup.release_cap()
        return float(np.mean(observed)) if observed else float("nan")

    # Arm 1: cap only the top-ranked member — the rest keep taking turns.
    top = members[int(np.argmax(individual))]
    now = 30 * 60
    top1_cpi = run_capped([top], now)
    # Recovery gap, then arm 2: cap the whole group as a unit.
    for t in range(now + 300, now + 900):
        machine.tick(t)
        sampler.tick(t)
    group_cpi = run_capped(members, now + 900)

    return GroupAntagonistResult(
        num_antagonists=group_size,
        max_individual_correlation=max(individual),
        group_correlation=group_corr,
        victim_cpi_inflation=inflation,
        relative_cpi_top1_capped=top1_cpi / pre_cpi,
        relative_cpi_group_capped=group_cpi / pre_cpi,
    )


# -- CFS capping vs hardware duty-cycle modulation -------------------------------

@dataclass
class ActuatorComparisonResult:
    """Section 8's actuator trade-off, measured."""

    victim_relative_cpi_cfs: float
    victim_relative_cpi_duty: float
    bystander_cpu_loss_cfs: float
    bystander_cpu_loss_duty: float
    duty_level: float
    duty_core_share: float


def cfs_vs_duty_cycle(seed: int = 0) -> ActuatorComparisonResult:
    """Compare the paper's CFS hard-capping against duty-cycle modulation.

    Both actuators throttle the same antagonist on a machine that also hosts
    an innocent latency-sensitive bystander.  CFS bandwidth control confines
    the damage to the target cgroup; duty-cycle modulation gates cores, so
    the bystander loses CPU too — the paper's stated reason for choosing the
    kernel mechanism.
    """
    from repro.cluster.machine import Machine
    from repro.cluster.platform import get_platform
    from repro.core.baselines.duty_cycle import DutyCycleThrottler
    from repro.core.throttle import ThrottleController
    from repro.testing import (
        NOISY_NEIGHBOR_PROFILE,
        SENSITIVE_PROFILE,
        make_scripted_job,
    )

    def build():
        machine = Machine("abl-actuator", get_platform("westmere-2.6"),
                          rng=np.random.default_rng(seed),
                          cpi_noise_sigma=0.0)
        victim = make_scripted_job("victim", [1.0], cpu_limit=2.0,
                                   base_cpi=1.0, profile=SENSITIVE_PROFILE)
        antagonist = make_scripted_job(
            "ant", [6.0], cpu_limit=8.0,
            scheduling_class=SchedulingClass.BATCH,
            profile=NOISY_NEIGHBOR_PROFILE)
        bystander = make_scripted_job("bystander", [2.0], cpu_limit=4.0,
                                      base_cpi=0.9)
        for job in (victim, antagonist, bystander):
            machine.place(job.tasks[0])
        return machine, victim, antagonist, bystander

    def measure(machine, seconds, start):
        victim_cpis, bystander_cpu = [], 0.0
        for t in range(start, start + seconds):
            result = machine.tick(t)
            victim_cpis.append(result.cpis["victim/0"])
            bystander_cpu += result.grants["bystander/0"]
        return float(np.mean(victim_cpis)), bystander_cpu / seconds

    # Arm 1: CFS bandwidth control.
    machine, victim, antagonist, bystander = build()
    pre_cpi, pre_bystander = measure(machine, 120, 0)
    cfs = ThrottleController(DEFAULT_CONFIG)
    cfs.cap(antagonist.tasks[0], now=120)
    cfs_cpi, cfs_bystander = measure(machine, 120, 120)

    # Arm 2: duty-cycle modulation, fresh identical machine.
    machine, victim, antagonist, bystander = build()
    pre_cpi2, pre_bystander2 = measure(machine, 120, 0)
    duty = DutyCycleThrottler(DEFAULT_CONFIG)
    action = duty.cap(machine, antagonist.tasks[0], now=120)
    duty_cpi, duty_bystander = measure(machine, 120, 120)

    return ActuatorComparisonResult(
        victim_relative_cpi_cfs=cfs_cpi / pre_cpi,
        victim_relative_cpi_duty=duty_cpi / pre_cpi2,
        bystander_cpu_loss_cfs=max(0.0, 1.0 - cfs_bystander / pre_bystander),
        bystander_cpu_loss_duty=max(0.0,
                                    1.0 - duty_bystander / pre_bystander2),
        duty_level=action.level,
        duty_core_share=action.core_share,
    )


# -- spec statistical robustness ---------------------------------------------------

@dataclass
class SpecConvergenceResult:
    """Spec estimation error vs sample-population size."""

    num_samples: int
    mean_error: float
    stddev_error: float


def spec_convergence(populations=(50, 200, 1000, 5000, 20000),
                     true_mean: float = 1.8, true_std: float = 0.16,
                     replicas: int = 20, seed: int = 0
                     ) -> list[SpecConvergenceResult]:
    """Section 3.1's robustness claim, quantified.

    "it is easy to generate tens of thousands of samples within a few hours,
    which helps make the CPI spec statistically robust."  For each population
    size, fit many spec replicas against samples drawn from the paper's
    Figure 7 distribution and record the mean absolute error of the learned
    mean and stddev.  Error should shrink roughly as 1/sqrt(n), putting the
    tens-of-thousands regime far inside the safe zone for a 2-sigma
    threshold.
    """
    from scipy import stats as sps

    from repro.core.aggregator import CpiAggregator
    from repro.records import CpiSample

    # The paper's GEV fit (scipy's c = -xi).
    distribution = sps.genextreme(0.0534, loc=true_mean - 0.07,
                                  scale=0.133)
    results = []
    for n in populations:
        mean_errors, std_errors = [], []
        for replica in range(replicas):
            rng = np.random.default_rng(
                np.random.SeedSequence((seed, n, replica)))
            config = CpiConfig(min_tasks_for_spec=1, min_samples_per_task=1)
            aggregator = CpiAggregator(config)
            values = distribution.rvs(n, random_state=rng)
            for i, value in enumerate(values):
                aggregator.ingest(CpiSample(
                    jobname="conv", platforminfo="westmere-2.6",
                    timestamp=i * 60_000_000, cpu_usage=1.0,
                    cpi=max(0.01, float(value)), taskname=f"conv/{i % 40}"))
            spec = next(iter(aggregator.recompute(0).values()))
            mean_errors.append(abs(spec.cpi_mean - distribution.mean()))
            std_errors.append(abs(spec.cpi_stddev - distribution.std()))
        results.append(SpecConvergenceResult(
            num_samples=n,
            mean_error=float(np.mean(mean_errors)),
            stddev_error=float(np.mean(std_errors)),
        ))
    return results
