"""Offline analyses over Section 7 trials (Figures 14, 15 and 16).

These are pure functions over :class:`~repro.experiments.trials.TrialResult`
lists; the trial harness records raw correlations and pre/post CPIs so any
correlation threshold can be evaluated after the fact, exactly as the
paper's figures sweep it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.analysis.stats import Ecdf, pearson_correlation
from repro.cluster.task import PriorityBand
from repro.experiments.trials import TrialResult

__all__ = [
    "DetectionRates",
    "detection_rates",
    "tp_rate_confidence_interval",
    "rates_by_threshold",
    "relative_cpi_by_threshold",
    "l3_vs_cpi_correlation",
    "memory_metric_correlations",
    "utilization_correlation",
    "cpi_rel_cdfs",
    "rates_by_cpi_increase",
    "relative_cpi_by_degradation",
    "median_relative_cpi",
]


@dataclass(frozen=True)
class DetectionRates:
    """TP/FP/noise fractions among declared-antagonist trials."""

    threshold: float
    declared: int
    true_positive_rate: float
    false_positive_rate: float
    noise_rate: float


def _declared(trials: Sequence[TrialResult], threshold: float
              ) -> list[TrialResult]:
    """Trials where an antagonist would be declared at ``threshold``."""
    return [t for t in trials
            if t.anomaly_detected and t.top_correlation >= threshold]


def detection_rates(trials: Sequence[TrialResult],
                    threshold: float) -> DetectionRates:
    """Section 7.2's TP/FP rates at one correlation threshold."""
    declared = _declared(trials, threshold)
    if not declared:
        return DetectionRates(threshold, 0, 0.0, 0.0, 0.0)
    labels = [t.classify() for t in declared]
    n = len(labels)
    return DetectionRates(
        threshold=threshold,
        declared=n,
        true_positive_rate=labels.count("tp") / n,
        false_positive_rate=labels.count("fp") / n,
        noise_rate=labels.count("noise") / n,
    )


def tp_rate_confidence_interval(
    trials: Sequence[TrialResult],
    threshold: float = 0.35,
    band: PriorityBand | None = None,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI for the true-positive rate at one threshold.

    A ~400-trial corpus declares on the order of 100 antagonists, so point
    estimates of the TP rate carry real sampling error; the benchmarks
    report this interval next to every headline rate.

    Raises:
        ValueError: if no trials are declared at the threshold.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples < 10:
        raise ValueError(f"resamples must be >= 10, got {resamples}")
    if band is not None:
        trials = [t for t in trials if t.band is band]
    declared = _declared(trials, threshold)
    if not declared:
        raise ValueError(f"no trials declared at threshold {threshold}")
    outcomes = np.array([1.0 if t.classify() == "tp" else 0.0
                         for t in declared])
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(outcomes), size=(resamples, len(outcomes)))
    rates = outcomes[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(rates, alpha)),
            float(np.quantile(rates, 1.0 - alpha)))


def rates_by_threshold(
    trials: Sequence[TrialResult],
    thresholds: Sequence[float] = (0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
    band: PriorityBand | None = None,
) -> list[DetectionRates]:
    """Figure 15a / 16a: detection rates across a threshold sweep."""
    if band is not None:
        trials = [t for t in trials if t.band is band]
    return [detection_rates(trials, th) for th in thresholds]


def relative_cpi_by_threshold(
    trials: Sequence[TrialResult],
    thresholds: Sequence[float] = (0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5),
    band: PriorityBand | None = None,
    true_positives_only: bool = True,
) -> list[tuple[float, float]]:
    """Figure 15b: mean relative CPI of (TP) trials declared at each threshold."""
    if band is not None:
        trials = [t for t in trials if t.band is band]
    out: list[tuple[float, float]] = []
    for threshold in thresholds:
        declared = _declared(trials, threshold)
        if true_positives_only:
            declared = [t for t in declared if t.classify() == "tp"]
        if declared:
            out.append((threshold,
                        float(np.mean([t.relative_cpi for t in declared]))))
        else:
            out.append((threshold, float("nan")))
    return out


def l3_vs_cpi_correlation(trials: Sequence[TrialResult],
                          threshold: float = 0.35) -> float:
    """Figure 15c: linear correlation of relative L3 MPI vs relative CPI.

    Computed over true-positive declared trials, as the paper does; returns
    the Pearson coefficient (the paper reports 0.87).
    """
    tps = [t for t in _declared(trials, threshold)
           if t.classify() == "tp" and np.isfinite(t.relative_l3)]
    if len(tps) < 3:
        raise ValueError(f"too few true positives ({len(tps)}) to correlate")
    return pearson_correlation([t.relative_cpi for t in tps],
                               [t.relative_l3 for t in tps])


def memory_metric_correlations(trials: Sequence[TrialResult],
                               threshold: float = 0.35) -> dict[str, float]:
    """Section 7.2's metric comparison: which memory metric tracks CPI best?

    "We looked at correlations between CPI improvement and several memory
    metrics such as L2 cache misses/instruction, L3 misses/instruction, and
    memory-requests/cycle, and found that L3 misses/instruction shows
    strongest correlation."  Returns the three Pearson coefficients against
    relative CPI over true-positive declared trials.
    """
    tps = [t for t in _declared(trials, threshold) if t.classify() == "tp"]
    out: dict[str, float] = {}
    for name, attr in (("l3_mpi", "relative_l3"),
                       ("l2_mpi", "relative_l2"),
                       ("mem_req_per_cycle", "relative_mem_req_per_cycle")):
        points = [(t.relative_cpi, getattr(t, attr)) for t in tps
                  if np.isfinite(getattr(t, attr))]
        if len(points) < 3:
            raise ValueError(f"too few points for {name}")
        out[name] = pearson_correlation([p[0] for p in points],
                                        [p[1] for p in points])
    return out


def utilization_correlation(trials: Sequence[TrialResult]
                            ) -> tuple[float, float]:
    """Figure 14a/14c: does antagonism correlate with machine load?

    Returns (corr(utilization, top correlation), corr(utilization, CPI
    degradation)) over anomaly-detected trials.  The paper finds neither
    relationship ("antagonism is not correlated with machine load").
    """
    detected = [t for t in trials if t.anomaly_detected]
    if len(detected) < 3:
        raise ValueError("too few detected trials")
    utils = [t.utilization for t in detected]
    corr_vs_util = pearson_correlation(utils,
                                       [t.top_correlation for t in detected])
    cpi_vs_util = pearson_correlation(utils,
                                      [t.cpi_degradation for t in detected])
    return corr_vs_util, cpi_vs_util


def cpi_rel_cdfs(trials: Sequence[TrialResult], threshold: float = 0.35
                 ) -> tuple[Ecdf, Ecdf]:
    """Figure 14d: CPI-degradation CDFs with vs without an identified antagonist."""
    with_ant = [t.cpi_degradation for t in trials
                if t.anomaly_detected and t.top_correlation >= threshold]
    without = [t.cpi_degradation for t in trials
               if not (t.anomaly_detected and t.top_correlation >= threshold)]
    if not with_ant or not without:
        raise ValueError("need trials in both populations")
    return Ecdf(with_ant), Ecdf(without)


def rates_by_cpi_increase(
    trials: Sequence[TrialResult],
    sigma_buckets: Sequence[float] = (2.0, 3.0, 5.0, 8.0, 11.0, 14.0),
    threshold: float = 0.35,
    band: PriorityBand | None = PriorityBand.PRODUCTION,
) -> list[tuple[float, float, int]]:
    """Figure 16b: TP rate bucketed by CPI increase in spec stddevs.

    Returns (min sigmas, TP rate, bucket size) per bucket; the paper's point
    is that declarations below ~3 sigma are unreliable.
    """
    if band is not None:
        trials = [t for t in trials if t.band is band]
    declared = _declared(trials, threshold)
    out = []
    for i, lo in enumerate(sigma_buckets):
        hi = sigma_buckets[i + 1] if i + 1 < len(sigma_buckets) else float("inf")
        bucket = [t for t in declared if lo <= t.cpi_increase_sigmas < hi]
        if bucket:
            tp = sum(1 for t in bucket if t.classify() == "tp") / len(bucket)
        else:
            tp = float("nan")
        out.append((lo, tp, len(bucket)))
    return out


def relative_cpi_by_degradation(
    trials: Sequence[TrialResult],
    threshold: float = 0.35,
    band: PriorityBand | None = PriorityBand.PRODUCTION,
    buckets: Sequence[float] = (1.0, 2.0, 4.0, 6.0),
) -> list[tuple[float, float, int]]:
    """Figure 16c: relative CPI after capping, bucketed by prior degradation."""
    if band is not None:
        trials = [t for t in trials if t.band is band]
    declared = _declared(trials, threshold)
    out = []
    for i, lo in enumerate(buckets):
        hi = buckets[i + 1] if i + 1 < len(buckets) else float("inf")
        bucket = [t for t in declared if lo <= t.cpi_degradation < hi]
        value = (float(np.mean([t.relative_cpi for t in bucket]))
                 if bucket else float("nan"))
        out.append((lo, value, len(bucket)))
    return out


def median_relative_cpi(trials: Sequence[TrialResult],
                        threshold: float = 0.35,
                        band: PriorityBand | None = PriorityBand.PRODUCTION,
                        predicate: Callable[[TrialResult], bool] | None = None
                        ) -> float:
    """Figure 16d: the median victim relative CPI among declared trials.

    The paper reports 0.63 for production jobs (true and false positives
    both included).
    """
    if band is not None:
        trials = [t for t in trials if t.band is band]
    declared = _declared(trials, threshold)
    if predicate is not None:
        declared = [t for t in declared if predicate(t)]
    if not declared:
        raise ValueError("no declared trials")
    return float(np.median([t.relative_cpi for t in declared]))
