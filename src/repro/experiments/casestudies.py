"""The Section 6 case studies (Figures 8-13), reconstructed.

Each function rebuilds the situation a case study describes and returns the
same observables the paper plots: suspect tables with correlations, victim
CPI traces against antagonist CPU usage, thread-count traces, and the
outcome of throttling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.job import Job, JobSpec
from repro.cluster.task import (
    PriorityBand,
    SchedulingClass,
    TaskState,
)
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.policy import PolicyAction
from repro.experiments.scenarios import Scenario, build_cluster
from repro.records import CpiSample
from repro.workloads import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_antagonist_workload,
)
from repro.workloads.batch import LameDuckBehavior, MapReduceWorker
from repro.workloads.demand import constant, with_noise
from repro.workloads.services import (
    make_bimodal_frontend_spec,
    make_service_job_spec,
)

__all__ = [
    "SuspectRow",
    "CaseOneResult", "case1_suspect_ranking",
    "CaseTwoResult", "case2_hardcap_recovery",
    "CaseThreeResult", "case3_bimodal_false_alarm",
    "CaseFourResult", "case4_modest_relief",
    "CaseFiveResult", "case5_lame_duck",
    "CaseSixResult", "case6_mapreduce_exit",
]


@dataclass(frozen=True)
class SuspectRow:
    """One row of a case study's suspect table."""

    jobname: str
    scheduling_class: str
    correlation: float


def _suspect_table(incident, scenario: Scenario, limit: int = 9
                   ) -> list[SuspectRow]:
    rows = []
    for score in incident.suspects[:limit]:
        job = scenario.jobs.get(score.jobname)
        cls = job.scheduling_class.value if job else "unknown"
        rows.append(SuspectRow(score.jobname, cls, score.correlation))
    return rows


def _victim_cpi_tracker(scenario: Scenario, jobname: str) -> list[CpiSample]:
    samples: list[CpiSample] = []
    scenario.simulation.add_sample_sink(
        lambda t, name, batch: samples.extend(
            s for s in batch if s.jobname == jobname))
    return samples


def _mean_cpi(samples: list[CpiSample], start: int, end: int) -> float:
    values = [s.cpi for s in samples if start <= s.timestamp_seconds < end]
    return float(np.mean(values)) if values else float("nan")


# -- Case 1 -------------------------------------------------------------------

@dataclass
class CaseOneResult:
    """Figure 8: the suspect table and the effect of killing the top one."""

    suspects: list[SuspectRow]
    chosen_job: str
    chosen_class: str
    victim_cpi_during: float
    victim_cpi_after_kill: float
    threshold: float


def case1_suspect_ranking(seed: int = 1) -> CaseOneResult:
    """Case 1: a latency-sensitive victim among ~15 tenants; the top suspects
    include several LS services, but the video-processing batch job is both
    the best-correlated and the only throttle-eligible one.  An operator
    kills it and the victim recovers."""
    config = DEFAULT_CONFIG.with_overrides(auto_throttle=False)
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)

    victim = scenario.submit(make_service_job_spec(
        "latency-sensitive-victim", num_tasks=1, seed=int(rng.integers(2**31)),
        base_cpi=1.0, cpu_limit_per_task=2.0))
    scenario.submit(make_antagonist_job_spec(
        "video-processing", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=int(rng.integers(2**31)), demand_scale=1.3,
        cpu_limit_per_task=8.0))
    # The LS co-tenants from the paper's table: real services with real (if
    # modest) shared-resource pressure, so they score non-trivially too.
    for name in ("content-digitizing", "image-front-end", "bigtable-tablet",
                 "storage-server"):
        scenario.submit(make_service_job_spec(
            name, num_tasks=1, seed=int(rng.integers(2**31)),
            base_cpi=1.1, demand_level=1.2, cpu_limit_per_task=2.0))
    for i in range(8):
        scenario.submit(make_service_job_spec(
            f"tenant-{i}", num_tasks=1, seed=int(rng.integers(2**31)),
            base_cpi=0.9, demand_level=0.4, cpu_limit_per_task=1.0))
    scenario.bootstrap_service_spec("latency-sensitive-victim", 1.05, 0.08)

    samples = _victim_cpi_tracker(scenario, "latency-sensitive-victim")
    sim = scenario.simulation
    sim.run_minutes(25)
    incidents = scenario.pipeline.all_incidents()
    if not incidents:
        raise RuntimeError("case 1: no incident detected")
    incident = incidents[-1]
    table = _suspect_table(incident, scenario, limit=5)

    # CPI2 (in report-only mode) names the target; the operator kills it.
    target = incident.decision.target
    if target is None:
        raise RuntimeError("case 1: no throttle-eligible suspect named")
    during = _mean_cpi(samples, sim.now - 600, sim.now)
    machine = sim.machines[target.machine_name]
    machine.remove(target.name, TaskState.KILLED, reason="operator kill")
    sim.run_minutes(10)
    after = _mean_cpi(samples, sim.now - 420, sim.now)
    return CaseOneResult(
        suspects=table,
        chosen_job=target.job.name,
        chosen_class=target.scheduling_class.value,
        victim_cpi_during=during,
        victim_cpi_after_kill=after,
        threshold=incident.cpi_threshold,
    )


# -- Case 2 -------------------------------------------------------------------

@dataclass
class CaseTwoResult:
    """Figure 9: victim CPI before / during / after a best-effort cap."""

    correlation: float
    cpi_before: float
    cpi_during_cap: float
    cpi_after_cap: float
    antagonist_usage_before: float
    antagonist_usage_during: float


def case2_hardcap_recovery(seed: int = 2) -> CaseTwoResult:
    """Case 2: hard-capping a best-effort batch job roughly halves the
    victim's CPI; when the cap lapses the CPI climbs back."""
    # The paper's case 2 capping was applied by operators: report-only mode
    # plus a manual cap, so the post-cap CPI rise is observable (automatic
    # mode would immediately re-cap).
    config = DEFAULT_CONFIG.with_overrides(hardcap_duration=840,
                                           auto_throttle=False)
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)
    victim = scenario.submit(make_service_job_spec(
        "victim-service", num_tasks=1, seed=int(rng.integers(2**31)),
        base_cpi=1.0, cpu_limit_per_task=2.0))
    antagonist = scenario.submit(make_antagonist_job_spec(
        "best-effort-batch", AntagonistKind.CACHE_THRASHER, num_tasks=1,
        seed=int(rng.integers(2**31)), demand_scale=1.4, best_effort=True,
        cpu_limit_per_task=8.0))
    for i in range(6):
        scenario.submit(make_service_job_spec(
            f"tenant-{i}", num_tasks=1, seed=int(rng.integers(2**31)),
            demand_level=0.4, cpu_limit_per_task=1.0))
    scenario.bootstrap_service_spec("victim-service", 1.05, 0.08)

    samples = _victim_cpi_tracker(scenario, "victim-service")
    sim = scenario.simulation
    ant_cgroup = antagonist.tasks[0].cgroup

    # Run until CPI2 reports an incident naming the antagonist, then cap it
    # manually (the operator workflow).
    cap_start = None
    incident = None
    for _ in range(40 * 60):
        sim.step()
        incidents = scenario.pipeline.all_incidents()
        if incidents and incidents[-1].decision.target is not None:
            incident = incidents[-1]
            cap_start = sim.now
            ant_cgroup.apply_cap(config.hardcap_quota_best_effort,
                                 now=sim.now, duration=config.hardcap_duration)
            break
    if cap_start is None or incident is None:
        raise RuntimeError("case 2: the antagonist was never identified")
    before = _mean_cpi(samples, cap_start - 600, cap_start)
    usage_before = ant_cgroup.usage_between(cap_start - 600, cap_start)
    sim.run(config.hardcap_duration)
    during = _mean_cpi(samples, cap_start + 60, sim.now)
    usage_during = ant_cgroup.usage_between(cap_start + 60, sim.now)
    sim.run_minutes(12)
    after = _mean_cpi(samples, sim.now - 540, sim.now)
    return CaseTwoResult(
        correlation=incident.decision.score.correlation,
        cpi_before=before,
        cpi_during_cap=during,
        cpi_after_cap=after,
        antagonist_usage_before=usage_before,
        antagonist_usage_during=usage_during,
    )


# -- Case 3 -------------------------------------------------------------------

@dataclass
class CaseThreeResult:
    """Figure 10: self-inflicted CPI swings and the usage-gate's effect."""

    #: With the paper's 0.25 CPU-sec/sec gate.
    anomalies_with_gate: int
    low_usage_samples_skipped: int
    #: With the gate disabled (min_cpu_usage = 0).
    anomalies_without_gate: int
    best_correlation_without_gate: float
    actions_taken: int
    cpi_usage_correlation: float


def case3_bimodal_false_alarm(seed: int = 3) -> CaseThreeResult:
    """Case 3: a front-end with bimodal CPU usage looks like a victim when
    idle (cold caches), but no suspect correlates; the minimum-usage filter
    suppresses the alarm entirely."""

    from repro.cluster.interference import ResourceProfile
    from repro.workloads.base import SyntheticWorkload
    from repro.workloads.demand import on_off

    filler_profile = ResourceProfile(
        cache_mib_per_cpu=0.6, membw_gbps_per_cpu=0.3,
        cache_sensitivity=0.4, membw_sensitivity=0.3, base_l3_mpki=1.5)

    def build(min_cpu_usage: float) -> tuple[Scenario, list[CpiSample]]:
        config = DEFAULT_CONFIG.with_overrides(
            min_cpu_usage=min_cpu_usage, auto_throttle=False)
        scenario = build_cluster(1, seed=seed, config=config)
        rng = np.random.default_rng(seed)
        scenario.submit(make_bimodal_frontend_spec(
            "bimodal-frontend", num_tasks=1, seed=int(rng.integers(2**31)),
            period=720, cold_start_penalty=6.0))
        # Co-tenants with bursty, independently-phased demand: their usage
        # is uncorrelated with the victim's self-inflicted CPI cycle, so
        # every correlation comes out near zero, as in the paper (max 0.07).
        for i in range(9):
            period = int(rng.integers(240, 900))
            phase = int(rng.integers(period))
            job_seed = int(rng.integers(2**31))

            def factory(index: int, period=period, phase=phase,
                        job_seed=job_seed) -> SyntheticWorkload:
                job_rng = np.random.default_rng(job_seed)
                return SyntheticWorkload(
                    base_cpi=1.0, profile=filler_profile,
                    demand=with_noise(
                        on_off(1.2, 0.1, period=period, duty=0.5,
                               phase=phase), 0.1, job_rng),
                    threads=8)

            scheduling = (SchedulingClass.BATCH if i % 2 == 0
                          else SchedulingClass.LATENCY_SENSITIVE)
            scenario.submit(JobSpec(
                name=f"tenant-{i}", num_tasks=1, scheduling_class=scheduling,
                priority_band=PriorityBand.NONPRODUCTION,
                cpu_limit_per_task=2.0, workload_factory=factory))
        # The job's own spec reflects its mixed history: high mean, wide
        # stddev (its CPI legitimately swings between ~2 and ~8).
        scenario.bootstrap_service_spec("bimodal-frontend", 3.0, 1.0)
        samples = _victim_cpi_tracker(scenario, "bimodal-frontend")
        return scenario, samples

    gated, gated_samples = build(DEFAULT_CONFIG.min_cpu_usage)
    gated.simulation.run_minutes(45)
    gated_agent = next(iter(gated.pipeline.agents.values()))

    ungated, ungated_samples = build(0.0)
    ungated.simulation.run_minutes(45)
    ungated_agent = next(iter(ungated.pipeline.agents.values()))
    incidents = ungated.pipeline.all_incidents()
    best_corr = max((i.suspects[0].correlation for i in incidents
                     if i.suspects), default=0.0)
    actions = sum(1 for i in incidents
                  if i.decision.action is PolicyAction.THROTTLE)

    cpis = [s.cpi for s in ungated_samples]
    usages = [s.cpu_usage for s in ungated_samples]
    cpi_usage_corr = float(np.corrcoef(cpis, usages)[0, 1])
    return CaseThreeResult(
        anomalies_with_gate=gated_agent.anomalies_seen,
        low_usage_samples_skipped=gated_agent.detector.samples_skipped_low_usage,
        anomalies_without_gate=ungated_agent.anomalies_seen,
        best_correlation_without_gate=best_corr,
        actions_taken=actions,
        cpi_usage_correlation=cpi_usage_corr,
    )


# -- Case 4 -------------------------------------------------------------------

@dataclass
class CaseFourResult:
    """Figure 11: many LS suspects, one batch; throttling helps only modestly."""

    suspects: list[SuspectRow]
    batch_suspects: int
    chosen_job: str
    relative_cpi: float
    final_decision: str


def case4_modest_relief(seed: int = 4) -> CaseFourResult:
    """Case 4: the victim's interference comes mostly from latency-sensitive
    co-tenants; the only batch suspect (a scientific simulation) contributes
    a minority of the pressure, so capping it brings only modest relief and
    the policy eventually recommends migrating the victim."""
    config = DEFAULT_CONFIG.with_overrides(hardcap_duration=300)
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)
    victim = scenario.submit(make_service_job_spec(
        "user-facing-service", num_tasks=1, seed=int(rng.integers(2**31)),
        base_cpi=1.0, cpu_limit_per_task=2.0))
    # Heavy LS neighbours: they both suffer and cause interference.
    heavy_profile_jobs = ("production-service", "compilation-service",
                          "security-service", "statistics-service",
                          "data-query", "maps-service", "image-render",
                          "ads-serving")
    from repro.cluster.interference import ResourceProfile
    from repro.workloads.base import SyntheticWorkload

    heavy = ResourceProfile(cache_mib_per_cpu=3.0, membw_gbps_per_cpu=1.6,
                            cache_sensitivity=0.5, membw_sensitivity=0.4,
                            base_l3_mpki=6.0)
    for name in heavy_profile_jobs:
        job_seed = int(rng.integers(2**31))

        def factory(index: int, job_seed=job_seed) -> SyntheticWorkload:
            job_rng = np.random.default_rng(job_seed)
            return SyntheticWorkload(
                base_cpi=1.1, profile=heavy,
                demand=with_noise(constant(1.0), 0.25, job_rng), threads=8)

        scenario.submit(JobSpec(
            name=name, num_tasks=1,
            scheduling_class=SchedulingClass.LATENCY_SENSITIVE,
            priority_band=PriorityBand.PRODUCTION,
            cpu_limit_per_task=2.0, workload_factory=factory))
    scenario.submit(make_antagonist_job_spec(
        "scientific-simulation", AntagonistKind.SCIENTIFIC_SIMULATION,
        num_tasks=1, seed=int(rng.integers(2**31)), demand_scale=1.0,
        cpu_limit_per_task=4.0))
    scenario.bootstrap_service_spec("user-facing-service", 1.05, 0.08)

    sim = scenario.simulation
    sim.run_minutes(45)
    incidents = scenario.pipeline.all_incidents()
    throttled = [i for i in incidents
                 if i.decision.action is PolicyAction.THROTTLE
                 and i.recovered is not None]
    if not throttled:
        raise RuntimeError("case 4: no completed throttle episode")
    first = throttled[0]
    table = _suspect_table(first, scenario, limit=9)
    batch_count = sum(1 for row in table if row.scheduling_class !=
                      SchedulingClass.LATENCY_SENSITIVE.value)
    final = incidents[-1].decision.action.value
    return CaseFourResult(
        suspects=table,
        batch_suspects=batch_count,
        chosen_job=first.decision.target.job.name,
        relative_cpi=first.relative_cpi,
        final_decision=final,
    )


# -- Case 5 -------------------------------------------------------------------

@dataclass
class CaseFiveResult:
    """Figure 12: antagonist thread dynamics around two capping episodes."""

    threads_normal: int
    threads_capped: int
    threads_lame_duck: int
    threads_recovered: int
    victim_cpi_before: float
    victim_cpi_capped: float


def case5_lame_duck(seed: int = 5) -> CaseFiveResult:
    """Case 5: a replayer batch job balloons to ~80 threads while capped,
    drops to 2 (lame-duck) afterwards, then recovers its usual 8."""
    # Manual capping (operator workflow), as in case 2, so the lame-duck
    # recovery is observable without CPI2 re-capping mid-observation.
    config = DEFAULT_CONFIG.with_overrides(auto_throttle=False)
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)
    victim = scenario.submit(make_service_job_spec(
        "query-serving", num_tasks=1, seed=int(rng.integers(2**31)),
        base_cpi=1.0, cpu_limit_per_task=2.0))

    worker = MapReduceWorker(
        rng=np.random.default_rng(seed + 1),
        demand=with_noise(constant(5.0), 0.1,
                          np.random.default_rng(seed + 2)),
        give_up_episode=99,  # this one never quits
        lame_duck=LameDuckBehavior(lameduck_duration=900),
        base_cpi=1.4,
        profile=make_antagonist_workload(
            AntagonistKind.REPLAYER,
            np.random.default_rng(seed + 3)).resource_profile(),
    )
    antagonist = scenario.submit(JobSpec(
        name="replayer-batch", num_tasks=1,
        scheduling_class=SchedulingClass.BATCH,
        priority_band=PriorityBand.NONPRODUCTION,
        cpu_limit_per_task=8.0,
        workload_factory=lambda index: worker))
    scenario.bootstrap_service_spec("query-serving", 1.05, 0.08)

    sim = scenario.simulation
    samples = _victim_cpi_tracker(scenario, "query-serving")
    cgroup = antagonist.tasks[0].cgroup

    threads_normal = worker.thread_count(0)
    cap_start = None
    for _ in range(40 * 60):
        sim.step()
        incidents = scenario.pipeline.all_incidents()
        if incidents and incidents[-1].decision.target is not None:
            cap_start = sim.now
            cgroup.apply_cap(0.1, now=sim.now, duration=300)
            break
    if cap_start is None:
        raise RuntimeError("case 5: antagonist never identified")
    before = _mean_cpi(samples, cap_start - 600, cap_start)
    sim.run(120)
    threads_capped = worker.thread_count(sim.now)
    sim.run(240)  # the 5-minute cap expires at cap_start + 300
    capped_cpi = _mean_cpi(samples, cap_start, cap_start + 300)
    sim.run(120)
    threads_lame = worker.thread_count(sim.now)
    sim.run(1200)  # the lame-duck period (900 s) passes
    threads_recovered = worker.thread_count(sim.now)
    return CaseFiveResult(
        threads_normal=threads_normal,
        threads_capped=threads_capped,
        threads_lame_duck=threads_lame,
        threads_recovered=threads_recovered,
        victim_cpi_before=before,
        victim_cpi_capped=capped_cpi,
    )


# -- Case 6 -------------------------------------------------------------------

@dataclass
class CaseSixResult:
    """Figure 13: the MapReduce worker's fate across capping episodes."""

    cap_episodes: int
    final_state: str
    survived_first_cap: bool
    exited_during_second: bool


def case6_mapreduce_exit(seed: int = 6) -> CaseSixResult:
    """Case 6: a MapReduce worker survives its first cap but gives up and
    exits during the second, preferring rescheduling to crawling."""
    config = DEFAULT_CONFIG.with_overrides(hardcap_duration=300)
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)
    scenario.submit(make_service_job_spec(
        "latency-sensitive-service", num_tasks=1,
        seed=int(rng.integers(2**31)), base_cpi=1.0, cpu_limit_per_task=2.0))

    worker = MapReduceWorker(
        rng=np.random.default_rng(seed + 1),
        demand=with_noise(constant(6.0), 0.1,
                          np.random.default_rng(seed + 2)),
        give_up_episode=2,
        exit_delay=120,
        base_cpi=1.4,
        profile=make_antagonist_workload(
            AntagonistKind.MEMBW_HOG,
            np.random.default_rng(seed + 3)).resource_profile(),
    )
    mr_job = scenario.submit(JobSpec(
        name="mapreduce-worker", num_tasks=1,
        scheduling_class=SchedulingClass.BATCH,
        priority_band=PriorityBand.NONPRODUCTION,
        cpu_limit_per_task=8.0,
        workload_factory=lambda index: worker))
    scenario.bootstrap_service_spec("latency-sensitive-service", 1.05, 0.08)

    sim = scenario.simulation
    task = mr_job.tasks[0]
    first_cap_seen = False
    first_cap_survived = False
    for _ in range(90 * 60):
        sim.step()
        if worker.cap_episodes >= 1 and not first_cap_seen:
            first_cap_seen = True
        if (first_cap_seen and worker.cap_episodes == 1
                and not task.cgroup.is_capped(sim.now)
                and task.state is TaskState.RUNNING):
            first_cap_survived = True
        if task.state is TaskState.EXITED:
            break
    return CaseSixResult(
        cap_episodes=worker.cap_episodes,
        final_state=task.state.value,
        survived_first_cap=first_cap_survived,
        exited_during_second=(task.state is TaskState.EXITED
                              and worker.cap_episodes >= 2),
    )
