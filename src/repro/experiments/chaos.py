"""Chaos sweep: detection quality under injected transport/crash faults.

The paper's pipeline (Figure 6) assumes samples reach the aggregation
service and specs reach the machines.  This experiment injects the failures
a real fleet fabric produces — drops, delays, duplicates, reordering,
corruption, agent crashes — at each named :data:`~repro.faults.profile.
FAULT_PROFILES` intensity, and measures how antagonist identification
degrades relative to the clean run:

* **precision** — of the incidents where CPI2 named an antagonist, the
  fraction whose target really was a task of a known antagonist job;
* **recall vs clean** — correct identifications as a fraction of the clean
  baseline's (same workload seed, so the interference schedule is
  identical);
* **fault visibility** — every fault the plane injected must show up in
  the observability counters (``transport_faults`` / ``agent_crashes``);
  silently lost messages would make production debugging impossible.

The robustness acceptance bar lives in the benchmark harness: the
``moderate`` profile must retain >= 0.8x the clean run's precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.experiments.scenarios import Scenario, build_cluster
from repro.obs import Observability
from repro.records import CpiSpec
from repro.workloads import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_batch_job_spec,
)
from repro.workloads.services import make_service_job_spec

__all__ = ["ChaosCell", "ChaosResult", "chaos_scenario", "chaos_sweep",
           "DEFAULT_PROFILES"]

#: Profiles swept, mildest first; ``none`` doubles as the clean baseline.
DEFAULT_PROFILES: tuple[str, ...] = ("none", "light", "moderate", "heavy")

#: Jobs that truly are antagonists in the chaos scenario (ground truth).
ANTAGONIST_JOBS = frozenset({"video-transcode"})


@dataclass(frozen=True)
class ChaosCell:
    """One profile's outcome.

    Attributes:
        profile: fault-profile name.
        incidents: anomaly incidents raised (identified or not).
        identified: incidents where the policy named an antagonist.
        true_identified: identified incidents whose target belongs to a
            ground-truth antagonist job.
        precision: ``true_identified / identified`` (1.0 when nothing was
            identified — no wrong blame was assigned).
        recall_vs_clean: ``true_identified`` relative to the clean
            baseline's; may exceed 1 when retries shift detection timing.
        faults_injected: ground-truth fault count from the plane's tallies.
        faults_observed: same faults as seen by the obs counters.
        samples_quarantined: corrupted/implausible samples refused by
            agents and the aggregator.
        analyses_dropped: per-task anomaly checks suppressed because an
            agent's specs went stale (degraded mode only; the family's
            ``rate_limited`` reason is not a fault symptom).
        crashes: agent crash/restart cycles injected.
    """

    profile: str
    incidents: int
    identified: int
    true_identified: int
    precision: float
    recall_vs_clean: float
    faults_injected: int
    faults_observed: int
    samples_quarantined: int
    analyses_dropped: int
    crashes: int

    @property
    def all_faults_visible(self) -> bool:
        """Did every injected fault surface in the obs counters?"""
        return self.faults_injected == self.faults_observed


@dataclass
class ChaosResult:
    """The full sweep, clean baseline first."""

    cells: list[ChaosCell]

    def cell(self, profile: str) -> ChaosCell:
        """The cell for ``profile``.

        Raises:
            KeyError: if the profile was not part of the sweep.
        """
        for cell in self.cells:
            if cell.profile == profile:
                return cell
        raise KeyError(f"profile {profile!r} not in sweep: "
                       f"{[c.profile for c in self.cells]}")

    def precision_retention(self, profile: str,
                            baseline: str = "none") -> float:
        """``profile``'s precision as a fraction of ``baseline``'s."""
        base = self.cell(baseline).precision
        return self.cell(profile).precision / base if base > 0 else 1.0


def _chaos_scenario(seed: int, config: CpiConfig, num_machines: int,
                    fault_profile: str, fault_seed: int,
                    obs: Observability) -> Scenario:
    """Victim services + batch fillers + one antagonist job, specs warmed.

    The same ``seed`` drives the workload for every profile, so runs differ
    only in the injected fault schedule.
    """
    scenario = build_cluster(num_machines, seed=seed, config=config,
                             fault_profile=fault_profile,
                             fault_seed=fault_seed, obs=obs)
    rng = np.random.default_rng(seed)
    scenario.submit(make_service_job_spec(
        "frontend", num_tasks=2 * num_machines,
        seed=int(rng.integers(2**31)), base_cpi=1.0, cpu_limit_per_task=2.0))
    scenario.submit(make_batch_job_spec(
        "logs-pipeline", num_tasks=num_machines,
        seed=int(rng.integers(2**31)), demand_level=0.5,
        cpu_limit_per_task=1.0))
    scenario.submit(make_antagonist_job_spec(
        "video-transcode", AntagonistKind.VIDEO_PROCESSING,
        num_tasks=max(1, num_machines // 2), seed=int(rng.integers(2**31)),
        demand_scale=1.4, cpu_limit_per_task=6.0))
    platform = next(iter(scenario.simulation.machines.values())).platform
    scenario.pipeline.bootstrap_specs([
        CpiSpec(jobname="frontend", platforminfo=platform.name,
                num_samples=10_000, cpu_usage_mean=1.0,
                cpi_mean=1.05, cpi_stddev=0.08)])
    return scenario


def chaos_scenario(seed: int = 0, num_machines: int = 4,
                   fault_profile: str = "none", fault_seed: int = 1,
                   obs: Optional[Observability] = None,
                   telemetry: bool = False) -> Scenario:
    """The chaos workload as a standalone, picklable-by-reference builder.

    A fresh isolated :class:`~repro.obs.Observability` is created when
    ``obs`` is omitted, so both the sweep's per-profile attribution and
    the sharded engine's per-worker registries stay clean.  ``telemetry``
    attaches the fleet telemetry plane (TSDB + alert rules).
    """
    obs = obs or Observability()
    if telemetry:
        obs.enable_telemetry()
    return _chaos_scenario(seed, DEFAULT_CONFIG, num_machines,
                           fault_profile, fault_seed, obs)


def _observed_faults(obs: Observability) -> int:
    """Injected faults as witnessed by the metrics registry."""
    return int(obs.metrics.total("transport_faults")
               + obs.metrics.total("agent_crashes"))


def chaos_sweep(profiles: Sequence[str] = DEFAULT_PROFILES,
                num_machines: int = 4, hours: float = 2.0,
                seed: int = 0, fault_seed: int = 1,
                config: CpiConfig | None = None) -> ChaosResult:
    """Run the chaos scenario once per profile and compare to clean.

    Every run shares the workload ``seed``; only ``fault_seed``-driven
    injection differs.  ``none`` is always run (prepended if missing) —
    recall is meaningless without the clean baseline.
    """
    config = config or DEFAULT_CONFIG
    profile_list = list(profiles)
    if "none" not in profile_list:
        profile_list.insert(0, "none")
    raw: list[dict] = []
    for profile in profile_list:
        obs = Observability()
        scenario = _chaos_scenario(seed, config, num_machines, profile,
                                   fault_seed, obs)
        scenario.simulation.run_hours(hours)
        pipeline = scenario.pipeline
        incidents = pipeline.all_incidents()
        identified = [i for i in incidents if i.decision.target is not None]
        true_identified = [i for i in identified
                           if i.decision.target.job.name in ANTAGONIST_JOBS]
        plane = pipeline.faults
        raw.append({
            "profile": profile,
            "incidents": len(incidents),
            "identified": len(identified),
            "true_identified": len(true_identified),
            "faults_injected": (plane.total_faults_injected
                                if plane is not None else 0),
            "faults_observed": _observed_faults(obs),
            "samples_quarantined": int(
                obs.metrics.total("samples_quarantined")
                + obs.metrics.total("aggregator_samples_rejected")),
            "analyses_dropped": int(sum(
                c.value for c in obs.metrics.counters("analyses_dropped")
                if ("reason", "stale_spec") in c.labels)),
            "crashes": sum(a.crash_count for a in pipeline.agents.values()),
        })
    clean_true = next(r["true_identified"] for r in raw
                      if r["profile"] == "none")
    cells = []
    for r in raw:
        precision = (r["true_identified"] / r["identified"]
                     if r["identified"] else 1.0)
        recall = (r["true_identified"] / clean_true if clean_true else 1.0)
        cells.append(ChaosCell(precision=precision, recall_vs_clean=recall,
                               **r))
    return ChaosResult(cells=cells)
