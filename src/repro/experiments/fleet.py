"""Fleet-scale experiments: Figure 1 and Section 7's incident rate.

Figure 1 shows the machine-occupancy CDFs that motivate the whole system
(most machines run many tasks and thousands of threads); Section 7 reports
the deployed detection rate ("identifying antagonists at an average rate of
0.37 times per machine-day").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.stats import Ecdf
from repro.core.config import DEFAULT_CONFIG
from repro.experiments.scenarios import build_cluster, populated_fleet

__all__ = ["OccupancyResult", "machine_occupancy",
           "machine_occupancy_from_trace_mix", "IncidentRateResult",
           "incident_rate"]


@dataclass
class OccupancyResult:
    """Figure 1's data: per-machine task and thread count distributions."""

    tasks_per_machine: Ecdf
    threads_per_machine: Ecdf

    def quantiles(self, qs=(0.1, 0.5, 0.9)) -> dict[str, list[float]]:
        """Selected quantiles of both distributions, for reporting."""
        return {
            "tasks": [self.tasks_per_machine.quantile(q) for q in qs],
            "threads": [self.threads_per_machine.quantile(q) for q in qs],
        }


def machine_occupancy(num_machines: int = 16, seed: int = 0,
                      warmup_minutes: float = 5.0) -> OccupancyResult:
    """Figure 1: tasks and threads per machine across a populated fleet."""
    scenario = populated_fleet(num_machines=num_machines, seed=seed)
    sim = scenario.simulation
    sim.run_minutes(warmup_minutes)
    tasks = [m.num_tasks for m in sim.machines.values()]
    threads = [m.thread_count(sim.now) for m in sim.machines.values()]
    return OccupancyResult(
        tasks_per_machine=Ecdf(tasks),
        threads_per_machine=Ecdf(threads),
    )


@dataclass
class IncidentRateResult:
    """Section 7's deployment-wide detection statistics."""

    machine_days: float
    incidents_identified: int
    rate_per_machine_day: float
    throttle_actions: int
    distinct_victim_jobs: int


def incident_rate(num_machines: int = 16, hours: float = 4.0,
                  learn_hours: float = 1.0,
                  seed: int = 0) -> IncidentRateResult:
    """Section 7: antagonist-identification rate per machine-day.

    Specs are learned in-situ during ``learn_hours`` — as in production,
    "normal" already includes the typical level of co-tenancy — so incidents
    fire only when interference flares beyond a job's usual experience.  Our
    fleet is still far denser in antagonists than Google's (two antagonist
    jobs across ten machines), so the measured rate overshoots the paper's
    0.37/machine-day; the benchmark checks it stays a trickle, not a flood.
    """
    from repro.cluster.job import Job
    from repro.workloads import AntagonistKind, make_antagonist_job_spec

    config = DEFAULT_CONFIG.with_overrides(
        spec_refresh_period=int(learn_hours * 3600),
        min_tasks_for_spec=5, min_samples_per_task=10)
    # The fleet learns its specs before any antagonist shows up — the
    # production analogue is that long-running jobs carry historical specs
    # from (mostly clean) prior days.
    scenario = populated_fleet(num_machines=num_machines, seed=seed,
                               config=config, antagonist_tasks=(0, 0),
                               density=0.5)
    # Kill/migrate escalations are actuated (not just logged), so persistent
    # offenders actually move instead of being re-reported every minute.
    scenario.pipeline.enable_migration = True
    for agent in scenario.pipeline.agents.values():
        agent.migrator = scenario.pipeline._migrate
    sim = scenario.simulation
    sim.run_hours(learn_hours + 0.01)
    pipeline = scenario.pipeline
    # Antagonists arrive; only the post-learning window is counted.
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "video-transcode", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=seed + 101, cpu_limit_per_task=9.0, demand_scale=1.5)))
    sim.scheduler.submit(Job(make_antagonist_job_spec(
        "science-sim", AntagonistKind.SCIENTIFIC_SIMULATION, num_tasks=1,
        seed=seed + 102, cpu_limit_per_task=6.0, demand_scale=1.5)))
    pipeline.machine_seconds = 0
    for agent in pipeline.agents.values():
        agent.incidents.clear()
    sim.run_hours(hours)
    incidents = pipeline.all_incidents()
    identified = [i for i in incidents if i.decision.target is not None]
    throttles = [i for i in incidents
                 if i.decision.action.value == "throttle"]
    machine_days = pipeline.machine_seconds / 86400.0
    return IncidentRateResult(
        machine_days=machine_days,
        incidents_identified=len(identified),
        rate_per_machine_day=(len(identified) / machine_days
                              if machine_days else 0.0),
        throttle_actions=len(throttles),
        distinct_victim_jobs=len({i.victim_jobname for i in incidents}),
    )


def machine_occupancy_from_trace_mix(num_machines: int = 16, seed: int = 0,
                                     warmup_minutes: float = 2.0
                                     ) -> OccupancyResult:
    """Figure 1 against a trace-statistics population.

    Same measurement as :func:`machine_occupancy`, but the job population
    comes from :class:`~repro.workloads.mix.ClusterMix`, whose aggregate
    statistics match the cluster-trace numbers the paper cites (7% of jobs
    production using ~30% of CPU, non-production ~10%, most task mass in
    large jobs).
    """
    from repro.cluster.scheduler import PlacementError
    from repro.workloads.mix import ClusterMix

    scenario = build_cluster(num_machines, seed=seed)
    sim = scenario.simulation
    total_cpu = sum(m.cpu_capacity for m in sim.machines.values())
    mix = ClusterMix(total_cpu=total_cpu, seed=seed)
    for spec in mix.generate():
        try:
            scenario.submit(spec)
        except PlacementError:
            continue  # LS jobs that cannot fit are dropped at this scale
    sim.run_minutes(warmup_minutes)
    tasks = [m.num_tasks for m in sim.machines.values()]
    threads = [m.thread_count(sim.now) for m in sim.machines.values()]
    return OccupancyResult(
        tasks_per_machine=Ecdf(tasks),
        threads_per_machine=Ecdf(threads),
    )
