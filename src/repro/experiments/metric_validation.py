"""Section 3's metric-validation experiments (Figures 2-5, 7 and Table 1).

Each function builds the workload the paper measured, runs the simulated
cluster, and returns the figure's data: correlation coefficients, CPI
specs, distribution fits.  Population sizes are scaled down from the paper's
(a 2600-task job becomes ~60 tasks) — the statistics these figures report are
correlations and distribution shapes, which survive the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.distributions import DistributionFit, fit_all_candidates
from repro.analysis.stats import coefficient_of_variation, pearson_correlation
from repro.cluster.task import TaskState
from repro.core.config import CpiConfig
from repro.experiments.scenarios import Scenario, build_cluster
from repro.perf.events import CounterEvent
from repro.records import CpiSample, SpecKey
from repro.workloads import make_batch_job_spec
from repro.workloads.batch import BatchWorkload
from repro.workloads.diurnal import DiurnalPattern
from repro.workloads.websearch import (
    SearchTier,
    WebSearchWorkload,
    make_websearch_job_spec,
)

__all__ = [
    "RateSeries",
    "tps_vs_ips",
    "latency_vs_cpi_timeseries",
    "per_task_latency_correlations",
    "diurnal_cpi",
    "representative_cpi_specs",
    "cpi_distribution_fits",
]


@dataclass
class RateSeries:
    """Windowed rate pairs plus their correlation (Figures 2 and 3)."""

    window_seconds: int
    series_a: list[float] = field(default_factory=list)
    series_b: list[float] = field(default_factory=list)

    @property
    def correlation(self) -> float:
        return pearson_correlation(self.series_a, self.series_b)


def tps_vs_ips(num_tasks: int = 60, hours: float = 2.0,
               window_seconds: int = 600, seed: int = 0) -> RateSeries:
    """Figure 2: a batch job's transactions/s vs instructions/s, r ~ 0.97.

    The paper's batch job swept roughly a 2x rate range over its two hours
    (its input load varied); the job here does the same with a slow load
    oscillation, and the TPS/IPS coupling (with per-task transaction-cost
    wander) produces the near-unity correlation.
    """
    import math

    from repro.cluster.job import JobSpec
    from repro.cluster.task import PriorityBand, SchedulingClass
    from repro.workloads.demand import constant, scaled, with_noise

    def factory(index: int) -> BatchWorkload:
        rng = np.random.default_rng(np.random.SeedSequence((seed, index)))
        load = scaled(constant(1.0),
                      lambda t: 1.0 + 0.45 * math.sin(2 * math.pi * t / 5400.0
                                                      + index * 0.05))
        workload = BatchWorkload(rng=rng, demand=with_noise(load, 0.08, rng))
        # Transaction cost varies more in real jobs than the library default:
        # records differ in size, so TPS tracks IPS imperfectly (r ~ 0.97).
        workload.transactions.cost_wander = 0.15
        workload.transactions.measurement_noise = 0.05
        return workload

    scenario = build_cluster(max(2, num_tasks // 12), seed=seed)
    job = scenario.submit(JobSpec(
        name="batch-2600", num_tasks=num_tasks,
        scheduling_class=SchedulingClass.BATCH,
        priority_band=PriorityBand.NONPRODUCTION,
        cpu_limit_per_task=2.0, workload_factory=factory))
    sim = scenario.simulation

    def instruction_totals() -> dict[str, float]:
        totals = {}
        for task in job.running_tasks():
            machine = sim.machines[task.machine_name]
            totals[task.name] = machine.counters.counters_for(
                task.cgroup.name).read(CounterEvent.INSTRUCTIONS_RETIRED)
        return totals

    series = RateSeries(window_seconds=window_seconds)
    last = instruction_totals()
    total_seconds = int(hours * 3600)
    # Shared transaction-cost drift: the whole job processes the same input
    # stream, so per-record cost shifts hit every task together.  This is
    # what keeps the correlation at ~0.97 instead of 1.0.
    drift_rng = np.random.default_rng(np.random.SeedSequence((seed, 0xD21F7)))
    shared_drift = 0.0
    for _ in range(total_seconds // window_seconds):
        sim.run(window_seconds)
        now = instruction_totals()
        ips = 0.0
        tps = 0.0
        for name, value in now.items():
            delta = value - last.get(name, 0.0)
            ips += delta / window_seconds
            task = next(t for t in job if t.name == name)
            assert isinstance(task.workload, BatchWorkload)
            tps += task.workload.transactions_for(delta) / window_seconds
        shared_drift = 0.7 * shared_drift + float(drift_rng.normal(0.0, 0.035))
        series.series_a.append(ips)
        series.series_b.append(tps * (1.0 + shared_drift))
        last = now
    return series


def latency_vs_cpi_timeseries(num_tasks: int = 8, hours: float = 24.0,
                              window_seconds: int = 600,
                              seed: int = 0) -> RateSeries:
    """Figure 3: a web-search leaf job's request latency vs CPI, r ~ 0.97."""
    scenario = build_cluster(max(2, num_tasks // 4), seed=seed)
    job = scenario.submit(make_websearch_job_spec(
        "websearch-leaf", SearchTier.LEAF, num_tasks=num_tasks, seed=seed))
    sim = scenario.simulation

    samples: list[CpiSample] = []
    sim.add_sample_sink(lambda t, name, batch: samples.extend(
        s for s in batch if s.jobname == "websearch-leaf"))

    series = RateSeries(window_seconds=window_seconds)
    total_seconds = int(hours * 3600)
    baseline = {t.name: t.workload.baseline_cpi() for t in job}
    # Queueing and network delay shared across the job within a window:
    # request latency is not a pure function of CPI even at the leaves.
    shared_rng = np.random.default_rng(np.random.SeedSequence((seed, 0x1A7)))
    elapsed = 0
    while elapsed < total_seconds:
        start_len = len(samples)
        sim.run(window_seconds)
        elapsed += window_seconds
        window = samples[start_len:]
        if not window:
            continue
        cpis = []
        latencies = []
        for sample in window:
            task = next(t for t in job if t.name == sample.taskname)
            workload = task.workload
            assert isinstance(workload, WebSearchWorkload)
            ratio = sample.cpi / (baseline[sample.taskname]
                                  * sim.machines[task.machine_name]
                                  .platform.cpi_scale)
            cpis.append(sample.cpi)
            latencies.append(workload.latency_model.request_latency_ms(
                max(0.1, ratio)))
        queueing = float(np.exp(shared_rng.normal(0.0, 0.012)))
        series.series_a.append(float(np.mean(cpis)))
        series.series_b.append(float(np.mean(latencies)) * queueing)
    return series


def per_task_latency_correlations(
    tasks_per_tier: int = 6, hours: float = 2.5, window_seconds: int = 300,
    seed: int = 0,
) -> dict[SearchTier, float]:
    """Figure 4: per-task 5-minute latency-vs-CPI correlation by tier."""
    scenario = build_cluster(6, seed=seed,
                             platforms=("westmere-2.6", "nehalem-2.3"))
    jobs = {
        tier: scenario.submit(make_websearch_job_spec(
            f"search-{tier.value}", tier, num_tasks=tasks_per_tier,
            seed=seed + i))
        for i, tier in enumerate(SearchTier)
    }
    sim = scenario.simulation
    samples: list[CpiSample] = []
    sim.add_sample_sink(lambda t, name, batch: samples.extend(batch))

    points: dict[SearchTier, tuple[list[float], list[float]]] = {
        tier: ([], []) for tier in SearchTier}
    total_seconds = int(hours * 3600)
    elapsed = 0
    while elapsed < total_seconds:
        start_len = len(samples)
        sim.run(window_seconds)
        elapsed += window_seconds
        window = samples[start_len:]
        per_task: dict[str, list[float]] = {}
        for sample in window:
            per_task.setdefault(sample.taskname, []).append(sample.cpi)
        for tier, job in jobs.items():
            for task in job.running_tasks():
                cpis = per_task.get(task.name)
                if not cpis:
                    continue
                workload = task.workload
                assert isinstance(workload, WebSearchWorkload)
                platform = sim.machines[task.machine_name].platform
                window_cpi = float(np.mean(cpis))
                ratio = window_cpi / (workload.baseline_cpi()
                                      * platform.cpi_scale)
                latency = workload.latency_model.request_latency_ms(
                    max(0.1, ratio))
                # Normalise per platform so the pooled scatter matches the
                # paper's normalized axes.
                xs, ys = points[tier]
                xs.append(window_cpi / platform.cpi_scale)
                ys.append(latency)
    return {tier: pearson_correlation(*points[tier]) for tier in SearchTier}


@dataclass
class DiurnalCpiResult:
    """Figure 5's data: mean-CPI time series and its daily statistics."""

    bucket_seconds: int
    mean_cpi: list[float]
    cv: float
    load_correlation: float


def diurnal_cpi(num_tasks: int = 10, days: float = 2.0,
                bucket_seconds: int = 1800, seed: int = 0) -> DiurnalCpiResult:
    """Figure 5: web-search mean CPI over days, CV ~ 4%, diurnal shape."""
    pattern = DiurnalPattern(amplitude=0.25, weekend_damping=0.15)
    scenario = build_cluster(max(2, num_tasks // 3), seed=seed)
    scenario.submit(make_websearch_job_spec(
        "leaf", SearchTier.LEAF, num_tasks=num_tasks, seed=seed,
        diurnal=pattern))
    sim = scenario.simulation
    samples: list[CpiSample] = []
    sim.add_sample_sink(lambda t, name, batch: samples.extend(batch))
    sim.run(int(days * 86400))

    buckets: dict[int, list[float]] = {}
    for sample in samples:
        bucket = int(sample.timestamp_seconds) // bucket_seconds
        buckets.setdefault(bucket, []).append(sample.cpi)
    ordered = sorted(buckets)
    means = [float(np.mean(buckets[b])) for b in ordered]
    load = [pattern(b * bucket_seconds) for b in ordered]
    return DiurnalCpiResult(
        bucket_seconds=bucket_seconds,
        mean_cpi=means,
        cv=coefficient_of_variation(means),
        load_correlation=pearson_correlation(means, load),
    )


def representative_cpi_specs(seed: int = 0, minutes: float = 30.0,
                             scale: float = 0.1) -> list[tuple[str, float, float, int]]:
    """Table 1: CPI specs of three representative latency-sensitive jobs.

    Job A ~ 0.88 +/- 0.09 (312 tasks), Job B ~ 1.36 +/- 0.26 (1040),
    Job C ~ 2.03 +/- 0.20 (1250); task counts scaled by ``scale``.

    Returns (jobname, cpi_mean, cpi_stddev, num_tasks) rows.
    """
    from repro.workloads.services import make_service_job_spec

    config = CpiConfig(min_tasks_for_spec=5, min_samples_per_task=5)
    # (name, base CPI, task-CPI spread, tasks): tuned so the learned specs
    # land near the paper's 0.88 +/- 0.09, 1.36 +/- 0.26, 2.03 +/- 0.20.
    populations = [
        ("job-A", 0.70, 0.09, int(312 * scale)),
        ("job-B", 1.09, 0.18, int(1040 * scale)),
        ("job-C", 1.62, 0.09, int(1250 * scale)),
    ]
    total = sum(n for _, _, _, n in populations)
    scenario = build_cluster(max(4, total // 8), seed=seed, config=config)
    jobs = {}
    for i, (name, base_cpi, spread, num_tasks) in enumerate(populations):
        jobs[name] = scenario.submit(make_service_job_spec(
            name, num_tasks=num_tasks, seed=seed + i, base_cpi=base_cpi,
            demand_level=0.7, cpu_limit_per_task=1.5,
            task_cpi_spread=spread))
    scenario.simulation.run(int(minutes * 60))
    scenario.pipeline.refresh_specs_now()
    rows = []
    for name, _base, _spread, num_tasks in populations:
        spec = scenario.pipeline.aggregator.spec_for(name, "westmere-2.6")
        if spec is None:
            raise RuntimeError(f"no spec learned for {name}")
        rows.append((name, spec.cpi_mean, spec.cpi_stddev, num_tasks))
    return rows


@dataclass
class DistributionResult:
    """Figure 7's data: sample stats and the four family fits."""

    num_samples: int
    mean: float
    stddev: float
    fits: dict[str, DistributionFit]

    @property
    def best_family(self) -> str:
        return min(self.fits.values(), key=lambda f: f.ks_statistic).family


def cpi_distribution_fits(num_tasks: int = 40, hours: float = 5.0,
                          seed: int = 0) -> DistributionResult:
    """Figure 7: the CPI distribution of a big web-search job + GEV fit.

    Light bursty batch co-tenants give the distribution its right skew (bad
    performance more common than exceptionally good).
    """
    from repro.workloads import AntagonistKind, make_antagonist_job_spec

    scenario = build_cluster(max(4, num_tasks // 3), seed=seed)
    scenario.submit(make_websearch_job_spec(
        "leaf", SearchTier.LEAF, num_tasks=num_tasks, seed=seed))
    scenario.submit(make_antagonist_job_spec(
        "background-batch", AntagonistKind.COMPRESSION,
        num_tasks=max(2, num_tasks // 10), seed=seed + 1, demand_scale=0.5,
        cpu_limit_per_task=4.0))
    sim = scenario.simulation
    cpis: list[float] = []
    sim.add_sample_sink(lambda t, name, batch: cpis.extend(
        s.cpi for s in batch if s.jobname == "leaf"))
    sim.run(int(hours * 3600))
    arr = np.asarray(cpis)
    return DistributionResult(
        num_samples=int(arr.size),
        mean=float(arr.mean()),
        stddev=float(arr.std()),
        fits=dict(fit_all_candidates(arr)),
    )
