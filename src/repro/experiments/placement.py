"""Antagonist-aware placement, evaluated (paper Section 9, closed loop).

"Our cluster scheduler will not place a task on the same machine as a
user-specified antagonist job, but few users manually provide this
information.  In the future, we hope to provide this information to the
scheduler automatically."

The loop exists in this repository (forensics → scheduler hints →
anti-affinity), and this experiment measures what it buys: run a fleet with
antagonists, count incidents; then install the hints CPI2 accumulated,
evict-and-replace the antagonists (anti-affinity binds at placement time),
and count again.  The drop in incidents is the value of closing the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.job import Job
from repro.cluster.scheduler import PlacementError
from repro.cluster.task import TaskState
from repro.core.config import DEFAULT_CONFIG
from repro.experiments.scenarios import populated_fleet
from repro.workloads import AntagonistKind, make_antagonist_job_spec

__all__ = ["PlacementResult", "antagonist_aware_placement"]


@dataclass
class PlacementResult:
    """Incident pressure before and after placement hints take effect."""

    hints_installed: int
    antagonists_replaced: int
    incidents_before: int
    incidents_after: int
    throttles_before: int
    throttles_after: int
    #: Victim-machine collisions: antagonist tasks co-located with a job
    #: that has reported them, before vs after re-placement.
    collisions_before: int
    collisions_after: int


def _collisions(scenario, hinted_pairs) -> int:
    """How many machines host both halves of a hinted pair."""
    count = 0
    for machine in scenario.simulation.machines.values():
        jobs = {t.job.name for t in machine.resident_tasks()}
        for victim_job, antagonist_job in hinted_pairs:
            if victim_job in jobs and antagonist_job in jobs:
                count += 1
    return count


def antagonist_aware_placement(num_machines: int = 16,
                               learn_hours: float = 1.0,
                               phase_hours: float = 2.0,
                               seed: int = 0) -> PlacementResult:
    """Measure the effect of feeding forensics hints back to the scheduler.

    Phases: (1) learn clean specs; (2) antagonists arrive, incidents accrue;
    (3) install anti-affinity hints and evict/replace every antagonist task
    (the scheduler now refuses the old co-locations); (4) same duration as
    phase 2, count again.
    """
    config = DEFAULT_CONFIG.with_overrides(
        spec_refresh_period=int(learn_hours * 3600),
        min_tasks_for_spec=5, min_samples_per_task=10)
    scenario = populated_fleet(num_machines=num_machines, seed=seed,
                               config=config, antagonist_tasks=(0, 0),
                               density=0.5)
    sim = scenario.simulation
    pipeline = scenario.pipeline
    sim.run_hours(learn_hours + 0.01)

    antagonists = [
        Job(make_antagonist_job_spec(
            "video-transcode", AntagonistKind.VIDEO_PROCESSING, num_tasks=2,
            seed=seed + 101, cpu_limit_per_task=9.0, demand_scale=1.5)),
        Job(make_antagonist_job_spec(
            "science-sim", AntagonistKind.SCIENTIFIC_SIMULATION, num_tasks=2,
            seed=seed + 102, cpu_limit_per_task=6.0, demand_scale=1.5)),
    ]
    for job in antagonists:
        sim.scheduler.submit(job)

    def snapshot():
        incidents = pipeline.all_incidents()
        throttles = [i for i in incidents
                     if i.decision.action.value == "throttle"]
        return len(incidents), len(throttles)

    # Phase 2: incidents accrue against the naive placement.
    base_incidents, base_throttles = snapshot()
    sim.run_hours(phase_hours)
    incidents_before, throttles_before = snapshot()
    incidents_before -= base_incidents
    throttles_before -= base_throttles

    # Phase 3: close the loop.  Every pair with even one incident counts —
    # this is the "ask the cluster scheduler to avoid co-locating" workflow.
    hints = pipeline.forensics.scheduler_hints(min_incidents=1)
    installed = pipeline.apply_scheduler_hints(min_incidents=1)
    collisions_before = _collisions(scenario, hints)
    replaced = 0
    for job in antagonists:
        for task in list(job.running_tasks()):
            try:
                sim.scheduler.migrate_task(task)
                replaced += 1
            except PlacementError:
                # Nowhere compatible; park it (production would queue it).
                machine = sim.machines[task.machine_name]
                machine.remove(task.name, TaskState.PREEMPTED,
                               reason="no antagonist-compatible machine")
    collisions_after = _collisions(scenario, hints)

    # Phase 4: same duration, hints in force.
    base_incidents, base_throttles = snapshot()
    sim.run_hours(phase_hours)
    incidents_after, throttles_after = snapshot()
    incidents_after -= base_incidents
    throttles_after -= base_throttles

    return PlacementResult(
        hints_installed=installed,
        antagonists_replaced=replaced,
        incidents_before=incidents_before,
        incidents_after=incidents_after,
        throttles_before=throttles_before,
        throttles_after=throttles_after,
        collisions_before=collisions_before,
        collisions_after=collisions_after,
    )
