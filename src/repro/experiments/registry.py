"""A name -> experiment registry, for the CLI and programmatic discovery.

Each entry runs one of the paper's tables/figures (or an ablation) and
returns an :class:`~repro.experiments.reporting.ExperimentReport`.  The
benchmark harness carries the assertions; these runners only measure and
report, so they are safe to run ad hoc from the command line.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.experiments.reporting import ExperimentReport

__all__ = ["EXPERIMENTS", "run_experiment", "run_experiments",
           "experiment_names", "unknown_experiment_error"]


def _fig01() -> ExperimentReport:
    from repro.experiments.fleet import machine_occupancy

    result = machine_occupancy()
    report = ExperimentReport("fig01", "Tasks and threads per machine")
    quantiles = result.quantiles()
    report.add("median tasks/machine", "10-30", quantiles["tasks"][1])
    report.add("p90 tasks/machine", "up to ~90", quantiles["tasks"][2])
    report.add("median threads/machine", "hundreds+", quantiles["threads"][1])
    return report


def _fig02() -> ExperimentReport:
    from repro.experiments.metric_validation import tps_vs_ips

    series = tps_vs_ips()
    report = ExperimentReport("fig02", "Batch TPS vs IPS")
    report.add("correlation", 0.97, series.correlation)
    return report


def _fig03() -> ExperimentReport:
    from repro.experiments.metric_validation import latency_vs_cpi_timeseries

    series = latency_vs_cpi_timeseries()
    report = ExperimentReport("fig03", "Leaf latency vs CPI (24 h)")
    report.add("correlation", 0.97, series.correlation)
    return report


def _fig04() -> ExperimentReport:
    from repro.experiments.metric_validation import per_task_latency_correlations

    corrs = per_task_latency_correlations()
    report = ExperimentReport("fig04", "Latency-CPI correlation per tier")
    for tier, value in corrs.items():
        paper = {"leaf": 0.75, "intermediate": 0.68,
                 "root": "poor"}[tier.value]
        report.add(tier.value, paper, value)
    return report


def _fig05() -> ExperimentReport:
    from repro.experiments.metric_validation import diurnal_cpi

    result = diurnal_cpi()
    report = ExperimentReport("fig05", "Diurnal mean CPI")
    report.add("coefficient of variation", "~0.04", result.cv)
    report.add("load-curve correlation", "diurnal", result.load_correlation)
    return report


def _table1() -> ExperimentReport:
    from repro.experiments.metric_validation import representative_cpi_specs

    rows = representative_cpi_specs()
    paper = {"job-A": "0.88 +/- 0.09", "job-B": "1.36 +/- 0.26",
             "job-C": "2.03 +/- 0.20"}
    report = ExperimentReport("table1", "Representative CPI specs")
    for name, mean, std, tasks in rows:
        report.add(f"{name} ({tasks} tasks)", paper[name],
                   f"{mean:.2f} +/- {std:.2f}")
    return report


def _fig07() -> ExperimentReport:
    from repro.experiments.metric_validation import cpi_distribution_fits

    result = cpi_distribution_fits()
    report = ExperimentReport("fig07", "CPI distribution + GEV fit")
    report.add("mean / stddev", "1.8 / 0.16",
               f"{result.mean:.2f} / {result.stddev:.2f}")
    report.add("best family", "gev", result.best_family)
    return report


def _table2() -> ExperimentReport:
    from repro.core.config import DEFAULT_CONFIG

    report = ExperimentReport("table2", "CPI2 parameters")
    report.add("outlier threshold", "2 sigma", DEFAULT_CONFIG.outlier_stddevs)
    report.add("correlation threshold", 0.35,
               DEFAULT_CONFIG.correlation_threshold)
    report.add("hard-cap quota (batch)", 0.1,
               DEFAULT_CONFIG.hardcap_quota_batch)
    return report


def _case(number: int) -> Callable[[], ExperimentReport]:
    def runner() -> ExperimentReport:
        from repro.experiments import casestudies

        fn = {1: casestudies.case1_suspect_ranking,
              2: casestudies.case2_hardcap_recovery,
              3: casestudies.case3_bimodal_false_alarm,
              4: casestudies.case4_modest_relief,
              5: casestudies.case5_lame_duck,
              6: casestudies.case6_mapreduce_exit}[number]
        result = fn()
        report = ExperimentReport(f"case{number}",
                                  f"Case study {number} (Figure {number + 7})")
        for field, value in vars(result).items():
            if isinstance(value, list):
                continue
            report.add(field, "-", value)
        return report

    return runner


def _sec7() -> ExperimentReport:
    from repro.experiments.fleet import incident_rate

    result = incident_rate()
    report = ExperimentReport("sec7", "Identification rate")
    report.add("rate per machine-day", 0.37, result.rate_per_machine_day,
               "antagonist-dense fleet")
    report.add("throttle actions", "-", result.throttle_actions)
    return report


def _trials(num: int = 150) -> ExperimentReport:
    from repro.cluster.task import PriorityBand
    from repro.experiments import analyses
    from repro.experiments.trials import run_trials

    trials = run_trials(num)
    report = ExperimentReport("sec7-trials",
                              f"Figures 14-16 over {num} trials")
    corr_util, cpi_util = analyses.utilization_correlation(trials)
    report.add("fig14a corr(util, correlation)", "~0", corr_util)
    rates = analyses.rates_by_threshold(trials, thresholds=(0.35,),
                                        band=PriorityBand.PRODUCTION)[0]
    report.add("fig15a/16a production TP rate @0.35", "~0.7",
               rates.true_positive_rate, f"n={rates.declared}")
    report.add("fig15c corr(rel L3, rel CPI)", 0.87,
               analyses.l3_vs_cpi_correlation(trials))
    report.add("fig16d median relative CPI", 0.63,
               analyses.median_relative_cpi(trials))
    return report


def _placement() -> ExperimentReport:
    from repro.experiments.placement import antagonist_aware_placement

    result = antagonist_aware_placement(phase_hours=1.0)
    report = ExperimentReport("placement", "Antagonist-aware placement")
    report.add("hints installed", ">=1", result.hints_installed)
    report.add("hinted co-locations (before -> after)", "-> 0",
               f"{result.collisions_before} -> {result.collisions_after}")
    report.add("incidents per phase", "drops",
               f"{result.incidents_before} -> {result.incidents_after}")
    return report


def _actuators() -> ExperimentReport:
    from repro.experiments.ablations import cfs_vs_duty_cycle

    result = cfs_vs_duty_cycle()
    report = ExperimentReport("actuators", "CFS capping vs duty-cycle")
    report.add("victim relative CPI (CFS / duty)", "both recover",
               f"{result.victim_relative_cpi_cfs:.2f} / "
               f"{result.victim_relative_cpi_duty:.2f}")
    report.add("bystander CPU loss (CFS / duty)", "0 / collateral",
               f"{result.bystander_cpu_loss_cfs:.1%} / "
               f"{result.bystander_cpu_loss_duty:.1%}")
    return report


def _chaos() -> ExperimentReport:
    from repro.experiments.chaos import chaos_sweep

    result = chaos_sweep()
    report = ExperimentReport(
        "chaos", "Detection quality under injected faults")
    for cell in result.cells:
        report.add(
            f"{cell.profile}: precision / recall-vs-clean", "-",
            f"{cell.precision:.2f} / {cell.recall_vs_clean:.2f}",
            f"{cell.identified} identified, {cell.incidents} incidents")
        if cell.profile != "none":
            report.add(
                f"{cell.profile}: faults injected -> observed", "no loss",
                f"{cell.faults_injected} -> {cell.faults_observed}",
                f"quarantined={cell.samples_quarantined} "
                f"dropped-analyses={cell.analyses_dropped} "
                f"crashes={cell.crashes}")
    report.add("moderate precision retention", ">= 0.8x clean",
               result.precision_retention("moderate"))
    return report


def _ablations() -> ExperimentReport:
    from repro.experiments import ablations

    report = ExperimentReport("ablations", "Design-choice probes")
    for result in ablations.anomaly_window_policies(minutes=60):
        report.add(f"window {result.policy}", "-",
                   f"real={result.anomalies_interference} "
                   f"noise={result.anomalies_noise_only}")
    group = ablations.group_antagonists()
    report.add("group antagonists: top-1 vs group cap", "caveat",
               f"{group.relative_cpi_top1_capped:.2f} vs "
               f"{group.relative_cpi_group_capped:.2f}")
    return report


#: name -> (description, runner).
EXPERIMENTS: dict[str, tuple[str, Callable[[], ExperimentReport]]] = {
    "fig01": ("machine occupancy CDFs", _fig01),
    "fig02": ("batch TPS vs IPS correlation", _fig02),
    "fig03": ("leaf latency vs CPI over 24h", _fig03),
    "fig04": ("per-tier latency-CPI correlation", _fig04),
    "fig05": ("diurnal CPI pattern", _fig05),
    "table1": ("representative job CPI specs", _table1),
    "fig07": ("CPI distribution + GEV fit", _fig07),
    "table2": ("parameter defaults", _table2),
    "case1": ("suspect ranking (Figure 8)", _case(1)),
    "case2": ("hard-cap recovery (Figure 9)", _case(2)),
    "case3": ("bimodal false alarm (Figure 10)", _case(3)),
    "case4": ("modest relief (Figure 11)", _case(4)),
    "case5": ("lame-duck mode (Figure 12)", _case(5)),
    "case6": ("MapReduce exit (Figure 13)", _case(6)),
    "sec7": ("identification rate", _sec7),
    "trials": ("Figures 14-16 trial summary", _trials),
    "ablations": ("design-choice probes", _ablations),
    "chaos": ("detection under injected faults (robustness)", _chaos),
    "placement": ("antagonist-aware placement (Section 9)", _placement),
    "actuators": ("CFS capping vs duty-cycle modulation (Section 8)",
                  _actuators),
}


def experiment_names() -> list[str]:
    """Registered experiment names, in presentation order."""
    return list(EXPERIMENTS)


def unknown_experiment_error(name: str) -> KeyError:
    """The error :func:`run_experiment` raises for an unknown name.

    Exposed so callers that pre-validate (the parallel CLI path) report
    the exact same message as the serial path.
    """
    return KeyError(f"unknown experiment {name!r}; valid: "
                    f"{', '.join(EXPERIMENTS)}")


def run_experiment(name: str) -> ExperimentReport:
    """Run one registered experiment by name.

    Raises:
        KeyError: listing the valid names, if ``name`` is unknown.
    """
    try:
        _description, runner = EXPERIMENTS[name]
    except KeyError:
        raise unknown_experiment_error(name) from None
    return runner()


def _run_experiment_with_metrics(name: str):
    """Pool entry point: run one experiment under a fresh default facade.

    The fresh facade isolates the worker from whatever the parent process
    accumulated before forking (otherwise the shipped state would
    double-count it), and the returned
    :func:`~repro.obs.metrics.export_state` dump lets the parent fold the
    worker's observability back into its own registry — without it,
    ``experiment --jobs N`` silently under-counts its metrics report.
    """
    from repro.obs import Observability, set_default_observability
    from repro.obs.metrics import export_state

    obs = Observability()
    set_default_observability(obs)
    report = run_experiment(name)
    return report, export_state(obs.metrics)


def run_experiments(names: Sequence[str], jobs: int = 1
                    ) -> list[tuple[str, ExperimentReport]]:
    """Run several experiments, optionally across a process pool.

    Every runner builds its own machines, pipelines, and RNGs from fixed
    seeds and shares nothing with its neighbours, so the reports are
    independent of worker count; ``pool.map`` returns them in input order.
    Worker observability is not discarded: each worker ships its default
    registry's state back with the report, and the states fold into this
    process's default registry in input order — so the post-run metrics
    report matches a serial run.

    Args:
        names: experiment names; all are validated before any run starts.
        jobs: worker processes (1 = run in this process).

    Returns:
        ``(name, report)`` pairs in input order.

    Raises:
        KeyError: for the first unknown name, before anything runs.
    """
    from repro.obs import default_observability
    from repro.obs.metrics import merge_state

    names = list(names)
    for name in names:
        if name not in EXPERIMENTS:
            raise unknown_experiment_error(name)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    jobs = min(jobs, len(names))
    if jobs <= 1:
        return [(name, run_experiment(name)) for name in names]
    from repro.experiments.workerpool import shared_pool

    # chunksize 1: experiment runtimes vary by an order of magnitude, so
    # let the pool balance them one at a time.  The pool persists across
    # calls (and is shared with run_trials), so repeated fan-outs pay the
    # worker spawn cost once.
    outcomes = shared_pool(jobs).map(_run_experiment_with_metrics, names,
                                     chunksize=1)
    registry = default_observability().metrics
    for _report, state in outcomes:
        merge_state(registry, state, gauges="set")
    return [(name, report) for name, (report, _state)
            in zip(names, outcomes)]
