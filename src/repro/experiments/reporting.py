"""Paper-vs-measured reporting for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the comparison in a uniform format, so ``pytest benchmarks/ -s`` reads as an
experiment log and EXPERIMENTS.md can be assembled from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Comparison", "ExperimentReport"]


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


@dataclass(frozen=True)
class Comparison:
    """One row: a quantity the paper reports and what we measured."""

    quantity: str
    paper: Any
    measured: Any
    note: str = ""


@dataclass
class ExperimentReport:
    """A named experiment's collection of comparisons, printable as a table."""

    experiment: str
    title: str
    rows: list[Comparison] = field(default_factory=list)

    def add(self, quantity: str, paper: Any, measured: Any,
            note: str = "") -> None:
        """Append one comparison row."""
        self.rows.append(Comparison(quantity, paper, measured, note))

    def add_series(self, name: str, pairs: Sequence[tuple[Any, Any]],
                   labels: Sequence[str] | None = None) -> None:
        """Append several rows of one logical series."""
        for i, (paper, measured) in enumerate(pairs):
            label = labels[i] if labels else f"{name}[{i}]"
            self.add(label, paper, measured)

    def render(self) -> str:
        """The report as a fixed-width text table."""
        header = f"== {self.experiment}: {self.title} =="
        q_width = max([len("quantity")] + [len(r.quantity) for r in self.rows])
        p_width = max([len("paper")] + [len(_fmt(r.paper)) for r in self.rows])
        m_width = max([len("measured")] + [len(_fmt(r.measured))
                                           for r in self.rows])
        lines = [header,
                 (f"{'quantity':<{q_width}}  {'paper':>{p_width}}  "
                  f"{'measured':>{m_width}}  note")]
        for row in self.rows:
            lines.append(
                f"{row.quantity:<{q_width}}  {_fmt(row.paper):>{p_width}}  "
                f"{_fmt(row.measured):>{m_width}}  {row.note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (benchmarks call this under ``-s``)."""
        print()
        print(self.render())
