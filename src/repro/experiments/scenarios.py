"""Reusable cluster scenarios for the evaluation experiments.

Each builder assembles a cluster that looks like a scaled-down slice of the
fleet the paper measured: mixed platforms, many tenants per machine, a
production/non-production split, and latency-sensitive services sharing
machines with batch work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.cluster.job import Job, JobSpec
from repro.cluster.machine import Machine
from repro.cluster.platform import PLATFORM_CATALOG, get_platform
from repro.cluster.simulation import ClusterSimulation, SimConfig
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.pipeline import CpiPipeline
from repro.core.specstore import DurableSpecStore
from repro.faults.profile import FaultProfile
from repro.obs import Observability
from repro.perf.sampler import SamplerConfig
from repro.records import CpiSpec
from repro.workloads import (
    AntagonistKind,
    make_antagonist_job_spec,
    make_batch_job_spec,
)
from repro.workloads.services import make_service_job_spec
from repro.workloads.websearch import SearchTier, make_websearch_job_spec

__all__ = ["Scenario", "build_cluster", "demo_scenario", "populated_fleet",
            "scale_scenario", "victim_antagonist_machine"]


@dataclass
class Scenario:
    """A ready-to-run cluster plus its CPI2 deployment and jobs."""

    simulation: ClusterSimulation
    pipeline: CpiPipeline
    jobs: dict[str, Job] = field(default_factory=dict)

    def submit(self, spec: JobSpec) -> Job:
        """Instantiate and place a job; tracked in :attr:`jobs`."""
        job = Job(spec)
        self.simulation.scheduler.submit(job)
        self.jobs[job.name] = job
        return job

    def bootstrap_service_spec(self, jobname: str, cpi_mean: float,
                               cpi_stddev: float) -> None:
        """Warm-start CPI specs for one job on every platform present."""
        platforms = {m.platform for m in self.simulation.machines.values()}
        self.pipeline.bootstrap_specs([
            CpiSpec(jobname=jobname, platforminfo=p.name, num_samples=10_000,
                    cpu_usage_mean=1.0,
                    cpi_mean=cpi_mean * p.cpi_scale,
                    cpi_stddev=cpi_stddev * p.cpi_scale)
            for p in platforms
        ])


def build_cluster(
    num_machines: int,
    seed: int = 0,
    config: CpiConfig = DEFAULT_CONFIG,
    platforms: Sequence[str] = ("westmere-2.6",),
    cpi_noise_sigma: float = 0.03,
    enable_migration: bool = False,
    fault_profile: "FaultProfile | str | None" = None,
    fault_seed: int = 0,
    obs: Optional[Observability] = None,
    tick_engine: Optional[str] = None,
    demand_engine: Optional[str] = None,
    telemetry: bool = False,
    spec_store: Optional["DurableSpecStore"] = None,
) -> Scenario:
    """A cluster of ``num_machines`` cycling through the given platforms.

    ``fault_profile`` / ``fault_seed`` select the transport/crash fault
    schedule (default: none — all paths in-process); ``obs`` isolates the
    run's telemetry from the process default, which the chaos sweep needs
    to attribute fault counters to one profile at a time; ``tick_engine``
    picks the machine tick implementation (``"vector"``/``"legacy"``,
    default per ``REPRO_TICK_ENGINE``) — the parity tests run both, and
    ``demand_engine`` does the same for the demand plane
    (``"vector"``/``"scalar"``, default per ``REPRO_DEMAND_ENGINE``).
    ``telemetry`` attaches the fleet telemetry plane (TSDB + alert rules)
    to the run's facade, creating an isolated one if ``obs`` was omitted.
    ``spec_store`` makes the aggregator durable (snapshot + WAL) even when
    the fault profile schedules no kills — the soak harness relies on it.
    """
    if num_machines < 1:
        raise ValueError(f"num_machines must be >= 1, got {num_machines}")
    if telemetry:
        obs = (obs or Observability()).enable_telemetry()
    machines = [
        Machine(f"m{i}", get_platform(platforms[i % len(platforms)]),
                cpi_noise_sigma=cpi_noise_sigma, tick_engine=tick_engine,
                demand_engine=demand_engine)
        for i in range(num_machines)
    ]
    sim = ClusterSimulation(machines, SimConfig(
        seed=seed,
        sampler=SamplerConfig(config.sampling_duration,
                              config.sampling_period)))
    pipeline = CpiPipeline(sim, config, enable_migration=enable_migration,
                           obs=obs, fault_profile=fault_profile,
                           fault_seed=fault_seed, spec_store=spec_store)
    return Scenario(simulation=sim, pipeline=pipeline)


def populated_fleet(num_machines: int = 12, seed: int = 0,
                    config: CpiConfig = DEFAULT_CONFIG,
                    multi_platform: bool = True,
                    antagonist_tasks: tuple[int, int] | None = None,
                    density: float = 1.0) -> Scenario:
    """A fleet resembling the paper's Figure 1 environment.

    A mix of web-search tiers, generic services, batch jobs of several sizes
    and a couple of antagonist jobs, spread so the median machine hosts many
    tenants.  ``antagonist_tasks`` overrides the (video, science) antagonist
    task counts — the Section 7 experiment uses a sparse (1, 1) so that, as
    in production, interference is the exception rather than the norm — and
    ``density`` scales the non-antagonist task counts (the paper's fleet ran
    around 40% CPU utilisation; density 1.0 packs machines much harder, which
    Figure 1 wants and Section 7 does not).
    """
    if density <= 0:
        raise ValueError(f"density must be positive, got {density}")
    platforms = (tuple(PLATFORM_CATALOG) if multi_platform
                 else ("westmere-2.6",))
    scenario = build_cluster(num_machines, seed=seed, config=config,
                             platforms=platforms)
    rng = np.random.default_rng(seed)

    def scaled(count: int) -> int:
        return max(1, int(round(count * density)))

    scenario.submit(make_websearch_job_spec(
        "websearch-leaf", SearchTier.LEAF,
        num_tasks=scaled(3 * num_machines),
        seed=int(rng.integers(2**31)), cpu_limit_per_task=2.0))
    scenario.submit(make_websearch_job_spec(
        "websearch-mixer", SearchTier.INTERMEDIATE,
        num_tasks=scaled(num_machines), seed=int(rng.integers(2**31)),
        cpu_limit_per_task=1.5))
    scenario.submit(make_service_job_spec(
        "bigtable-tablet", num_tasks=scaled(2 * num_machines),
        seed=int(rng.integers(2**31)), base_cpi=1.1))
    scenario.submit(make_service_job_spec(
        "storage-server", num_tasks=scaled(2 * num_machines),
        seed=int(rng.integers(2**31)), base_cpi=0.9, demand_level=0.7))
    scenario.submit(make_batch_job_spec(
        "logs-pipeline", num_tasks=scaled(4 * num_machines),
        seed=int(rng.integers(2**31)), cpu_limit_per_task=1.5,
        demand_level=0.8))
    scenario.submit(make_batch_job_spec(
        "index-build", num_tasks=scaled(2 * num_machines),
        seed=int(rng.integers(2**31)), cpu_limit_per_task=2.0,
        demand_level=1.2, best_effort=True))
    video_tasks, science_tasks = (antagonist_tasks if antagonist_tasks
                                  else (max(1, num_machines // 3),
                                        max(1, num_machines // 4)))
    if video_tasks > 0:
        scenario.submit(make_antagonist_job_spec(
            "video-transcode", AntagonistKind.VIDEO_PROCESSING,
            num_tasks=video_tasks, seed=int(rng.integers(2**31)),
            cpu_limit_per_task=6.0))
    if science_tasks > 0:
        scenario.submit(make_antagonist_job_spec(
            "science-sim", AntagonistKind.SCIENTIFIC_SIMULATION,
            num_tasks=science_tasks, seed=int(rng.integers(2**31)),
            cpu_limit_per_task=4.0))
    return scenario


def scale_scenario(num_machines: int = 50, seed: int = 11,
                   num_service_jobs: int = 5, num_batch_jobs: int = 5,
                   tasks_per_job: int = 50,
                   fault_profile: "FaultProfile | str | None" = None,
                   fault_seed: int = 0,
                   config: Optional[CpiConfig] = None,
                   telemetry: bool = False) -> Scenario:
    """The fleet-scale throughput workload (50 machines x 500 tasks).

    Used by ``benchmarks/test_scale_fleet.py`` and, being a module-level
    builder, by the sharded engine's workers
    (:func:`repro.cluster.shards.run_sharded` rebuilds it by reference in
    every worker process).  ``config`` overrides the paper defaults — the
    short parity runs relax ``spec_refresh_period`` and the per-task
    sample gate so a spec publish actually happens.
    """
    scenario = build_cluster(num_machines, seed=seed,
                             config=config or CpiConfig(),
                             fault_profile=fault_profile,
                             fault_seed=fault_seed, telemetry=telemetry)
    for i in range(num_service_jobs):
        scenario.submit(make_service_job_spec(
            f"svc-{i}", num_tasks=tasks_per_job, seed=100 + i))
    for i in range(num_batch_jobs):
        scenario.submit(make_batch_job_spec(
            f"batch-{i}", num_tasks=tasks_per_job, seed=200 + i))
    return scenario


def demo_scenario(seed: int = 42, fault_profile: "FaultProfile | str | None" = None,
                  fault_seed: int = 0,
                  obs: Optional[Observability] = None,
                  telemetry: bool = False) -> Scenario:
    """The CLI quickstart scenario: one machine, one victim, one antagonist.

    Module-level so ``python -m repro demo --jobs N`` can hand it to the
    sharded engine's workers by reference.  ``telemetry`` attaches the
    fleet telemetry plane (TSDB + alert rules) to the run's facade.
    """
    platform = get_platform("westmere-2.6")
    machine = Machine("demo", platform, cpi_noise_sigma=0.03)
    sim = ClusterSimulation([machine], SimConfig(seed=seed))
    obs = obs or Observability()
    if telemetry:
        obs.enable_telemetry()
    pipeline = CpiPipeline(sim, CpiConfig(), obs=obs,
                           fault_profile=fault_profile,
                           fault_seed=fault_seed)
    scenario = Scenario(simulation=sim, pipeline=pipeline)
    scenario.submit(make_service_job_spec("frontend", num_tasks=1,
                                          seed=seed))
    scenario.submit(make_antagonist_job_spec(
        "video", AntagonistKind.VIDEO_PROCESSING, num_tasks=1,
        seed=seed + 1, demand_scale=1.3))
    pipeline.bootstrap_specs([CpiSpec("frontend", platform.name, 10_000,
                                      1.0, 1.05, 0.08)])
    return scenario


def victim_antagonist_machine(
    seed: int = 0,
    config: CpiConfig = DEFAULT_CONFIG,
    antagonist_kind: AntagonistKind = AntagonistKind.VIDEO_PROCESSING,
    antagonist_scale: float = 1.2,
    num_filler_services: int = 4,
    num_filler_batch: int = 2,
    victim_cpi_mean: float = 1.05,
    victim_cpi_stddev: float = 0.08,
) -> tuple[Scenario, Job, Job]:
    """The canonical case-study setup: one machine, one victim, one antagonist.

    Filler services/batch tasks give the machine a realistic tenant count.
    Returns (scenario, victim_job, antagonist_job); the victim job's CPI spec
    is already bootstrapped.
    """
    scenario = build_cluster(1, seed=seed, config=config)
    rng = np.random.default_rng(seed)
    victim = scenario.submit(make_service_job_spec(
        "victim-service", num_tasks=1, seed=int(rng.integers(2**31)),
        base_cpi=1.0, cpu_limit_per_task=2.0))
    antagonist = scenario.submit(make_antagonist_job_spec(
        "antagonist", antagonist_kind, num_tasks=1,
        seed=int(rng.integers(2**31)), demand_scale=antagonist_scale,
        cpu_limit_per_task=8.0))
    for i in range(num_filler_services):
        scenario.submit(make_service_job_spec(
            f"filler-svc-{i}", num_tasks=1, seed=int(rng.integers(2**31)),
            base_cpi=0.9 + 0.1 * i, demand_level=0.5,
            cpu_limit_per_task=1.0))
    for i in range(num_filler_batch):
        scenario.submit(make_batch_job_spec(
            f"filler-batch-{i}", num_tasks=1, seed=int(rng.integers(2**31)),
            demand_level=0.4, cpu_limit_per_task=1.0))
    scenario.bootstrap_service_spec("victim-service", victim_cpi_mean,
                                    victim_cpi_stddev)
    return scenario, victim, antagonist
