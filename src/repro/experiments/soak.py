"""Churn soak: sustained job turnover with periodic aggregator kills.

Not a paper figure — the operational bar a durable control plane has to
clear before anyone trusts it with a fleet: hours of jobs arriving and
completing while the central aggregation service is killed on a schedule
and restored from its snapshot + WAL spec store each time.  The harness
asserts three things the unit tests cannot:

* **Zero spec drift** — a never-crashed reference aggregator
  (:meth:`~repro.core.specstore.AggregatorHost.attach_reference`) is fed
  the same accepted mutations; at the end every published spec and every
  in-period Welford accumulator must match the durable aggregator
  bit-for-bit (hex-exact float comparison).
* **Bounded memory** — RSS and live-object growth over the run stay under
  explicit ceilings, and the WAL never grows past what one snapshot
  interval can accumulate (compaction is actually compacting).
* **Counted recovery** — every scheduled kill produced a restart, WAL
  records were replayed, snapshots fired; all of it surfaced through the
  metrics registry (``aggregator_restarts``, ``wal_replayed_records``,
  ``snapshot_compactions``) and, when the telemetry plane is attached,
  scraped into the TSDB where the ``aggregator_flapping`` rule watches it.

``python -m repro soak`` drives this from the command line and exits
non-zero if any check fails; CI runs a short smoke configuration.
"""

from __future__ import annotations

import gc
import json
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cluster.scheduler import PlacementError
from repro.core.config import CpiConfig
from repro.core.specstore import DurableSpecStore
from repro.experiments.scenarios import Scenario, build_cluster
from repro.faults.profile import FAULT_PROFILES
from repro.obs import Observability
from repro.workloads import (AntagonistKind, make_antagonist_job_spec,
                             make_batch_job_spec)
from repro.workloads.services import make_service_job_spec

__all__ = ["SoakCheck", "SoakReport", "soak_config", "run_soak"]

#: Churn cadence: one arrival wave per simulated five minutes.
CHURN_STEP_SECONDS = 300


def soak_config(**overrides) -> CpiConfig:
    """The soak harness's CPI config: fast specs, frequent snapshots.

    Refreshes every 20 minutes with low sample floors so specs actually
    publish inside a bounded run, and snapshots every 10 minutes so a
    multi-kill soak exercises compaction repeatedly.
    """
    defaults = dict(spec_refresh_period=1200, min_tasks_for_spec=4,
                    min_samples_per_task=5, specstore_snapshot_interval=600)
    defaults.update(overrides)
    return CpiConfig(**defaults)


@dataclass(frozen=True)
class SoakCheck:
    """One pass/fail assertion with its observed evidence."""

    name: str
    passed: bool
    detail: str


@dataclass
class SoakReport:
    """Everything a soak run measured, plus its verdicts."""

    seconds: int
    num_machines: int
    kill_ticks: tuple[int, ...]
    outage_seconds: int
    arrivals: int = 0
    placement_failures: int = 0
    total_samples: int = 0
    incidents: int = 0
    specs_published: int = 0
    restarts: int = 0
    records_replayed: int = 0
    snapshots: int = 0
    wal_peak_records: int = 0
    batches_refused: int = 0
    rss_baseline_kib: int = 0
    rss_peak_kib: int = 0
    objects_baseline: int = 0
    objects_peak: int = 0
    alerts_fired: dict = field(default_factory=dict)
    drift: dict = field(default_factory=dict)
    checks: list[SoakCheck] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def to_json(self) -> str:
        data = {
            name: value for name, value in self.__dict__.items()
            if name != "checks"
        }
        data["kill_ticks"] = list(self.kill_ticks)
        data["checks"] = [check.__dict__ for check in self.checks]
        data["passed"] = self.passed
        return json.dumps(data, indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [
            f"soak: {self.seconds}s on {self.num_machines} machines, "
            f"{len(self.kill_ticks)} aggregator kill(s), "
            f"outage {self.outage_seconds}s",
            f"  churn: {self.arrivals} arrivals "
            f"({self.placement_failures} placement failures), "
            f"{self.total_samples} samples, {self.incidents} incidents, "
            f"{self.specs_published} specs published",
            f"  recovery: {self.restarts} restarts, "
            f"{self.records_replayed} WAL records replayed, "
            f"{self.snapshots} snapshots, "
            f"WAL peak {self.wal_peak_records} records, "
            f"{self.batches_refused} batches refused",
            f"  memory: RSS {self.rss_baseline_kib} -> "
            f"{self.rss_peak_kib} KiB, objects {self.objects_baseline} -> "
            f"{self.objects_peak}",
        ]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            lines.append(f"  [{mark}] {check.name}: {check.detail}")
        lines.append(f"result: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _rss_kib() -> int:
    """Resident set size in KiB (Linux /proc, portable fallback)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    import resource

    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _live_objects() -> int:
    gc.collect()
    return len(gc.get_objects())


def _finite_factory(spec, lifetime: float):
    """Wrap a job spec's workload factory so tasks finish after a while."""
    base = spec.workload_factory

    def factory(index):
        workload = base(index)
        original = workload.on_tick

        def on_tick(t, granted, capped):
            outcome = original(t, granted, capped)
            if outcome is None and workload.granted_cpu_seconds > lifetime:
                return "completed"
            return outcome

        workload.on_tick = on_tick
        return workload

    return factory


def _churn_submit(scenario: Scenario, step: int, seed: int,
                  rng: np.random.Generator) -> tuple[int, int]:
    """One churn wave: a short-lived batch job, periodically an antagonist."""
    arrivals = 0
    failures = 0
    specs = [make_batch_job_spec(
        f"churn-batch-{step}", num_tasks=int(rng.integers(2, 6)),
        seed=seed + step, demand_level=float(rng.uniform(0.4, 1.5)))]
    if step % 4 == 0:
        kinds = list(AntagonistKind)
        specs.append(make_antagonist_job_spec(
            f"churn-ant-{step}", kinds[step % len(kinds)], num_tasks=1,
            seed=seed + 1000 + step, demand_scale=1.2))
    for spec in specs:
        lifetime = float(rng.uniform(600, 1800))
        spec = type(spec)(**{**spec.__dict__,
                             "workload_factory": _finite_factory(spec,
                                                                 lifetime)})
        try:
            scenario.submit(spec)
            arrivals += 1
        except PlacementError:
            failures += 1
    return arrivals, failures


def run_soak(
    seconds: int = 7200,
    seed: int = 0,
    num_machines: int = 8,
    kill_period: int = 900,
    outage_seconds: int = 60,
    fault_seed: int = 1,
    config: Optional[CpiConfig] = None,
    store_dir: Optional[str] = None,
    obs: Optional[Observability] = None,
    telemetry: bool = True,
    rss_growth_limit_kib: int = 256 * 1024,
    object_growth_limit: int = 1_000_000,
) -> SoakReport:
    """Run the churn soak and return its report.

    Kills fire every ``kill_period`` seconds (none at t=0); each takes the
    aggregator down for ``outage_seconds`` before the store restores it.
    ``store_dir`` additionally mirrors the spec store to disk (WAL +
    snapshot files land there for CI artifact upload).
    """
    if seconds < CHURN_STEP_SECONDS:
        raise ValueError(f"seconds must be >= {CHURN_STEP_SECONDS}, "
                         f"got {seconds}")
    config = config or soak_config()
    kill_ticks = tuple(range(kill_period, seconds, kill_period))
    profile = FAULT_PROFILES["none"].with_overrides(
        name="soak", aggregator_kill_ticks=kill_ticks,
        aggregator_outage_seconds=outage_seconds)
    obs = obs or Observability()
    if telemetry:
        obs.enable_telemetry()
    scenario = build_cluster(num_machines, seed=seed, config=config,
                             fault_profile=profile, fault_seed=fault_seed,
                             obs=obs, telemetry=telemetry,
                             spec_store=DurableSpecStore(obs=obs))
    pipeline = scenario.pipeline
    host = pipeline.host
    assert host is not None  # the explicit spec store forces the host
    if store_dir is not None:
        host.store.attach_disk(store_dir)
    scenario.submit(make_service_job_spec("stable-svc",
                                          num_tasks=2 * num_machines,
                                          seed=seed))
    host.attach_reference()
    report = SoakReport(seconds=seconds, num_machines=num_machines,
                        kill_ticks=kill_ticks,
                        outage_seconds=outage_seconds)
    sim = scenario.simulation
    rng = np.random.default_rng(seed)
    registry = obs.metrics
    steps = seconds // CHURN_STEP_SECONDS
    wal_peak = 0
    rss_peak = 0
    objects_peak = 0
    for step in range(steps):
        sim.run(CHURN_STEP_SECONDS)
        arrived, failed = _churn_submit(scenario, step, seed, rng)
        report.arrivals += arrived
        report.placement_failures += failed
        wal_peak = max(wal_peak, host.store.wal_records)
        rss = _rss_kib()
        objects = _live_objects()
        if step == 0:
            # Baseline after one step: caches and pools have warmed up,
            # growth from here on is what the bound is about.
            report.rss_baseline_kib = rss
            report.objects_baseline = objects
        rss_peak = max(rss_peak, rss)
        objects_peak = max(objects_peak, objects)
        registry.gauge("soak_rss_kib").set(rss)
        registry.gauge("soak_live_objects").set(objects)
        registry.gauge("soak_wal_records").set(host.store.wal_records)
    remainder = seconds - steps * CHURN_STEP_SECONDS
    if remainder:
        sim.run(remainder)
    wal_peak = max(wal_peak, host.store.wal_records)
    report.wal_peak_records = wal_peak
    report.rss_peak_kib = rss_peak
    report.objects_peak = objects_peak
    report.total_samples = pipeline.total_samples
    report.incidents = len(pipeline.all_incidents())
    report.specs_published = len(pipeline.aggregator.specs())
    report.restarts = host.restarts
    report.records_replayed = host.records_replayed
    report.snapshots = host.store.snapshots_taken
    report.batches_refused = int(
        registry.total("aggregator_batches_refused"))
    if obs.alerts is not None:
        report.alerts_fired = dict(obs.alerts.fired_counts())
    report.drift = host.reference_drift()
    _verdicts(report, config, num_machines,
              rss_growth_limit_kib, object_growth_limit)
    return report


def _verdicts(report: SoakReport, config: CpiConfig, num_machines: int,
              rss_growth_limit_kib: int, object_growth_limit: int) -> None:
    """Attach the pass/fail checks to a finished report."""
    drift = report.drift
    report.checks.append(SoakCheck(
        "zero_spec_drift", bool(drift.get("exact")),
        f"durable vs reference aggregator: "
        f"{drift.get('specs_compared', 0)} specs and "
        f"{drift.get('accumulators_compared', 0)} accumulators compared, "
        f"exact={drift.get('exact')}"))
    rss_growth = report.rss_peak_kib - report.rss_baseline_kib
    report.checks.append(SoakCheck(
        "bounded_rss", rss_growth <= rss_growth_limit_kib,
        f"RSS grew {rss_growth} KiB (limit {rss_growth_limit_kib})"))
    object_growth = report.objects_peak - report.objects_baseline
    report.checks.append(SoakCheck(
        "bounded_objects", object_growth <= object_growth_limit,
        f"live objects grew {object_growth} (limit {object_growth_limit})"))
    # One window per machine per sampling period, plus refresh records and
    # slack for arrivals straddling the snapshot tick: if compaction works
    # the WAL can never hold much more than one snapshot interval's worth.
    wal_limit = (config.specstore_snapshot_interval
                 // config.sampling_period + 2) * (num_machines + 2)
    report.checks.append(SoakCheck(
        "wal_compaction_bounds_wal",
        report.wal_peak_records <= wal_limit,
        f"WAL peaked at {report.wal_peak_records} records "
        f"(limit {wal_limit})"))
    expected_restarts = len(report.kill_ticks)
    report.checks.append(SoakCheck(
        "every_kill_recovered", report.restarts == expected_restarts,
        f"{report.restarts} restarts for {expected_restarts} scheduled "
        f"kills"))
    report.checks.append(SoakCheck(
        "recovery_telemetry_counted",
        report.restarts > 0 and report.records_replayed > 0
        and report.snapshots > 0,
        f"restarts={report.restarts}, "
        f"wal_replayed={report.records_replayed}, "
        f"snapshots={report.snapshots}"))
