"""The Section 7 large-scale evaluation harness.

"To evaluate what enforcement would do if it were more widely deployed, we
periodically look for recently-reported antagonists and manually cap their
CPU rate for 5 minutes, and examine the victim's CPI to see if it improves.
We collected data for about 400 such trials."

:func:`run_trial` reproduces one such trial end to end:

1. **Calibrate** (phase A): the victim runs with the antagonist idle; its CPI
   samples build the spec (mean, stddev) exactly as the aggregator would.
2. **Interfere** (phase B): the antagonist (if this trial has one) runs its
   bursty schedule; the outlier detector watches the victim; at the end the
   correlation engine ranks every co-tenant.
3. **Cap** (phase C): the *top-ranked* suspect is manually hard-capped for
   five minutes, whatever its correlation — recording the raw correlation
   lets every threshold be evaluated offline, which is how Figures 15a/16a
   sweep the threshold.

Classification follows Section 7.2: comparing the victim's CPI when the
antagonist was reported against the CPI during the cap, with the spec's
stddev as the margin — lower by a margin = true positive, higher = false
positive, neither = noise.

Production vs non-production victims differ the way the paper says they do:
"non-production jobs' behaviors are less uniform (e.g., engineers testing
experimental features)" — non-production victims get a slow random CPI
wander on top of their base behaviour, so their calibration is less
predictive and their trials noisier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.platform import get_platform
from repro.cluster.interference import ResourceProfile
from repro.cluster.job import Job, JobSpec
from repro.cluster.task import PriorityBand, SchedulingClass
from repro.core.config import CpiConfig, DEFAULT_CONFIG
from repro.core.identify import rank_cotenant_suspects, resolve_analysis_engine
from repro.core.outlier import OutlierDetector
from repro.perf.events import CounterEvent
from repro.perf.sampler import CpiSampler, SamplerConfig
from repro.records import CpiSpec
from repro.workloads import AntagonistKind, make_antagonist_workload
from repro.workloads.base import SyntheticWorkload
from repro.workloads.demand import constant, with_noise

__all__ = ["TrialConfig", "TrialResult", "run_trial", "run_trials",
           "TRIALS_PARALLEL_MIN_PER_JOB"]

#: Minimum trials per worker before ``run_trials`` fans out.  One trial
#: is ~100ms of work; below this floor the pool round-trips (task
#: pickling, result shipping, registry merges) eat the win, so shorter
#: corpora run serial and count ``trials_serial_fallback``.  Pass
#: ``min_per_job=0`` to force fan-out (parity tests do).
TRIALS_PARALLEL_MIN_PER_JOB = 8

#: Antagonist archetypes sampled by the trial generator.
_TRIAL_KINDS = (
    AntagonistKind.VIDEO_PROCESSING,
    AntagonistKind.SCIENTIFIC_SIMULATION,
    AntagonistKind.REPLAYER,
    AntagonistKind.CACHE_THRASHER,
    AntagonistKind.MEMBW_HOG,
    AntagonistKind.COMPRESSION,
)

_VICTIM_PROFILE = ResourceProfile(
    cache_mib_per_cpu=2.0, membw_gbps_per_cpu=1.0,
    cache_sensitivity=0.9, membw_sensitivity=0.7, base_l3_mpki=2.5)

_FILLER_PROFILE = ResourceProfile(
    cache_mib_per_cpu=0.7, membw_gbps_per_cpu=0.35,
    cache_sensitivity=0.4, membw_sensitivity=0.3, base_l3_mpki=1.5)


@dataclass(frozen=True)
class TrialConfig:
    """Phase durations and environment knobs for one trial."""

    calibration_seconds: int = 600
    interference_seconds: int = 900
    cap_seconds: int = 300            # the paper's 5-minute manual cap
    antagonist_probability: float = 0.75
    #: Probability (given an antagonist) of a *second* antagonist — the
    #: shared-blame case where capping only the top suspect half-helps.
    second_antagonist_probability: float = 0.2
    nonproduction_probability: float = 0.35
    #: CPI wander amplitude for non-production victims.
    nonprod_wander: float = 0.15
    cpi_config: CpiConfig = DEFAULT_CONFIG


@dataclass
class TrialResult:
    """Everything Figures 14-16 need from one trial."""

    seed: int
    band: PriorityBand
    has_antagonist: bool
    antagonist_kind: Optional[str]
    num_tenants: int
    #: Machine CPU utilisation (granted / capacity) during interference.
    utilization: float
    #: Victim spec learned during calibration.
    spec_mean: float
    spec_stddev: float
    #: Whether the 3-in-5-minutes anomaly fired during interference.
    anomaly_detected: bool
    #: Victim mean CPI over the last windows of interference (pre-cap).
    pre_cpi: float
    #: Top suspect info (always recorded; threshold applied offline).
    top_suspect: Optional[str]
    top_suspect_job: Optional[str]
    top_correlation: float
    picked_true_antagonist: bool
    #: Victim mean CPI during the cap.
    post_cpi: float
    #: Victim L3 misses/instruction before and during the cap.
    pre_l3_mpi: float
    post_l3_mpi: float
    #: Victim L2 misses/instruction before and during the cap (the private
    #: cache barely responds to co-runner pressure).
    pre_l2_mpi: float = float("nan")
    post_l2_mpi: float = float("nan")
    #: Victim memory requests per cycle before and during the cap.
    pre_mem_req_per_cycle: float = float("nan")
    post_mem_req_per_cycle: float = float("nan")

    @property
    def relative_cpi(self) -> float:
        """CPI during throttling over CPI before (Fig 15b/16c/16d metric)."""
        return self.post_cpi / self.pre_cpi if self.pre_cpi > 0 else float("nan")

    @property
    def cpi_degradation(self) -> float:
        """Pre-cap CPI over the job's mean CPI (Fig 16c's x-axis)."""
        return self.pre_cpi / self.spec_mean if self.spec_mean > 0 else float("nan")

    @property
    def cpi_increase_sigmas(self) -> float:
        """How many spec stddevs the pre-cap CPI sits above the mean."""
        if self.spec_stddev <= 0:
            return float("inf")
        return (self.pre_cpi - self.spec_mean) / self.spec_stddev

    @property
    def relative_l3(self) -> float:
        """L3 MPI during the cap over before it (Fig 15c's y-axis)."""
        return (self.post_l3_mpi / self.pre_l3_mpi
                if self.pre_l3_mpi > 0 else float("nan"))

    @property
    def relative_l2(self) -> float:
        """L2 MPI during the cap over before it."""
        return (self.post_l2_mpi / self.pre_l2_mpi
                if self.pre_l2_mpi > 0 else float("nan"))

    @property
    def relative_mem_req_per_cycle(self) -> float:
        """Memory requests/cycle during the cap over before it."""
        return (self.post_mem_req_per_cycle / self.pre_mem_req_per_cycle
                if self.pre_mem_req_per_cycle > 0 else float("nan"))

    def classify(self) -> str:
        """'tp' / 'fp' / 'noise' per Section 7.2's stddev margin."""
        margin = self.spec_stddev
        if self.post_cpi < self.pre_cpi - margin:
            return "tp"
        if self.post_cpi > self.pre_cpi + margin:
            return "fp"
        return "noise"


def _make_victim(rng: np.random.Generator, band: PriorityBand,
                 wander: float) -> SyntheticWorkload:
    demand = with_noise(constant(float(rng.uniform(0.8, 1.5))), 0.06, rng)
    modulation = None
    if band is PriorityBand.NONPRODUCTION and wander > 0:
        # "Non-production jobs' behaviors are less uniform (e.g., engineers
        # testing experimental features)": a random walk in base CPI, plus —
        # half the time — a self-inflicted CPI oscillation (phases of
        # different work) whose highs look exactly like interference but
        # that no amount of antagonist-throttling fixes, plus occasionally a
        # permanent step change (a new binary push).
        steps = rng.normal(0.0, wander / 2.0, size=8192)
        walk = np.clip(1.0 + np.cumsum(steps) * 0.3, 1.0 - wander,
                       1.0 + wander)
        osc_amp = 0.0
        osc_period = 600
        osc_phase = 0
        if rng.random() < 0.5:
            osc_amp = float(rng.uniform(0.3, 0.8))
            osc_period = int(rng.integers(300, 900))
            osc_phase = int(rng.integers(osc_period))
        step_at = None
        step_size = 0.0
        if rng.random() < 0.4:
            step_at = int(rng.integers(700, 1600))
            step_size = float(rng.choice((-1.0, 1.0))
                              * rng.uniform(0.08, 0.22))

        def modulation(t: int, _walk=walk, _at=step_at, _size=step_size,
                       _amp=osc_amp, _period=osc_period,
                       _phase=osc_phase) -> float:
            value = float(_walk[min(len(_walk) - 1, t // 30)])
            if _amp > 0.0 and ((t + _phase) % _period) < _period / 2:
                value *= 1.0 + _amp
            if _at is not None and t >= _at:
                value *= 1.0 + _size
            return value

    return SyntheticWorkload(
        base_cpi=float(rng.uniform(0.9, 1.3)),
        profile=_VICTIM_PROFILE,
        demand=demand,
        threads=16,
        cpi_modulation=modulation,
    )


def _single_task_job(name: str, workload: SyntheticWorkload,
                     scheduling_class: SchedulingClass,
                     band: PriorityBand, cpu_limit: float) -> Job:
    return Job(JobSpec(
        name=name, num_tasks=1, scheduling_class=scheduling_class,
        priority_band=band, cpu_limit_per_task=cpu_limit,
        workload_factory=lambda index: workload))


def _gated(workload: SyntheticWorkload, start: int) -> SyntheticWorkload:
    """Silence a workload's demand before ``start`` (calibration phase)."""
    original = workload.cpu_demand

    def gated_demand(t: int) -> float:
        return 0.0 if t < start else original(t)

    workload.cpu_demand = gated_demand  # type: ignore[method-assign]
    return workload


def run_trial(seed: int, config: TrialConfig | None = None) -> TrialResult:
    """Run one manual-capping trial; see the module docstring for phases."""
    config = config or TrialConfig()
    cpi_config = config.cpi_config
    rng = np.random.default_rng(np.random.SeedSequence((0xC0FFEE, seed)))

    band = (PriorityBand.NONPRODUCTION
            if rng.random() < config.nonproduction_probability
            else PriorityBand.PRODUCTION)
    has_antagonist = bool(rng.random() < config.antagonist_probability)

    machine = Machine(f"trial-{seed}", get_platform("westmere-2.6"),
                      rng=np.random.default_rng(
                          np.random.SeedSequence((0xFACE, seed))),
                      cpi_noise_sigma=0.03)

    victim_workload = _make_victim(rng, band, config.nonprod_wander)
    victim = _single_task_job("victim", victim_workload,
                              SchedulingClass.LATENCY_SENSITIVE, band, 2.0)
    machine.place(victim.tasks[0])

    antagonist_kind: Optional[AntagonistKind] = None
    antagonist_job: Optional[Job] = None
    if has_antagonist:
        antagonist_kind = _TRIAL_KINDS[int(rng.integers(len(_TRIAL_KINDS)))]
        workload = make_antagonist_workload(
            antagonist_kind, rng,
            demand_scale=float(rng.uniform(0.6, 1.6)))
        _gated(workload, config.calibration_seconds)
        antagonist_job = _single_task_job(
            "antagonist", workload, SchedulingClass.BATCH,
            PriorityBand.NONPRODUCTION, 8.0)
        machine.place(antagonist_job.tasks[0])
        if rng.random() < config.second_antagonist_probability:
            # Shared blame: two antagonists split the interference, so
            # capping only the top-ranked one brings partial relief.
            second_kind = _TRIAL_KINDS[int(rng.integers(len(_TRIAL_KINDS)))]
            second = make_antagonist_workload(
                second_kind, rng, demand_scale=float(rng.uniform(0.6, 1.3)))
            _gated(second, config.calibration_seconds)
            machine.place(_single_task_job(
                "antagonist-2", second, SchedulingClass.BATCH,
                PriorityBand.NONPRODUCTION, 8.0).tasks[0])

    from repro.workloads.demand import on_off

    num_fillers = int(rng.integers(2, 12))
    for i in range(num_fillers):
        if rng.random() < 0.5:
            # Bursty filler: its usage spikes can spuriously line up with
            # the victim's bad minutes and out-correlate the real culprit.
            period = int(rng.integers(240, 900))
            demand = with_noise(
                on_off(float(rng.uniform(0.5, 2.5)),
                       float(rng.uniform(0.05, 0.5)),
                       period=period, duty=float(rng.uniform(0.3, 0.7)),
                       phase=int(rng.integers(period))), 0.08, rng)
        else:
            demand = with_noise(constant(float(rng.uniform(0.2, 2.2))),
                                0.08, rng)
        filler = SyntheticWorkload(
            base_cpi=float(rng.uniform(0.7, 1.6)),
            profile=_FILLER_PROFILE,
            demand=demand,
            threads=8)
        scheduling = (SchedulingClass.LATENCY_SENSITIVE if rng.random() < 0.5
                      else SchedulingClass.BATCH)
        machine.place(_single_task_job(
            f"filler-{i}", filler, scheduling,
            PriorityBand.NONPRODUCTION, 3.0).tasks[0])

    sampler = CpiSampler(machine, SamplerConfig(
        cpi_config.sampling_duration, cpi_config.sampling_period))
    detector = OutlierDetector(cpi_config)

    calibration_cpis: list[float] = []
    victim_samples: list = []
    anomaly_detected = False
    spec: Optional[CpiSpec] = None
    granted_sum = 0.0
    granted_ticks = 0

    victim_name = victim.tasks[0].name
    victim_cgroup = victim.tasks[0].cgroup.name
    end_a = config.calibration_seconds
    end_b = end_a + config.interference_seconds
    end_c = end_b + config.cap_seconds

    def counter_snapshot():
        counters = machine.counters.counters_for(victim_cgroup)
        return {
            "l3": counters.read(CounterEvent.L3_MISSES),
            "l2": counters.read(CounterEvent.L2_MISSES),
            "mem": counters.read(CounterEvent.MEMORY_REQUESTS),
            "instr": counters.read(CounterEvent.INSTRUCTIONS_RETIRED),
            "cycles": counters.read(CounterEvent.CPU_CLK_UNHALTED_REF),
        }
    for t in range(end_a):
        machine.tick(t)
        for sample in sampler.tick(t):
            if sample.taskname == victim_name:
                calibration_cpis.append(sample.cpi)

    if len(calibration_cpis) < 3:
        raise RuntimeError(f"trial {seed}: calibration produced too few samples")
    calibration_mean = float(np.mean(calibration_cpis))
    # Floor the stddev at ~8% of the mean: 10-second counting windows
    # average away most measurement noise, but a real spec is built from
    # thousands of heterogeneous tasks (Table 1's stddevs run 10-20% of the
    # mean), so declarations happen at single-digit sigma counts as in
    # Figure 16b.
    calibration_std = max(0.08 * calibration_mean,
                          float(np.std(calibration_cpis)))
    if band is PriorityBand.NONPRODUCTION:
        # Specs refresh every 24 hours; a non-production job's behaviour has
        # often moved on since (usually upward: heavier experiments).  A
        # stale, underestimating spec is the main source of the paper's
        # weaker non-production accuracy: the victim looks chronically
        # anomalous, an active co-tenant picks up a spurious correlation,
        # and capping it cannot restore a CPI the victim never had.
        calibration_mean *= float(rng.uniform(0.60, 1.05))
    spec = CpiSpec(
        jobname="victim", platforminfo=machine.platform.name,
        num_samples=len(calibration_cpis), cpu_usage_mean=1.0,
        cpi_mean=calibration_mean,
        cpi_stddev=calibration_std,
    )

    pre_counters_start = counter_snapshot()
    for t in range(end_a, end_b):
        result = machine.tick(t)
        granted_sum += sum(result.grants.values())
        granted_ticks += 1
        for sample in sampler.tick(t):
            if sample.taskname != victim_name:
                continue
            victim_samples.append(sample)
            _, anomaly = detector.observe(sample, spec)
            if anomaly is not None:
                anomaly_detected = True
    pre_counters_end = counter_snapshot()

    # Rank suspects over the last correlation window of phase B.
    horizon = end_b - cpi_config.correlation_window
    window = [s for s in victim_samples if s.timestamp_seconds > horizon]
    timestamps = [int(s.timestamp_seconds) for s in window]
    victim_cpi_series = [s.cpi for s in window]
    threshold = spec.outlier_threshold(cpi_config.outlier_stddevs)
    ranked, suspect_tasks = rank_cotenant_suspects(
        machine.resident_tasks(), "victim", victim_cpi_series, timestamps,
        threshold, cpi_config.sampling_duration,
        engine=resolve_analysis_engine())
    top = ranked[0] if ranked else None

    pre_window = [s.cpi for s in victim_samples
                  if s.timestamp_seconds > end_b - 360]
    pre_cpi = float(np.mean(pre_window)) if pre_window else float(
        np.mean(victim_cpi_series)) if victim_cpi_series else spec.cpi_mean

    # Phase C: cap the top suspect (manually, whatever its correlation).
    if top is not None:
        suspect_tasks[top.taskname].cgroup.apply_cap(
            cpi_config.hardcap_quota_batch, now=end_b,
            duration=config.cap_seconds)
    post_counters_start = counter_snapshot()
    post_cpis: list[float] = []
    for t in range(end_b, end_c):
        machine.tick(t)
        for sample in sampler.tick(t):
            if sample.taskname == victim_name:
                post_cpis.append(sample.cpi)
    post_counters_end = counter_snapshot()
    post_cpi = float(np.mean(post_cpis)) if post_cpis else pre_cpi

    def per(event, base, start, end):
        delta_event = end[event] - start[event]
        delta_base = end[base] - start[base]
        return delta_event / delta_base if delta_base > 0 else float("nan")

    return TrialResult(
        seed=seed,
        band=band,
        has_antagonist=has_antagonist,
        antagonist_kind=antagonist_kind.value if antagonist_kind else None,
        num_tenants=machine.num_tasks,
        utilization=(granted_sum / granted_ticks / machine.cpu_capacity
                     if granted_ticks else 0.0),
        spec_mean=spec.cpi_mean,
        spec_stddev=spec.cpi_stddev,
        anomaly_detected=anomaly_detected,
        pre_cpi=pre_cpi,
        top_suspect=top.taskname if top else None,
        top_suspect_job=top.jobname if top else None,
        top_correlation=top.correlation if top else 0.0,
        picked_true_antagonist=bool(
            top and top.jobname.startswith("antagonist")),
        post_cpi=post_cpi,
        pre_l3_mpi=per("l3", "instr", pre_counters_start, pre_counters_end),
        post_l3_mpi=per("l3", "instr", post_counters_start,
                        post_counters_end),
        pre_l2_mpi=per("l2", "instr", pre_counters_start, pre_counters_end),
        post_l2_mpi=per("l2", "instr", post_counters_start,
                        post_counters_end),
        pre_mem_req_per_cycle=per("mem", "cycles", pre_counters_start,
                                  pre_counters_end),
        post_mem_req_per_cycle=per("mem", "cycles", post_counters_start,
                                   post_counters_end),
    )


def _run_trial_star(seed_and_config: tuple[int, TrialConfig | None]
                    ) -> tuple[TrialResult, dict]:
    """Pool entry point: unpack ``(seed, config)`` for :func:`run_trial`.

    Runs under a fresh default observability facade (isolating the worker
    from any state inherited across ``fork``) and ships the trial's
    registry state back alongside the result, so the parent's metrics
    report doesn't silently lose the detector counters trials record.
    """
    from repro.obs import Observability, set_default_observability
    from repro.obs.metrics import export_state

    seed, config = seed_and_config
    obs = Observability()
    set_default_observability(obs)
    return run_trial(seed, config), export_state(obs.metrics)


def run_trials(num_trials: int, config: TrialConfig | None = None,
               seed_base: int = 0, jobs: int = 1,
               min_per_job: Optional[int] = None) -> list[TrialResult]:
    """Run ``num_trials`` independent trials (the paper collected ~400).

    Every trial is seeded from its own ``SeedSequence((0xC0FFEE, seed))`` /
    ``((0xFACE, seed))`` pair and shares no state with its neighbours, so
    with ``jobs > 1`` the trials fan out across the persistent shared
    process pool (:mod:`repro.experiments.workerpool` — spawned once per
    process, reused by every fan-out) and ``pool.map`` reassembles the
    results in seed order — the returned list is identical to a serial
    run, trial for trial and bit for bit.  Worker observability ships
    back with each result and folds into this process's default registry
    in seed order, so the metrics report no longer under-counts under
    ``jobs > 1``.

    Corpora shorter than ``min_per_job`` trials per worker (default
    :data:`TRIALS_PARALLEL_MIN_PER_JOB`) run serial instead — the pool
    round-trips would cost more than they save — counting a
    ``trials_serial_fallback`` tick in the default metrics registry.
    """
    if num_trials < 1:
        raise ValueError(f"num_trials must be >= 1, got {num_trials}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    from repro.obs import default_observability
    from repro.obs.metrics import merge_state

    jobs = min(jobs, num_trials)
    if min_per_job is None:
        min_per_job = TRIALS_PARALLEL_MIN_PER_JOB
    if jobs > 1 and num_trials < jobs * min_per_job:
        default_observability().metrics.counter(
            "trials_serial_fallback").inc()
        jobs = 1
    if jobs == 1:
        return [run_trial(seed_base + i, config) for i in range(num_trials)]
    from repro.experiments.workerpool import shared_pool

    work = [(seed_base + i, config) for i in range(num_trials)]
    chunksize = max(1, num_trials // (jobs * 4))
    pool = shared_pool(jobs)
    outcomes = pool.map(_run_trial_star, work, chunksize=chunksize)
    registry = default_observability().metrics
    for _result, state in outcomes:
        merge_state(registry, state, gauges="set")
    return [result for result, _state in outcomes]
