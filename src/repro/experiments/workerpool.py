"""A process-wide worker pool for coarse-grained experiment fan-outs.

``run_trials(jobs=N)`` and ``run_experiments(jobs=N)`` both fan
independent units of work across a ``multiprocessing.Pool``; before this
module each call built (and tore down) its own pool, so short corpora
paid more in process spawning than they saved in parallelism — the
``trials_parallel`` bench measured 0.74x *against* serial on the default
corpus.  :func:`shared_pool` keeps one fork-preferred pool alive for the
life of the process instead (the coarse-fan-out sibling of
:class:`repro.cluster.shards.ShardPool`), growing it when a caller asks
for more workers and shutting it down atexit.

Fork is preferred where available (Linux): workers inherit the warm
interpreter and imported modules instead of re-importing them.  Results
never depend on the pool shape — every entry point uses ordered
``pool.map`` over per-unit seeds.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
from typing import Optional

__all__ = ["shared_pool", "shutdown_pool"]

_POOL: Optional[mp.pool.Pool] = None
_POOL_SIZE = 0


def shared_pool(processes: int) -> mp.pool.Pool:
    """Return the persistent pool, sized for at least ``processes`` workers.

    Growing replaces the pool (a ``Pool``'s worker count is fixed at
    construction); shrinking never does — extra idle workers cost a few
    sleeping processes, far less than a rebuild.  ``Pool`` replaces any
    worker that dies, so one crashed unit of work doesn't poison later
    fan-outs.
    """
    global _POOL, _POOL_SIZE
    if processes < 1:
        raise ValueError(f"processes must be >= 1, got {processes}")
    if _POOL is not None and _POOL_SIZE < processes:
        _POOL.terminate()
        _POOL = None
    if _POOL is None:
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn")
        _POOL = ctx.Pool(processes=processes)
        _POOL_SIZE = processes
    return _POOL


def shutdown_pool() -> None:
    """Tear down the persistent pool (atexit, and tests that count spawns)."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.terminate()
        _POOL.join()
        _POOL = None
        _POOL_SIZE = 0


atexit.register(shutdown_pool)
