"""Fault injection for the CPI2 sample/spec control loop.

The paper's Figure 6 pipeline crosses a real fleet network twice — CPI
samples up to the aggregation service, specs back down to every machine —
and real fleets drop, delay, duplicate, reorder, and corrupt that traffic
while agents crash underneath it.  This package makes those failures
injectable and *measurable*:

* :mod:`repro.faults.profile` — :class:`FaultProfile` /
  :class:`LinkFaults` / :class:`RetryPolicy` and the named presets in
  :data:`FAULT_PROFILES` (``none`` / ``light`` / ``moderate`` / ``heavy``).
* :mod:`repro.faults.transport` — :class:`FaultyLink`, the seeded
  drop/delay/duplicate/reorder/corrupt channel.
* :mod:`repro.faults.retry` — at-least-once uploads
  (:class:`UploadClient`: timeouts, exponential backoff with jitter,
  bounded resend queue) and the deduplicating
  :class:`AggregatorEndpoint`.
* :mod:`repro.faults.quarantine` — plausibility validators for samples
  and specs, and the corrupters that damage payloads in flight.
* :mod:`repro.faults.checkpoint` — :class:`AgentCheckpoint` (serialisable
  outlier-window + follow-up state) and :class:`CrashInjector`.
* :mod:`repro.faults.plane` — :class:`FaultPlane`, wiring all of the
  above into one deployment.

Pass ``fault_profile=/fault_seed=`` to
:class:`~repro.core.pipeline.CpiPipeline` (or ``--fault-profile`` /
``--fault-seed`` to the demo CLI) to turn it on; a zero profile bypasses
the plane entirely, keeping default runs byte-identical.  See
``docs/robustness.md`` for the fault model and degraded-mode rules.
"""

from repro.faults.checkpoint import (
    AgentCheckpoint,
    CrashInjector,
    FollowUpState,
)
from repro.faults.plane import FaultPlane, SpecPush
from repro.faults.profile import (
    FAULT_PROFILES,
    FaultProfile,
    LinkFaults,
    RetryPolicy,
    resolve_fault_profile,
)
from repro.faults.quarantine import (
    sample_quarantine_reason,
    spec_is_plausible,
)
from repro.faults.retry import (
    Ack,
    AggregatorEndpoint,
    SampleBatch,
    UploadClient,
)
from repro.faults.transport import FaultyLink, Message

__all__ = [
    "AgentCheckpoint",
    "CrashInjector",
    "FollowUpState",
    "FaultPlane",
    "SpecPush",
    "FAULT_PROFILES",
    "FaultProfile",
    "LinkFaults",
    "RetryPolicy",
    "resolve_fault_profile",
    "sample_quarantine_reason",
    "spec_is_plausible",
    "Ack",
    "AggregatorEndpoint",
    "SampleBatch",
    "UploadClient",
    "FaultyLink",
    "Message",
]
