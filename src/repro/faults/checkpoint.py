"""Agent checkpoint/recovery and crash injection.

A management agent is an ordinary process: it gets OOM-killed, upgraded,
or taken down with its machine's kernel.  What must survive a restart is
the state that *cannot be relearned quickly*: the per-task outlier windows
(losing them silences detection for minutes) and the in-flight follow-ups
(losing one means an applied hard-cap is never checked and its incident
never finalised — an anomalous task silently forgotten mid-incident).

:class:`AgentCheckpoint` is the serialisable snapshot of exactly that
state.  It round-trips through plain JSON-able dicts — the simulation
restores in-memory, but the format is what a real agent would fsync.
:class:`CrashInjector` draws crash times from a seeded generator so a
(profile, seed) pair replays the same crash schedule exactly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional

import numpy as np

from repro.records import CpiSample

__all__ = ["CHECKPOINT_VERSION", "CheckpointVersionError", "FollowUpState",
           "AgentCheckpoint", "CrashInjector",
           "sample_to_dict", "sample_from_dict"]

#: Current checkpoint schema version.  Bump on any incompatible change to
#: the serialised layout; agents ignore (never crash on) mismatches.
CHECKPOINT_VERSION = 1


class CheckpointVersionError(ValueError):
    """A serialised checkpoint carries an unknown schema version."""


def sample_to_dict(sample: CpiSample) -> dict[str, Any]:
    """One sample as a JSON-able dict."""
    return asdict(sample)


def sample_from_dict(data: dict[str, Any]) -> CpiSample:
    """Rebuild a sample from :func:`sample_to_dict` output."""
    return CpiSample(**data)


@dataclass(frozen=True)
class FollowUpState:
    """The durable core of one in-flight recovery check.

    Tasks are referenced by name (they live in the machine, not the
    agent); the incident fields are enough to finalise the incident after
    a restart even if the original in-memory object is gone.
    """

    due_at: int
    victim_taskname: str
    antagonist_taskname: str
    incident_id: int
    incident_time: int
    victim_jobname: str
    victim_cpi: float
    cpi_threshold: float
    action: str

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FollowUpState":
        return cls(**data)


@dataclass
class AgentCheckpoint:
    """Everything a restarted agent needs to keep working an incident."""

    machine: str
    taken_at: int
    last_analysis: Optional[int]
    anomalies_seen: int
    #: taskname -> that task's recent samples (the correlation window).
    windows: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    #: taskname -> in-window outlier flag timestamps (detector streaks).
    detector_flags: dict[str, list[int]] = field(default_factory=dict)
    followups: list[FollowUpState] = field(default_factory=list)
    #: Schema version this checkpoint was taken under.
    version: int = CHECKPOINT_VERSION

    def to_dict(self) -> dict[str, Any]:
        """The checkpoint as a JSON-able dict (what a real agent persists)."""
        return {
            "version": self.version,
            "machine": self.machine,
            "taken_at": self.taken_at,
            "last_analysis": self.last_analysis,
            "anomalies_seen": self.anomalies_seen,
            "windows": self.windows,
            "detector_flags": self.detector_flags,
            "followups": [f.to_dict() for f in self.followups],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "AgentCheckpoint":
        """Rebuild a checkpoint from :meth:`to_dict` output.

        Raises:
            CheckpointVersionError: for a checkpoint written under a
                different schema version (a stale file from before an
                upgrade, or from after a downgrade).  Callers should treat
                this as "no checkpoint" — relearn, don't crash.
        """
        version = data.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint schema version {version!r} != "
                f"{CHECKPOINT_VERSION} (machine {data.get('machine')!r})")
        return cls(
            machine=data["machine"],
            taken_at=data["taken_at"],
            last_analysis=data["last_analysis"],
            anomalies_seen=data["anomalies_seen"],
            windows={k: list(v) for k, v in data["windows"].items()},
            detector_flags={k: list(v)
                            for k, v in data["detector_flags"].items()},
            followups=[FollowUpState.from_dict(f)
                       for f in data["followups"]],
        )


class CrashInjector:
    """Draws one machine's agent-crash schedule, deterministically."""

    def __init__(self, crash_rate: float, rng: np.random.Generator):
        """Args:
            crash_rate: per-second crash probability (0 disables).
            rng: private seeded generator.
        """
        if not 0.0 <= crash_rate <= 1.0:
            raise ValueError(
                f"crash_rate must be in [0, 1], got {crash_rate}")
        self.crash_rate = crash_rate
        self.rng = rng
        self.crashes = 0

    def should_crash(self) -> bool:
        """Bernoulli draw for this second; counts positives."""
        if self.crash_rate <= 0.0:
            return False
        if self.rng.random() < self.crash_rate:
            self.crashes += 1
            return True
        return False
