"""The fault plane: one deployment's injectable control-plane fabric.

:class:`FaultPlane` owns, per machine, the three faulty links (sample
uploads, upload acks, spec pushes), the retrying upload client, and the
agent crash injector; plus the single service-side aggregator endpoint.
The pipeline routes its formerly in-process calls through here when a
non-zero :class:`~repro.faults.profile.FaultProfile` is configured, and
calls :meth:`pump` once per simulated second to move time forward for
deliveries, timeouts, retries, crashes, and checkpoints.

Determinism: all randomness is drawn from per-component generators
spawned off one root ``numpy`` seed sequence, in sorted-machine-name
order, and :meth:`pump` visits machines in that same order — a (profile,
fault seed, workload) triple replays the exact same fault schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.faults.checkpoint import CrashInjector
from repro.faults.profile import FaultProfile
from repro.faults.quarantine import corrupt_sample_batch, corrupt_spec_push
from repro.faults.retry import Ack, AggregatorEndpoint, UploadClient
from repro.faults.transport import FaultyLink
from repro.obs import Observability
from repro.records import CpiSample, CpiSpec, SpecKey

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.agent import MachineAgent
    from repro.core.aggregator import CpiAggregator
    from repro.core.config import CpiConfig
    from repro.core.specstore import AggregatorHost

__all__ = ["SpecPush", "FaultPlane"]


@dataclass(frozen=True)
class SpecPush:
    """One spec-map push to one machine, as shipped over the wire."""

    issued_at: int
    specs: dict[SpecKey, CpiSpec]


class _MachinePort:
    """One machine's endpoints on the fabric."""

    def __init__(self, uplink: FaultyLink, acklink: FaultyLink,
                 speclink: FaultyLink, client: UploadClient,
                 crasher: CrashInjector):
        self.uplink = uplink
        self.acklink = acklink
        self.speclink = speclink
        self.client = client
        self.crasher = crasher


class FaultPlane:
    """The injectable transport + failure machinery for one deployment."""

    def __init__(
        self,
        profile: FaultProfile,
        seed: int,
        aggregator: "CpiAggregator",
        agents: dict[str, "MachineAgent"],
        config: "CpiConfig",
        obs: Optional[Observability] = None,
        host: Optional["AggregatorHost"] = None,
    ):
        self.profile = profile
        self.config = config
        self.obs = obs
        self.agents = agents
        # With a durable host, accepted batches are WAL-logged before
        # ingest and uploads are refused while the service is down; the
        # hostless wiring is byte-identical to what it always was.
        self.endpoint = AggregatorEndpoint(
            ingest=aggregator.ingest, ack=self._route_ack, obs=obs,
            gate=host.accepting if host is not None else None,
            batch_sink=host.ingest_wire_batch if host is not None else None)
        if host is not None:
            host.bind_endpoint(self.endpoint)
        self.ports: dict[str, _MachinePort] = {}
        root = np.random.SeedSequence(seed)
        names = sorted(agents)
        children = root.spawn(5 * len(names))
        for i, name in enumerate(names):
            up_rng, ack_rng, spec_rng, jitter_rng, crash_rng = (
                np.random.default_rng(c) for c in children[5 * i:5 * i + 5])
            uplink = FaultyLink(
                f"upload:{name}", profile.upload, up_rng,
                deliver=self.endpoint.receive,
                corrupter=corrupt_sample_batch, obs=obs)
            acklink = FaultyLink(
                f"ack:{name}", profile.ack, ack_rng,
                deliver=self._make_ack_deliverer(name), obs=obs)
            speclink = FaultyLink(
                f"spec:{name}", profile.spec_push, spec_rng,
                deliver=self._make_spec_deliverer(name),
                corrupter=corrupt_spec_push, obs=obs)
            client = UploadClient(name, uplink.send, profile.retry,
                                  jitter_rng, obs=obs)
            self.ports[name] = _MachinePort(
                uplink, acklink, speclink, client,
                CrashInjector(profile.agent_crash_rate, crash_rng))

    # -- delivery routing --------------------------------------------------------

    def _route_ack(self, t: int, ack: Ack) -> None:
        self.ports[ack.machine].acklink.send(t, ack)

    def _make_ack_deliverer(self, machine: str):
        def deliver(t: int, ack: Ack) -> None:
            # Resolved via self.ports: the client is created after the link.
            self.ports[machine].client.on_ack(t, ack)
        return deliver

    def _make_spec_deliverer(self, machine: str):
        def deliver(t: int, push: SpecPush) -> None:
            self.agents[machine].receive_spec_push(t, push.specs,
                                                   push.issued_at)
        return deliver

    # -- pipeline entry points ---------------------------------------------------

    def upload(self, t: int, machine_name: str,
               samples: list[CpiSample]) -> None:
        """Ship one closed window's samples toward the aggregator."""
        self.ports[machine_name].client.upload(t, samples)

    def push_specs(self, t: int, specs: dict[SpecKey, CpiSpec],
                   only: Optional[Iterable[str]] = None) -> None:
        """Fan one freshly-published spec map out to every machine.

        ``only`` limits the fan-out to a subset of machines (shard workers
        push to their own slice; the union across workers is the fleet).
        """
        for name in sorted(self.ports if only is None else only):
            self.ports[name].speclink.send(t, SpecPush(issued_at=t,
                                                       specs=dict(specs)))

    def capture_arrivals(self, machines: Iterable[str]) -> list:
        """Rewire the endpoint to record arrivals instead of ingesting.

        Shard workers call this: the worker-local
        :class:`~repro.faults.retry.AggregatorEndpoint` still dedupes
        batch ids and sends acks (machine-side behaviour), but instead of
        feeding the worker's demoted replica aggregator, each
        non-duplicate batch is recorded in the returned list as
        ``(arrival_tick, machine, SampleColumns)`` for the coordinator to
        replay into the canonical aggregator in global (tick, machine)
        order — the same order the single-process pump delivers in.
        """
        from repro.core.samplebatch import SampleColumns

        arrivals: list = []
        staging: list = []
        self.endpoint.ingest = staging.append
        for name in machines:
            port = self.ports[name]
            original = port.uplink.deliver

            def deliver(t, batch, _original=original):
                staging.clear()
                _original(t, batch)
                if staging:
                    arrivals.append((t, batch.machine,
                                     SampleColumns.from_samples(staging)))
                    staging.clear()

            port.uplink.deliver = deliver
        return arrivals

    def pump(self, t: int, only: Optional[Iterable[str]] = None) -> None:
        """Advance fabric time by one second.

        Delivers due messages, times out and retries uploads, injects
        agent crashes, and takes scheduled checkpoints — per machine, in
        sorted-name order, so runs replay deterministically.  ``only``
        restricts the sweep to a subset of machines; every per-machine
        component draws from its own generator, so a shard's schedule is
        unchanged by the machines it is pumped alongside.
        """
        for name in sorted(self.ports if only is None else only):
            port = self.ports[name]
            port.uplink.tick(t)
            port.acklink.tick(t)
            port.speclink.tick(t)
            port.client.pump(t)
            agent = self.agents[name]
            if port.crasher.should_crash():
                agent.crash_and_restart(t)
            if t % self.config.checkpoint_interval == 0:
                agent.take_checkpoint(t)

    # -- fault accounting --------------------------------------------------------

    def fault_tallies(self) -> dict[str, int]:
        """Injected faults by kind, summed across every link."""
        tallies: dict[str, int] = {}
        for port in self.ports.values():
            for link in (port.uplink, port.acklink, port.speclink):
                for kind, count in link.fault_tallies.items():
                    tallies[kind] = tallies.get(kind, 0) + count
        crashes = sum(p.crasher.crashes for p in self.ports.values())
        if crashes:
            tallies["crash"] = crashes
        return tallies

    def machine_fault_tallies(self) -> dict[str, dict[str, int]]:
        """Injected faults by machine, by kind (fault-free machines omitted).

        The per-machine breakdown behind the fleet console's faults column;
        a shard worker's dict covers only the machines it pumped, so the
        union across workers partitions the fleet exactly.
        """
        out: dict[str, dict[str, int]] = {}
        for name in sorted(self.ports):
            port = self.ports[name]
            tallies: dict[str, int] = {}
            for link in (port.uplink, port.acklink, port.speclink):
                for kind, count in link.fault_tallies.items():
                    if count:
                        tallies[kind] = tallies.get(kind, 0) + count
            if port.crasher.crashes:
                tallies["crash"] = port.crasher.crashes
            if tallies:
                out[name] = tallies
        return out

    @property
    def total_faults_injected(self) -> int:
        """Every fault of every kind the plane has injected so far."""
        return sum(self.fault_tallies().values())
