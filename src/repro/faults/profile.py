"""Fault profiles: how unreliable is the machine <-> aggregator fabric?

The paper's pipeline (Figure 6) ships CPI samples off every machine to a
central aggregation service and pushes per-(job, platform) specs back down.
In production those are RPCs over a congested fleet network, to a service
that restarts, behind agents that crash — not the perfectly-reliable
in-process calls a simulation naturally wires up.  A :class:`FaultProfile`
describes the failure behaviour of that fabric:

* per-link drop/delay/duplicate/reorder/corrupt rates
  (:class:`LinkFaults`), one set each for the sample-upload path, the
  upload-ack path, and the spec-push path;
* the agent-side retry discipline (:class:`RetryPolicy`): timeout,
  exponential backoff with jitter, a bounded resend queue with an explicit
  overflow policy;
* an agent crash rate (checkpoint recovery is exercised by
  :mod:`repro.faults.checkpoint`).

Profiles are plain frozen dataclasses; all injected randomness is drawn
from generators seeded off one fault seed, so a (profile, seed) pair
replays exactly.  The named presets in :data:`FAULT_PROFILES` are the ones
the chaos experiment sweeps; ``moderate`` is the documented reference
profile the acceptance bar (>= 0.8x clean identification precision) is
measured against.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Union

__all__ = [
    "LinkFaults",
    "RetryPolicy",
    "FaultProfile",
    "FAULT_PROFILES",
    "resolve_fault_profile",
]

_RATES = ("drop_rate", "delay_rate", "duplicate_rate", "reorder_rate",
          "corrupt_rate")


@dataclass(frozen=True)
class LinkFaults:
    """Fault rates for one direction of one RPC path.

    Every rate is an independent per-message probability in [0, 1].
    Delayed messages are held back a uniform ``delay_min..delay_max``
    seconds on top of the fabric's base latency; reordered messages are
    held back just long enough for later traffic to overtake them.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    #: Extra latency bounds (seconds, inclusive) for delayed messages.
    delay_min: int = 1
    delay_max: int = 30
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in _RATES:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.delay_min < 1:
            raise ValueError(f"delay_min must be >= 1, got {self.delay_min}")
        if self.delay_max < self.delay_min:
            raise ValueError("delay_max must be >= delay_min "
                             f"({self.delay_max} < {self.delay_min})")

    @property
    def is_zero(self) -> bool:
        """True when this link injects nothing."""
        return all(getattr(self, name) == 0.0 for name in _RATES)


@dataclass(frozen=True)
class RetryPolicy:
    """Agent-side upload retry discipline (timeout, backoff, queue bound)."""

    #: Seconds an un-acked upload waits before it counts as lost.
    timeout: int = 10
    #: Total send attempts per batch, including the first.
    max_attempts: int = 5
    #: First retry's backoff, seconds.
    backoff_base: float = 2.0
    #: Multiplier applied per further retry (exponential backoff).
    backoff_factor: float = 2.0
    #: Ceiling on any single backoff, seconds.
    backoff_cap: float = 60.0
    #: Fraction of each backoff randomised (full jitter on +/- this much).
    jitter: float = 0.5
    #: Max batches simultaneously awaiting ack or resend.
    queue_limit: int = 64
    #: What to do when the queue is full: ``drop-oldest`` evicts the
    #: longest-waiting batch to admit the new one; ``drop-newest`` rejects
    #: the incoming batch.  Either way the drop is counted, never silent.
    overflow: str = "drop-oldest"

    def __post_init__(self) -> None:
        if self.timeout < 1:
            raise ValueError(f"timeout must be >= 1, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}")
        if self.overflow not in ("drop-oldest", "drop-newest"):
            raise ValueError("overflow must be 'drop-oldest' or "
                             f"'drop-newest', got {self.overflow!r}")

    def backoff(self, retry_number: int, rng=None) -> float:
        """Backoff before retry ``retry_number`` (1 = first retry), seconds.

        Exponential in the retry number, capped, with symmetric jitter of
        up to ``jitter`` of the nominal value when an ``rng`` is supplied.
        """
        if retry_number < 1:
            raise ValueError(
                f"retry_number must be >= 1, got {retry_number}")
        nominal = min(self.backoff_cap,
                      self.backoff_base
                      * self.backoff_factor ** (retry_number - 1))
        if rng is None or self.jitter == 0.0:
            return nominal
        swing = self.jitter * (2.0 * float(rng.random()) - 1.0)
        return max(0.0, nominal * (1.0 + swing))


@dataclass(frozen=True)
class FaultProfile:
    """A complete failure model for one deployment's control-plane fabric."""

    name: str = "custom"
    #: Machine -> aggregator sample-batch uploads.
    upload: LinkFaults = field(default_factory=LinkFaults)
    #: Aggregator -> machine upload acknowledgements.
    ack: LinkFaults = field(default_factory=LinkFaults)
    #: Aggregator -> machine spec pushes.
    spec_push: LinkFaults = field(default_factory=LinkFaults)
    #: Per machine-second probability the agent process crashes.
    agent_crash_rate: float = 0.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Per-second probability the central aggregation service crashes
    #: (restored from its durable spec store; see ``core/specstore.py``).
    aggregator_crash_rate: float = 0.0
    #: Deterministic aggregator kill schedule (simulated seconds); fires
    #: in addition to any ``aggregator_crash_rate`` draws.
    aggregator_kill_ticks: tuple[int, ...] = ()
    #: Seconds the aggregator stays down per crash.  0 = restart within
    #: the same tick (recovery still runs — crash, wipe, restore — but no
    #: uploads are refused, so the run stays byte-identical to one with
    #: no kills at all).  > 0 = batches are refused while down and agents
    #: ride the outage out on retry/backoff + stale-spec degraded mode.
    aggregator_outage_seconds: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.agent_crash_rate <= 1.0:
            raise ValueError("agent_crash_rate must be in [0, 1], "
                             f"got {self.agent_crash_rate}")
        if not 0.0 <= self.aggregator_crash_rate <= 1.0:
            raise ValueError("aggregator_crash_rate must be in [0, 1], "
                             f"got {self.aggregator_crash_rate}")
        if self.aggregator_outage_seconds < 0:
            raise ValueError("aggregator_outage_seconds must be >= 0, "
                             f"got {self.aggregator_outage_seconds}")
        if any(t < 0 for t in self.aggregator_kill_ticks):
            raise ValueError("aggregator_kill_ticks must be >= 0, "
                             f"got {self.aggregator_kill_ticks}")

    @property
    def is_zero(self) -> bool:
        """True when the profile injects no *transport or agent* faults.

        A zero profile makes the pipeline skip the transport layer
        entirely, so default runs stay byte-identical to a build without
        fault injection.  Aggregator kills are deliberately not part of
        this: a zero-outage kill schedule on an otherwise clean profile
        exercises crash/restore without dragging in the fabric's one-tick
        base latency, keeping clean-run parity exact.
        """
        return (self.upload.is_zero and self.ack.is_zero
                and self.spec_push.is_zero and self.agent_crash_rate == 0.0)

    @property
    def has_aggregator_faults(self) -> bool:
        """True when this profile can take the aggregator down."""
        return (self.aggregator_crash_rate > 0.0
                or bool(self.aggregator_kill_ticks))

    def with_overrides(self, **overrides) -> "FaultProfile":
        """A copy with the given fields replaced (sweeps use this)."""
        return replace(self, **overrides)


#: Named presets, mildest to harshest.  ``moderate`` is the documented
#: reference profile (docs/robustness.md): lossy but survivable, roughly a
#: bad day on a congested fleet network plus one agent crash every couple
#: of machine-hours.
FAULT_PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "light": FaultProfile(
        name="light",
        upload=LinkFaults(drop_rate=0.01, delay_rate=0.05, delay_max=10,
                          duplicate_rate=0.005),
        ack=LinkFaults(drop_rate=0.01, delay_rate=0.02, delay_max=5),
        spec_push=LinkFaults(drop_rate=0.02, delay_rate=0.05, delay_max=20),
        agent_crash_rate=0.0,
    ),
    "moderate": FaultProfile(
        name="moderate",
        upload=LinkFaults(drop_rate=0.05, delay_rate=0.10, delay_max=20,
                          duplicate_rate=0.02, reorder_rate=0.02,
                          corrupt_rate=0.01),
        ack=LinkFaults(drop_rate=0.02, delay_rate=0.05, delay_max=10),
        spec_push=LinkFaults(drop_rate=0.10, delay_rate=0.10, delay_max=60,
                             corrupt_rate=0.02),
        agent_crash_rate=1.0 / 7200.0,
    ),
    "heavy": FaultProfile(
        name="heavy",
        upload=LinkFaults(drop_rate=0.20, delay_rate=0.30, delay_max=60,
                          duplicate_rate=0.05, reorder_rate=0.05,
                          corrupt_rate=0.05),
        ack=LinkFaults(drop_rate=0.10, delay_rate=0.15, delay_max=30),
        spec_push=LinkFaults(drop_rate=0.30, delay_rate=0.20, delay_max=120,
                             corrupt_rate=0.05),
        agent_crash_rate=1.0 / 1800.0,
    ),
}


def resolve_fault_profile(
        profile: Union[str, FaultProfile, None]) -> FaultProfile:
    """Normalise a profile argument: a name, an instance, or ``None``.

    ``None`` means "no fault injection" and maps to the zero profile.

    Raises:
        KeyError: for an unknown profile name, listing the valid ones.
    """
    if profile is None:
        return FAULT_PROFILES["none"]
    if isinstance(profile, FaultProfile):
        return profile
    try:
        return FAULT_PROFILES[profile]
    except KeyError:
        raise KeyError(f"unknown fault profile {profile!r}; valid: "
                       f"{', '.join(FAULT_PROFILES)}") from None
