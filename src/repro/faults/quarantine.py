"""Plausibility validation for samples and specs, plus fault corrupters.

Production telemetry lies: counters wrap or misread, windows close on a
task that retired zero instructions, payloads arrive bit-flipped.  One bad
CPI sample folded into a spec's running statistics skews the mean and
stddev every later detection compares against — so implausible records are
*quarantined* at each trust boundary (sampler, agent, aggregator) with a
counted reason, never folded in and never silently dropped.

This module is the shared vocabulary: :func:`sample_quarantine_reason` and
:func:`spec_is_plausible` are the validators the agent and aggregator
apply, and :func:`corrupt_sample_batch` / :func:`corrupt_spec_push` are
the transport-layer corrupters that generate exactly the kinds of damage
the validators must catch (the chaos experiment closes that loop).
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

import numpy as np

from repro.records import CpiSample, CpiSpec

__all__ = [
    "sample_quarantine_reason",
    "spec_is_plausible",
    "corrupt_sample_batch",
    "corrupt_spec_push",
]


def sample_quarantine_reason(sample: CpiSample,
                             cpi_bound: float) -> Optional[str]:
    """Why this sample must not reach detection or aggregation, if at all.

    Returns one of ``non_finite_cpi`` / ``non_finite_usage`` /
    ``zero_cpi`` (zero cycles with retired instructions — physically
    impossible, the signature of a corrupted counter read) /
    ``absurd_cpi`` (above ``cpi_bound``; real fleet CPIs live in single
    digits, Figure 3), or ``None`` for a plausible sample.
    """
    if not math.isfinite(sample.cpi):
        return "non_finite_cpi"
    if not math.isfinite(sample.cpu_usage):
        return "non_finite_usage"
    if sample.cpi == 0.0:
        return "zero_cpi"
    if sample.cpi > cpi_bound:
        return "absurd_cpi"
    return None


def spec_is_plausible(spec: CpiSpec, cpi_bound: float) -> bool:
    """Whether a pushed-down spec is safe to detect against.

    A corrupt spec is worse than a missing one — a NaN mean disables every
    comparison and a huge mean suppresses all detection — so the agent
    keeps its last known-good spec instead of applying an implausible
    update.
    """
    return (math.isfinite(spec.cpi_mean)
            and math.isfinite(spec.cpi_stddev)
            and math.isfinite(spec.cpu_usage_mean)
            and 0.0 < spec.cpi_mean <= cpi_bound
            and spec.cpi_stddev >= 0.0)


# -- transport corrupters ---------------------------------------------------------

#: The damage menu for one corrupted sample: (description, transform).
_SAMPLE_DAMAGE = (
    ("nan_cpi", lambda s: replace(s, cpi=float("nan"))),
    ("huge_cpi", lambda s: replace(s, cpi=s.cpi * 1e6 + 1e6)),
    ("zero_cpi", lambda s: replace(s, cpi=0.0)),
    ("nan_usage", lambda s: replace(s, cpu_usage=float("nan"))),
)


def corrupt_sample_batch(batch, rng: np.random.Generator):
    """Damage one sample in an upload batch (the payload is a
    :class:`~repro.faults.retry.SampleBatch`); empty batches pass through."""
    if not batch.samples:
        return batch
    index = int(rng.integers(len(batch.samples)))
    _, transform = _SAMPLE_DAMAGE[int(rng.integers(len(_SAMPLE_DAMAGE)))]
    samples = list(batch.samples)
    samples[index] = transform(samples[index])
    return replace(batch, samples=tuple(samples))


_SPEC_DAMAGE = (
    ("nan_mean", lambda s: replace(s, cpi_mean=float("nan"))),
    ("huge_mean", lambda s: replace(s, cpi_mean=s.cpi_mean * 1e6 + 1e6)),
    ("nan_stddev", lambda s: replace(s, cpi_stddev=float("nan"))),
)


def corrupt_spec_push(push, rng: np.random.Generator):
    """Damage one entry in a spec push (a
    :class:`~repro.faults.plane.SpecPush`); empty pushes pass through."""
    if not push.specs:
        return push
    keys = sorted(push.specs)
    key = keys[int(rng.integers(len(keys)))]
    _, transform = _SPEC_DAMAGE[int(rng.integers(len(_SPEC_DAMAGE)))]
    specs = dict(push.specs)
    specs[key] = transform(specs[key])
    return replace(push, specs=specs)
