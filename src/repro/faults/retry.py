"""Reliable-enough sample upload: retries, backoff, acks, dedup.

The upward path of the paper's Figure 6 pipeline — per-task CPI samples
leaving every machine for the aggregation service — becomes, under a
faulty transport, a classic at-least-once delivery problem:

* the machine-side :class:`UploadClient` sends each closed sampling window
  as one :class:`SampleBatch`, waits for an ack, and on timeout retries
  with exponential backoff plus jitter (:class:`~repro.faults.profile.
  RetryPolicy`); batches that exhaust their attempts are abandoned with a
  counted reason, and the pending set is bounded by an explicit
  overflow-drop policy — nothing is ever lost silently;
* the service-side :class:`AggregatorEndpoint` ingests batches, dedupes
  redelivered ``batch_id``s (so duplicate delivery is idempotent — it
  re-acks without re-ingesting), and sends acks back through its own
  faulty link.

At-least-once plus endpoint dedup yields effectively-exactly-once ingest
for every batch that gets through at all, which is what keeps the CPI
specs unbiased under duplication faults.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.faults.profile import RetryPolicy
from repro.obs import Observability
from repro.records import CpiSample

__all__ = ["SampleBatch", "Ack", "UploadClient", "AggregatorEndpoint"]

#: Upload end-to-end latency buckets (seconds from first send to ack).
_LATENCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0)


@dataclass(frozen=True)
class SampleBatch:
    """One machine's closed sampling window, as shipped over the wire."""

    batch_id: str
    machine: str
    sent_at: int
    samples: tuple[CpiSample, ...]


@dataclass(frozen=True)
class Ack:
    """The aggregator's receipt for one batch."""

    batch_id: str
    machine: str


@dataclass
class _PendingBatch:
    """Client-side state for one batch awaiting ack."""

    batch: SampleBatch
    first_sent_at: int
    attempts: int = 1
    #: When the current in-flight attempt counts as timed out.
    deadline: int = 0
    #: When the next resend fires, once the current attempt timed out.
    retry_at: Optional[int] = None


class UploadClient:
    """Machine-side sample uploader: send, await ack, back off, retry."""

    def __init__(
        self,
        machine_name: str,
        send: Callable[[int, SampleBatch], None],
        policy: RetryPolicy,
        rng: np.random.Generator,
        obs: Optional[Observability] = None,
    ):
        """Args:
            machine_name: the uploading machine (batch ids embed it).
            send: the uplink's ``send`` — called for every (re)send.
            policy: retry/backoff/queue discipline.
            rng: private generator for backoff jitter.
            obs: telemetry handle.
        """
        self.machine_name = machine_name
        self.send = send
        self.policy = policy
        self.rng = rng
        self.obs = obs
        self._pending: "OrderedDict[str, _PendingBatch]" = OrderedDict()
        self._next_batch = 0
        self.batches_sent = 0
        self.batches_acked = 0
        self.batches_abandoned = 0
        self.batches_overflowed = 0

    # -- submission -------------------------------------------------------------

    def _count(self, name: str, **labels) -> None:
        if self.obs is not None:
            self.obs.metrics.counter(name, machine=self.machine_name,
                                     **labels).inc()

    def _evict_for_overflow(self, t: int, incoming: SampleBatch) -> bool:
        """Apply the overflow policy; returns False if ``incoming`` was
        rejected (drop-newest), True if room was made (drop-oldest)."""
        self.batches_overflowed += 1
        self._count("resend_queue_overflow", policy=self.policy.overflow)
        if self.policy.overflow == "drop-newest":
            if self.obs is not None:
                self.obs.events.event(
                    "resend_queue_overflow", machine=self.machine_name,
                    policy="drop-newest", dropped=incoming.batch_id,
                    samples=len(incoming.samples))
            return False
        dropped_id, dropped = self._pending.popitem(last=False)
        if self.obs is not None:
            self.obs.events.event(
                "resend_queue_overflow", machine=self.machine_name,
                policy="drop-oldest", dropped=dropped_id,
                samples=len(dropped.batch.samples),
                waited=t - dropped.first_sent_at)
        return True

    def upload(self, t: int, samples: list[CpiSample]) -> Optional[str]:
        """Ship one window's samples; returns the batch id, or ``None`` if
        the resend queue rejected it (drop-newest overflow)."""
        batch = SampleBatch(
            batch_id=f"{self.machine_name}/{self._next_batch}",
            machine=self.machine_name,
            sent_at=t,
            samples=tuple(samples),
        )
        self._next_batch += 1
        if len(self._pending) >= self.policy.queue_limit:
            if not self._evict_for_overflow(t, batch):
                return None
        self._pending[batch.batch_id] = _PendingBatch(
            batch=batch, first_sent_at=t, attempts=1,
            deadline=t + self.policy.timeout)
        self.batches_sent += 1
        self._count("upload_batches_sent")
        self.send(t, batch)
        return batch.batch_id

    # -- acks -------------------------------------------------------------------

    def on_ack(self, t: int, ack: Ack) -> None:
        """Handle one (possibly duplicated, possibly late) ack."""
        pending = self._pending.pop(ack.batch_id, None)
        if pending is None:
            # A duplicate or post-abandonment ack; counted, then ignored.
            self._count("upload_acks_ignored")
            return
        self.batches_acked += 1
        self._count("upload_batches_acked")
        if self.obs is not None:
            self.obs.metrics.histogram(
                "upload_ack_latency", buckets=_LATENCY_BUCKETS,
            ).observe(t - pending.first_sent_at)

    # -- the retry loop ---------------------------------------------------------

    def pump(self, t: int) -> None:
        """Advance timeouts and fire due resends.  Call once per tick."""
        for batch_id in list(self._pending):
            pending = self._pending.get(batch_id)
            if pending is None:
                continue
            if pending.retry_at is not None:
                if t >= pending.retry_at:
                    pending.retry_at = None
                    pending.attempts += 1
                    pending.deadline = t + self.policy.timeout
                    self._count("upload_retries")
                    self.send(t, pending.batch)
                continue
            if t < pending.deadline:
                continue
            # The in-flight attempt timed out.
            self._count("upload_timeouts")
            if pending.attempts >= self.policy.max_attempts:
                del self._pending[batch_id]
                self.batches_abandoned += 1
                self._count("upload_batches_abandoned")
                if self.obs is not None:
                    self.obs.events.event(
                        "upload_abandoned", machine=self.machine_name,
                        batch=batch_id, attempts=pending.attempts,
                        samples=len(pending.batch.samples))
                continue
            backoff = self.policy.backoff(pending.attempts, self.rng)
            pending.retry_at = t + max(1, int(round(backoff)))

    @property
    def pending_batches(self) -> int:
        """Batches currently awaiting ack or resend."""
        return len(self._pending)


class AggregatorEndpoint:
    """Service-side receiver: ingest once per batch id, ack every arrival."""

    #: Remembered batch ids; old entries are evicted FIFO past this bound.
    DEDUP_WINDOW = 4096

    def __init__(
        self,
        ingest: Callable[[CpiSample], None],
        ack: Callable[[int, Ack], None],
        obs: Optional[Observability] = None,
        gate: Optional[Callable[[], bool]] = None,
        batch_sink: Optional[Callable[[int, SampleBatch], None]] = None,
    ):
        """Args:
            ingest: per-sample sink (the aggregator's ``ingest``, which
                applies its own plausibility rejection).
            ack: called with (time, Ack) for every arrival — duplicates
                are re-acked so a client whose ack got dropped stops
                retrying.
            obs: telemetry handle.
            gate: availability check — while it returns False the endpoint
                refuses every batch (no ack, no dedup mark, counted), the
                way a down aggregation service drops connections; clients
                ride it out on their retry/backoff schedule.
            batch_sink: batch-level ingest override; when set, each
                non-duplicate batch is handed over whole (the durable host
                WAL-logs it before applying) instead of via ``ingest``.
        """
        self.ingest = ingest
        self.ack = ack
        self.obs = obs
        self.gate = gate
        self.batch_sink = batch_sink
        self._seen: "OrderedDict[str, None]" = OrderedDict()
        self.batches_received = 0
        self.duplicates_ignored = 0
        self.batches_refused = 0

    def receive(self, t: int, batch: SampleBatch) -> None:
        """Handle one delivered batch (possibly a duplicate)."""
        if self.gate is not None and not self.gate():
            # Service down: the batch vanishes exactly as if the process
            # had dropped the connection.  No dedup mark and — crucially —
            # no ack: the client keeps the batch pending and redelivers
            # after the outage, which is what reconvergence rides on.
            self.batches_refused += 1
            if self.obs is not None:
                self.obs.metrics.counter("aggregator_batches_refused").inc()
                self.obs.events.event("aggregator_batch_refused",
                                      batch=batch.batch_id,
                                      machine=batch.machine)
            return
        if batch.batch_id in self._seen:
            self.duplicates_ignored += 1
            if self.obs is not None:
                self.obs.metrics.counter("aggregator_duplicate_batches").inc()
        else:
            self._seen[batch.batch_id] = None
            while len(self._seen) > self.DEDUP_WINDOW:
                self._seen.popitem(last=False)
            self.batches_received += 1
            if self.obs is not None:
                self.obs.metrics.counter("aggregator_batches_received").inc()
            if self.batch_sink is not None:
                self.batch_sink(t, batch)
            else:
                for sample in batch.samples:
                    self.ingest(sample)
        self.ack(t, Ack(batch_id=batch.batch_id, machine=batch.machine))

    # -- durable dedup state -----------------------------------------------------

    def export_dedup_state(self) -> dict:
        """The dedup watermark as a JSON-able dict (snapshot payload)."""
        return {"seen": list(self._seen), "received": self.batches_received,
                "duplicates": self.duplicates_ignored}

    def restore_dedup_state(self, state: dict) -> None:
        """Install a watermark exported by :meth:`export_dedup_state`."""
        self._seen = OrderedDict((batch_id, None)
                                 for batch_id in state["seen"])
        self.batches_received = state["received"]
        self.duplicates_ignored = state["duplicates"]

    def reset_state(self) -> None:
        """Forget the dedup watermark — the crash half of crash/restore.

        ``batches_refused`` survives: refusals are observed (and counted)
        by the surviving fabric, not by the process that died.
        """
        self._seen = OrderedDict()
        self.batches_received = 0
        self.duplicates_ignored = 0
