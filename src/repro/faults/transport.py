"""The injectable transport layer between machines and the aggregator.

A :class:`FaultyLink` models one direction of one RPC path.  ``send`` hands
it a payload at simulated time ``t``; the link applies its configured
faults (drop / delay / duplicate / reorder / corrupt, each drawn from a
seeded generator so runs replay exactly) and schedules surviving copies
for delivery.  ``tick`` delivers everything due, in (deliver-time,
send-sequence) order, through the delivery callback the owner registered.

Messages cross the fabric with a base latency of one tick — a send at
``t`` is delivered at the ``t + 1`` pump at the earliest — which is also
what keeps delivery deterministic: nothing is delivered re-entrantly from
inside ``send``.

Every injected fault increments both an :mod:`repro.obs` counter
(``transport_faults{link=..., kind=...}``) and the link's own integer
tally.  The chaos experiment cross-checks the two so "no silent fault
loss" is an asserted property, not an aspiration.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.faults.profile import LinkFaults
from repro.obs import Observability

__all__ = ["Message", "FaultyLink"]

#: Extra ticks a reordered message is held back — enough for the next
#: minute's traffic to overtake it on a once-a-minute duty cycle.
REORDER_HOLDBACK_SECONDS = 2

#: A corrupter takes (payload, rng) and returns the corrupted payload.
Corrupter = Callable[[Any, np.random.Generator], Any]

#: A delivery callback takes (deliver_time, payload).
Deliverer = Callable[[int, Any], None]


@dataclass(frozen=True)
class Message:
    """One scheduled delivery (possibly one copy of a duplicated send)."""

    sent_at: int
    deliver_at: int
    payload: Any
    corrupted: bool = False


class FaultyLink:
    """One direction of one machine <-> aggregator RPC path."""

    def __init__(
        self,
        name: str,
        faults: LinkFaults,
        rng: np.random.Generator,
        deliver: Deliverer,
        corrupter: Optional[Corrupter] = None,
        obs: Optional[Observability] = None,
    ):
        """Args:
            name: link identity for telemetry, e.g. ``upload:m3``.
            faults: this link's fault rates.
            rng: the link's private seeded generator; the draw order per
                send is fixed, so (faults, seed, traffic) replays exactly.
            deliver: called with (deliver_time, payload) for each arrival.
            corrupter: payload transformer for corrupt faults; corrupt
                faults are skipped (never drawn) when omitted.
            obs: telemetry handle; faults also accumulate in
                :attr:`fault_tallies` regardless.
        """
        self.name = name
        self.faults = faults
        self.rng = rng
        self.deliver = deliver
        self.corrupter = corrupter
        self.obs = obs
        self.sent = 0
        self.delivered = 0
        #: Injected faults by kind — the obs-independent ground truth.
        self.fault_tallies: dict[str, int] = {
            "drop": 0, "delay": 0, "duplicate": 0, "reorder": 0, "corrupt": 0,
        }
        self._queue: list[tuple[int, int, Message]] = []
        self._seq = itertools.count()

    # -- sending ----------------------------------------------------------------

    def _count_fault(self, kind: str) -> None:
        self.fault_tallies[kind] += 1
        if self.obs is not None:
            self.obs.metrics.counter("transport_faults", link=self.name,
                                     kind=kind).inc()
            self.obs.events.event("transport_fault", link=self.name,
                                  kind=kind)

    def _schedule(self, t: int, payload: Any, corrupted: bool) -> None:
        deliver_at = t + 1
        if (self.faults.delay_rate > 0.0
                and self.rng.random() < self.faults.delay_rate):
            deliver_at += int(self.rng.integers(self.faults.delay_min,
                                                self.faults.delay_max + 1))
            self._count_fault("delay")
        if (self.faults.reorder_rate > 0.0
                and self.rng.random() < self.faults.reorder_rate):
            deliver_at += REORDER_HOLDBACK_SECONDS
            self._count_fault("reorder")
        message = Message(sent_at=t, deliver_at=deliver_at, payload=payload,
                          corrupted=corrupted)
        heapq.heappush(self._queue, (deliver_at, next(self._seq), message))

    def send(self, t: int, payload: Any) -> None:
        """Submit one payload at time ``t``; faults applied here."""
        self.sent += 1
        if self.obs is not None:
            self.obs.metrics.counter("transport_sent", link=self.name).inc()
        if (self.faults.drop_rate > 0.0
                and self.rng.random() < self.faults.drop_rate):
            self._count_fault("drop")
            return
        corrupted = False
        if (self.corrupter is not None and self.faults.corrupt_rate > 0.0
                and self.rng.random() < self.faults.corrupt_rate):
            payload = self.corrupter(payload, self.rng)
            corrupted = True
            self._count_fault("corrupt")
        copies = 1
        if (self.faults.duplicate_rate > 0.0
                and self.rng.random() < self.faults.duplicate_rate):
            copies = 2
            self._count_fault("duplicate")
        for _ in range(copies):
            self._schedule(t, payload, corrupted)

    # -- delivery ---------------------------------------------------------------

    def tick(self, t: int) -> int:
        """Deliver every message due at or before ``t``; returns how many."""
        count = 0
        while self._queue and self._queue[0][0] <= t:
            _, _, message = heapq.heappop(self._queue)
            self.delivered += 1
            count += 1
            if self.obs is not None:
                self.obs.metrics.counter("transport_delivered",
                                         link=self.name).inc()
            self.deliver(t, message.payload)
        return count

    @property
    def in_flight(self) -> int:
        """Messages scheduled but not yet delivered."""
        return len(self._queue)

    @property
    def total_faults(self) -> int:
        """Total faults this link injected, all kinds."""
        return sum(self.fault_tallies.values())
