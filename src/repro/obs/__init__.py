"""Fleet observability for the CPI2 control loop.

The paper's production deployment leaned on Google's monitoring and the
Dremel-backed forensics log (Section 5); this package is the reproduction's
equivalent telemetry substrate, deliberately zero-dependency:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms in a
  :class:`~repro.obs.metrics.MetricsRegistry`.
* :mod:`repro.obs.events` — dict-shaped structured events through stdlib
  ``logging``, with a JSONL file handler for grep-able run logs.
* :mod:`repro.obs.tracing` — simulated-time span traces of the
  detect→identify→decide→actuate→follow-up pipeline.
* :mod:`repro.obs.report` — terminal rendering of a registry.
* :mod:`repro.obs.observability` — the :class:`Observability` facade that
  instrumented components accept.
* :mod:`repro.obs.timeseries` — a deterministic, simulated-time ring-buffer
  TSDB scraping the registry at every sampling-window close.
* :mod:`repro.obs.exposition` — Prometheus text-format rendering plus the
  JSONL time-series dump.
* :mod:`repro.obs.alerts` — declarative threshold + for-duration SLO rules
  evaluated against the TSDB.
* :mod:`repro.obs.console` — the per-machine fleet health scoreboard.

See ``docs/observability.md`` for the event schema, metric catalogue, and
the alert-rule catalogue.
"""

from repro.obs.alerts import (
    DEFAULT_ALERT_RULES,
    AlertEngine,
    AlertRule,
)
from repro.obs.console import FleetConsole, MachineHealth, build_console
from repro.obs.events import (
    EVENT_LOGGER_NAME,
    JsonlFormatter,
    StructuredLogger,
    configure_logging,
    reset_logging,
)
from repro.obs.exposition import (
    render_prometheus,
    write_prometheus,
    write_timeseries_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    export_state,
    merge_state,
)
from repro.obs.observability import (
    Observability,
    default_observability,
    set_default_observability,
    telemetry_observability,
)
from repro.obs.report import metrics_lines, render_metrics_report
from repro.obs.timeseries import RingSeries, TimeSeriesDB
from repro.obs.tracing import PipelineTrace, Span, Tracer

__all__ = [
    "EVENT_LOGGER_NAME",
    "JsonlFormatter",
    "StructuredLogger",
    "configure_logging",
    "reset_logging",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "export_state",
    "merge_state",
    "Observability",
    "default_observability",
    "set_default_observability",
    "telemetry_observability",
    "metrics_lines",
    "render_metrics_report",
    "PipelineTrace",
    "Span",
    "Tracer",
    "RingSeries",
    "TimeSeriesDB",
    "render_prometheus",
    "write_prometheus",
    "write_timeseries_jsonl",
    "DEFAULT_ALERT_RULES",
    "AlertEngine",
    "AlertRule",
    "FleetConsole",
    "MachineHealth",
    "build_console",
]
