"""Declarative SLO alert rules evaluated against the simulated-time TSDB.

CPI2's operators did not tail logs — they were paged off threshold rules
over the monitoring time series.  This module reproduces that layer: an
:class:`AlertRule` is a small expression over the
:class:`~repro.obs.timeseries.TimeSeriesDB` (counter increases over a
trailing window, last-written gauge values, ratios of either), a comparison
against a threshold, and a *for-duration* — the condition must hold
continuously for that many simulated seconds before the rule fires.

Firing and resolving emit structured ``alert_fired`` / ``alert_resolved``
events through the existing :class:`~repro.obs.events.StructuredLogger` and
append to an in-memory history list, which is the shard-parity acceptance
surface: evaluated on the coordinator's TSDB, the history is byte-identical
at any ``--jobs`` count.  The engine deliberately never writes back into the
metrics registry, so enabling alerts cannot perturb the scraped series.

Every expression declares the instrument names it reads
(:meth:`Expr.instruments`); a CI lint asserts each one is documented in the
catalogue in ``docs/observability.md``.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from repro.obs.events import StructuredLogger
from repro.obs.timeseries import SCRAPE_INTERVAL_GAUGE, TimeSeriesDB

__all__ = [
    "AlertEngine",
    "AlertRule",
    "CounterIncrease",
    "GaugeValue",
    "Ratio",
    "DEFAULT_ALERT_RULES",
]


class Expr:
    """Base class for alert expressions; evaluates to a float or None.

    None means "no data" — the rule treats it as not breaching, so rules
    guarded by a denominator floor stay silent until enough signal exists.
    """

    def evaluate(self, tsdb: TimeSeriesDB, t: int) -> Optional[float]:
        raise NotImplementedError

    def instruments(self) -> frozenset[str]:
        """Metric family names this expression reads (for the docs lint)."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class CounterIncrease(Expr):
    """Total increase of a counter family over the trailing window."""

    def __init__(self, name: str, window: int,
                 labels: Optional[Mapping[str, object]] = None):
        self.name = name
        self.window = window
        self.labels = dict(labels) if labels else None

    def evaluate(self, tsdb: TimeSeriesDB, t: int) -> Optional[float]:
        return tsdb.counter_increase(self.name, t, self.window, self.labels)

    def instruments(self) -> frozenset[str]:
        return frozenset({self.name})

    def describe(self) -> str:
        sel = self.name
        if self.labels:
            inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
            sel += "{" + inner + "}"
        return f"increase({sel}[{self.window}s])"


class GaugeValue(Expr):
    """Latest value of a gauge family (summed across matching label sets)."""

    def __init__(self, name: str,
                 labels: Optional[Mapping[str, object]] = None):
        self.name = name
        self.labels = dict(labels) if labels else None

    def evaluate(self, tsdb: TimeSeriesDB, t: int) -> Optional[float]:
        return tsdb.gauge_last(self.name, self.labels)

    def instruments(self) -> frozenset[str]:
        return frozenset({self.name})

    def describe(self) -> str:
        return self.name


class Ratio(Expr):
    """numerator / denominator, or None below the denominator floor.

    ``min_denominator`` keeps ratio rules quiet while the run is warming up
    (a 2/3 ratio over five samples is noise, not an SLO breach).
    """

    def __init__(self, numerator: Expr, denominator: Expr,
                 min_denominator: float = 1.0):
        self.numerator = numerator
        self.denominator = denominator
        self.min_denominator = min_denominator

    def evaluate(self, tsdb: TimeSeriesDB, t: int) -> Optional[float]:
        denom = self.denominator.evaluate(tsdb, t)
        if denom is None or denom < self.min_denominator:
            return None
        num = self.numerator.evaluate(tsdb, t)
        if num is None:
            return None
        return num / denom

    def instruments(self) -> frozenset[str]:
        return self.numerator.instruments() | self.denominator.instruments()

    def describe(self) -> str:
        return f"{self.numerator.describe()} / {self.denominator.describe()}"


_OPS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


class AlertRule:
    """One declarative rule: expression OP threshold, held for a duration."""

    def __init__(self, name: str, expr: Expr, op: str, threshold: float,
                 for_seconds: int = 0, severity: str = "warning",
                 description: str = ""):
        if op not in _OPS:
            raise ValueError(f"unknown comparison {op!r}")
        self.name = name
        self.expr = expr
        self.op = op
        self.threshold = threshold
        self.for_seconds = for_seconds
        self.severity = severity
        self.description = description

    def condition(self) -> str:
        return f"{self.expr.describe()} {self.op} {self.threshold}"

    def breaches(self, value: Optional[float]) -> bool:
        return value is not None and _OPS[self.op](value, self.threshold)


#: The shipped rule catalogue.  Thresholds are tuned so a clean demo run
#: stays green and the chaos profiles trip the matching rules; each rule is
#: documented operationally in docs/observability.md.
DEFAULT_ALERT_RULES: tuple[AlertRule, ...] = (
    AlertRule(
        "stale_spec_ratio",
        Ratio(CounterIncrease("analyses_dropped", 600,
                              labels={"reason": "stale_spec"}),
              CounterIncrease("anomalies_detected", 600),
              min_denominator=5.0),
        ">", 0.5, for_seconds=120, severity="warning",
        description=("most anomaly analyses are being discarded because the "
                     "agent's CPI spec is stale — the spec distribution "
                     "pipeline is lagging or partitioned")),
    AlertRule(
        "quarantine_spike",
        CounterIncrease("samples_quarantined", 300),
        ">", 50, for_seconds=60, severity="critical",
        description=("a burst of samples refused at the agent trust "
                     "boundary — corrupted counters, wire damage, or a "
                     "misbehaving sampler")),
    AlertRule(
        "resend_overflow",
        CounterIncrease("resend_queue_overflow", 300),
        ">", 0, for_seconds=0, severity="critical",
        description=("an agent's bounded resend queue dropped sample "
                     "batches — upload loss is no longer being absorbed by "
                     "retries")),
    AlertRule(
        "shard_barrier_stall",
        GaugeValue(SCRAPE_INTERVAL_GAUGE),
        ">", 90, for_seconds=0, severity="critical",
        description=("the gap between telemetry scrapes exceeded 1.5x the "
                     "sampling period — a shard barrier (or the scrape "
                     "loop itself) is stalled")),
    AlertRule(
        "identification_floor",
        Ratio(CounterIncrease("incidents_by_action", 900),
              CounterIncrease("anomalies_detected", 900),
              min_denominator=10.0),
        "<", 0.05, for_seconds=300, severity="warning",
        description=("anomalies are being detected but almost none survive "
                     "correlation into an identified incident — "
                     "identification quality has fallen through the floor")),
    AlertRule(
        "agent_crash_storm",
        CounterIncrease("agent_crashes", 600),
        ">=", 3, for_seconds=0, severity="critical",
        description=("three or more agent crashes inside ten minutes — "
                     "checkpoint/restore is masking a crash loop")),
    AlertRule(
        "aggregator_flapping",
        CounterIncrease("aggregator_restarts", 900),
        ">=", 3, for_seconds=0, severity="critical",
        description=("the central aggregation service restarted three or "
                     "more times inside fifteen minutes — WAL recovery is "
                     "masking a crash loop and spec freshness is at risk")),
)


class _RuleState:
    __slots__ = ("pending_since", "active_since")

    def __init__(self) -> None:
        self.pending_since: Optional[int] = None
        self.active_since: Optional[int] = None


class AlertEngine:
    """Evaluates a rule set against a TSDB at every scrape.

    State (pending-since, active-since) lives per rule; transitions append
    to :attr:`history` and emit events.  Evaluation order is the rule list
    order, so the history is deterministic.
    """

    def __init__(self, rules: Sequence[AlertRule] = DEFAULT_ALERT_RULES,
                 events: Optional[StructuredLogger] = None):
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names in {names}")
        self.rules = tuple(rules)
        self.events = events
        self._states = {rule.name: _RuleState() for rule in self.rules}
        self.history: list[dict] = []

    def evaluate(self, tsdb: TimeSeriesDB, t: int) -> list[dict]:
        """Evaluate every rule at simulated time ``t``; returns transitions."""
        transitions: list[dict] = []
        for rule in self.rules:
            state = self._states[rule.name]
            value = rule.expr.evaluate(tsdb, t)
            if rule.breaches(value):
                if state.pending_since is None:
                    state.pending_since = t
                held = t - state.pending_since
                if state.active_since is None and held >= rule.for_seconds:
                    state.active_since = t
                    transitions.append(self._transition(
                        "alert_fired", rule, t, value))
            else:
                state.pending_since = None
                if state.active_since is not None:
                    active_for = t - state.active_since
                    state.active_since = None
                    transitions.append(self._transition(
                        "alert_resolved", rule, t, value,
                        active_for=active_for))
        return transitions

    def _transition(self, event: str, rule: AlertRule, t: int,
                    value: Optional[float], **extra: object) -> dict:
        record = {
            "event": event,
            "t": t,
            "rule": rule.name,
            "severity": rule.severity,
            "condition": rule.condition(),
            "value": value,
            **extra,
        }
        self.history.append(record)
        if self.events is not None:
            self.events.warning(event, rule=rule.name,
                                severity=rule.severity,
                                condition=rule.condition(), value=value,
                                **extra)
        return record

    def active(self) -> list[str]:
        """Names of currently-firing rules (sorted)."""
        return sorted(name for name, state in self._states.items()
                      if state.active_since is not None)

    def fired_counts(self) -> dict[str, int]:
        """How many times each rule fired (only rules that fired)."""
        counts: dict[str, int] = {}
        for record in self.history:
            if record["event"] == "alert_fired":
                counts[record["rule"]] = counts.get(record["rule"], 0) + 1
        return counts

    def dump_lines(self) -> list[str]:
        """History as JSON lines — the parity/golden surface for tests."""
        return [json.dumps(record, sort_keys=True, separators=(",", ":"))
                for record in self.history]

    def instruments(self) -> frozenset[str]:
        """Every metric family referenced by any rule (for the docs lint)."""
        names: frozenset[str] = frozenset()
        for rule in self.rules:
            names |= rule.expr.instruments()
        return names
