"""The fleet health console: a per-machine scoreboard for the end of a run.

The paper's operators had a fleet dashboard; this is the terminal
equivalent, rendered after ``demo``/``experiment`` when ``--console`` is
passed (and dumpable as JSON with ``--console-json``).  One row per
machine — anomaly rate, caps in force, degraded-mode flag, crash count,
injected-fault tally — plus a fleet footer with alert firings and scrape
stats.

The console is built from plain data (:class:`MachineHealth` rows), not
live objects, so the shard coordinator can assemble the identical
scoreboard from worker-shipped summaries: rendering is pure and sorted,
making the output a byte-parity surface across ``--jobs`` counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "MachineHealth",
    "FleetConsole",
    "build_console",
]


@dataclass
class MachineHealth:
    """One machine's end-of-run health row."""

    machine: str
    seconds: int
    anomalies: int
    caps_active: int
    degraded: bool
    crashes: int
    faults: dict[str, int] = field(default_factory=dict)

    @property
    def anomaly_rate_per_hour(self) -> float:
        """CPI outlier detections per simulated hour on this machine."""
        if self.seconds <= 0:
            return 0.0
        return self.anomalies * 3600.0 / self.seconds

    @property
    def fault_total(self) -> int:
        return sum(self.faults.values())

    def flags(self) -> str:
        parts = []
        if self.degraded:
            parts.append("DEGRADED")
        if self.crashes:
            parts.append(f"crashed x{self.crashes}")
        return " ".join(parts) if parts else "ok"

    def to_dict(self) -> dict:
        return {
            "machine": self.machine,
            "seconds": self.seconds,
            "anomalies": self.anomalies,
            "anomaly_rate_per_hour": round(self.anomaly_rate_per_hour, 3),
            "caps_active": self.caps_active,
            "degraded": self.degraded,
            "crashes": self.crashes,
            "faults": dict(sorted(self.faults.items())),
        }


@dataclass
class FleetConsole:
    """The whole scoreboard: sorted machine rows plus fleet-level footer."""

    machines: list[MachineHealth]
    alerts_fired: dict[str, int] = field(default_factory=dict)
    alerts_active: list[str] = field(default_factory=list)
    scrapes: int = 0

    def render(self) -> str:
        header = ("machine", "anomalies", "rate/h", "caps", "crashes",
                  "faults", "status")
        rows = [header]
        for row in self.machines:
            rows.append((
                row.machine,
                str(row.anomalies),
                f"{row.anomaly_rate_per_hour:.2f}",
                str(row.caps_active),
                str(row.crashes),
                str(row.fault_total),
                row.flags(),
            ))
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = ["== fleet console =="]
        for i, row in enumerate(rows):
            lines.append("  " + "  ".join(
                cell.ljust(widths[j]) for j, cell in enumerate(row)).rstrip())
            if i == 0:
                lines.append("  " + "  ".join("-" * w for w in widths))
        degraded = sum(1 for m in self.machines if m.degraded)
        lines.append(f"  fleet: {len(self.machines)} machines, "
                     f"{degraded} degraded, "
                     f"{sum(m.anomalies for m in self.machines)} anomalies, "
                     f"{sum(m.fault_total for m in self.machines)} faults "
                     f"injected")
        if self.alerts_fired:
            fired = ", ".join(f"{name} x{count}" for name, count
                              in sorted(self.alerts_fired.items()))
            lines.append(f"  alerts fired: {fired}")
        else:
            lines.append("  alerts fired: none")
        if self.alerts_active:
            lines.append("  alerts still active: "
                         + ", ".join(sorted(self.alerts_active)))
        lines.append(f"  telemetry: {self.scrapes} scrapes")
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "machines": [m.to_dict() for m in self.machines],
            "alerts_fired": dict(sorted(self.alerts_fired.items())),
            "alerts_active": sorted(self.alerts_active),
            "scrapes": self.scrapes,
        }
        return json.dumps(payload, sort_keys=True, indent=2)


def build_console(
    machine_rows: Mapping[str, Mapping[str, object]],
    seconds: int,
    alerts_fired: Optional[Mapping[str, int]] = None,
    alerts_active: Optional[list[str]] = None,
    scrapes: int = 0,
) -> FleetConsole:
    """Assemble a console from per-machine fact dicts.

    ``machine_rows`` maps machine name to a dict with ``anomalies``,
    ``caps_active``, ``degraded``, ``crashes``, and ``faults`` keys (all
    optional; missing means zero).  Both the single-process pipeline and
    the shard coordinator call this with the same shapes.
    """
    machines = [
        MachineHealth(
            machine=name,
            seconds=seconds,
            anomalies=int(row.get("anomalies", 0)),
            caps_active=int(row.get("caps_active", 0)),
            degraded=bool(row.get("degraded", False)),
            crashes=int(row.get("crashes", 0)),
            faults={k: int(v)
                    for k, v in dict(row.get("faults") or {}).items()},
        )
        for name, row in sorted(machine_rows.items())
    ]
    return FleetConsole(
        machines=machines,
        alerts_fired=dict(alerts_fired or {}),
        alerts_active=list(alerts_active or []),
        scrapes=scrapes,
    )
