"""Structured event logging: the run log CPI2 operators grep.

Every noteworthy control-loop step — anomaly declared, analysis dropped,
cap applied, follow-up closed — is a dict-shaped *event* with a stable
``event`` type plus context fields (machine, task, job, simulated time).
Events flow through stdlib :mod:`logging` under the ``repro.events`` logger,
so the usual handler machinery applies; :func:`configure_logging` wires the
two handlers the CLI exposes (human console at ``--log-level``, JSONL file
at ``--log-json``).

:class:`StructuredLogger` also supports in-process sinks (plain callables
receiving the payload dict) so tests and the forensics layer can capture
events without touching global logging state.
"""

from __future__ import annotations

import io
import json
import logging
from typing import Callable, Optional

__all__ = [
    "EVENT_LOGGER_NAME",
    "JsonlFormatter",
    "StructuredLogger",
    "configure_logging",
    "reset_logging",
]

#: All structured events are logged under this logger name.
EVENT_LOGGER_NAME = "repro.events"

#: Marker attribute identifying handlers installed by configure_logging.
_MANAGED = "_repro_obs_managed"


class _EventMessage:
    """Lazily renders an event payload for human-readable handlers."""

    __slots__ = ("payload",)

    def __init__(self, payload: dict):
        self.payload = payload

    def __str__(self) -> str:
        parts = [str(self.payload.get("event", "?"))]
        parts.extend(f"{k}={v}" for k, v in self.payload.items()
                     if k != "event")
        return " ".join(parts)


class JsonlFormatter(logging.Formatter):
    """One compact JSON object per record.

    Records carrying an ``event_payload`` (everything emitted through
    :class:`StructuredLogger`) serialise that dict verbatim; anything else
    logged under the handler's logger is wrapped as a generic ``log`` event
    so the output file stays line-parseable end to end.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload = getattr(record, "event_payload", None)
        if payload is None:
            payload = {
                "event": "log",
                "level": record.levelname.lower(),
                "logger": record.name,
                "message": record.getMessage(),
            }
        return json.dumps(payload, sort_keys=True, default=str,
                          separators=(",", ":"))


class StructuredLogger:
    """Emits dict-shaped events with simulated-time stamps.

    Args:
        name: stdlib logger to emit through.
        clock: zero-arg callable returning the current simulated time in
            seconds; stamped on every event as ``t``.  Bound by the pipeline
            to its simulation's clock.
    """

    def __init__(self, name: str = EVENT_LOGGER_NAME,
                 clock: Optional[Callable[[], int]] = None):
        self._logger = logging.getLogger(name)
        self.clock = clock
        self._sinks: list[Callable[[dict], None]] = []

    def add_sink(self, sink: Callable[[dict], None]) -> None:
        """Also deliver every event payload to ``sink`` (tests, capture)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[dict], None]) -> None:
        self._sinks.remove(sink)

    def event(self, event: str, *, level: int = logging.INFO,
              **fields: object) -> Optional[dict]:
        """Emit one structured event; returns the payload, or None if dropped.

        The payload is only built when someone is listening (a sink, or a
        logging level that passes), which keeps disabled logging nearly free
        on the per-sample hot path.
        """
        if not self._sinks and not self._logger.isEnabledFor(level):
            return None
        payload: dict = {"event": event}
        if self.clock is not None:
            payload["t"] = self.clock()
        payload.update(fields)
        if self._logger.isEnabledFor(level):
            self._logger.log(level, "%s", _EventMessage(payload),
                             extra={"event_payload": payload})
        for sink in self._sinks:
            sink(payload)
        return payload

    def debug(self, event: str, **fields: object) -> Optional[dict]:
        return self.event(event, level=logging.DEBUG, **fields)

    def warning(self, event: str, **fields: object) -> Optional[dict]:
        return self.event(event, level=logging.WARNING, **fields)


def _remove_managed_handlers(logger: logging.Logger) -> None:
    for handler in list(logger.handlers):
        if getattr(handler, _MANAGED, False):
            logger.removeHandler(handler)
            handler.close()


def configure_logging(level: str = "warning",
                      json_path: Optional[str] = None,
                      stream: Optional[io.TextIOBase] = None) -> logging.Logger:
    """Wire the ``repro`` logger tree for a run.

    Args:
        level: console verbosity (debug/info/warning/error).  Events below
            this level do not reach the console, but all of them reach the
            JSONL file when one is configured.
        json_path: write every event as one JSON line to this file.
        stream: console destination (stderr by default; injectable for tests).

    Returns the configured ``repro`` logger.  Safe to call repeatedly —
    handlers installed by a previous call are replaced, not stacked.
    """
    console_level = getattr(logging, level.upper(), None)
    if not isinstance(console_level, int):
        raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger("repro")
    _remove_managed_handlers(root)
    # The logger gate must be at least as permissive as the most permissive
    # handler: the JSONL file always gets everything from DEBUG up.
    root.setLevel(logging.DEBUG if json_path else console_level)
    root.propagate = False

    console = logging.StreamHandler(stream)
    console.setLevel(console_level)
    console.setFormatter(logging.Formatter("%(levelname)s %(message)s"))
    setattr(console, _MANAGED, True)
    root.addHandler(console)

    if json_path:
        jsonl = logging.FileHandler(json_path, mode="w", encoding="utf-8")
        jsonl.setLevel(logging.DEBUG)
        jsonl.setFormatter(JsonlFormatter())
        setattr(jsonl, _MANAGED, True)
        root.addHandler(jsonl)
    return root


def reset_logging() -> None:
    """Remove handlers installed by :func:`configure_logging` (tests)."""
    root = logging.getLogger("repro")
    _remove_managed_handlers(root)
    root.setLevel(logging.NOTSET)
    root.propagate = True
