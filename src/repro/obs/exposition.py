"""Prometheus text-format rendering of a :class:`MetricsRegistry`.

The ROADMAP's service-mode item will expose ``/metrics`` from an asyncio
server; this module is that endpoint's body, usable today from the CLI
(``demo --metrics-out metrics.prom``).  The output follows the Prometheus
exposition format 0.0.4:

- counters are rendered with a ``_total`` suffix,
- histograms expand to cumulative ``_bucket{le=...}`` series plus
  ``_sum`` and ``_count``,
- every family gets a ``# TYPE`` line, families and label sets are sorted,
  and label values are escaped — all deterministic, which is what the
  golden-file test pins.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.metrics import LabelKey, MetricsRegistry
from repro.obs.timeseries import TimeSeriesDB, format_le

__all__ = [
    "render_prometheus",
    "write_prometheus",
    "write_timeseries_jsonl",
]


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\n", "\\n")
                 .replace('"', '\\"'))


def _render_labels(labels: LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text format (trailing newline included)."""
    lines: list[str] = []

    counter_families = sorted({c.name for c in registry.counters()})
    for family in counter_families:
        lines.append(f"# TYPE {family}_total counter")
        for counter in registry.counters(family):
            lines.append(f"{family}_total{_render_labels(counter.labels)} "
                         f"{_fmt_value(counter.value)}")

    gauge_families = sorted({g.name for g in registry.gauges()})
    for family in gauge_families:
        lines.append(f"# TYPE {family} gauge")
        for gauge in registry.gauges(family):
            lines.append(f"{family}{_render_labels(gauge.labels)} "
                         f"{_fmt_value(gauge.value)}")

    histogram_families = sorted({h.name for h in registry.histograms()})
    for family in histogram_families:
        lines.append(f"# TYPE {family} histogram")
        for hist in registry.histograms(family):
            cumulative = 0
            for i, bound in enumerate(hist.bounds + (float("inf"),)):
                cumulative += hist.bucket_counts[i]
                le_labels = tuple(sorted(
                    hist.labels + (("le", format_le(bound)),)))
                lines.append(f"{family}_bucket{_render_labels(le_labels)} "
                             f"{cumulative}")
            lines.append(f"{family}_sum{_render_labels(hist.labels)} "
                         f"{_fmt_value(hist.sum)}")
            lines.append(f"{family}_count{_render_labels(hist.labels)} "
                         f"{hist.count}")

    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(registry: MetricsRegistry, path: str) -> int:
    """Write :func:`render_prometheus` to ``path``; returns the line count."""
    text = render_prometheus(registry)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return text.count("\n")


def write_timeseries_jsonl(tsdb: Optional[TimeSeriesDB], path: str) -> int:
    """Dump a TSDB as JSONL (one series per line); returns the series count.

    Accepts None (telemetry plane off) and writes an empty file, so CLI
    call sites don't need to special-case the flag combination.
    """
    if tsdb is None:
        with open(path, "w", encoding="utf-8"):
            pass
        return 0
    return tsdb.export_jsonl(path)
