"""Zero-dependency metrics primitives for the CPI2 control loop.

The paper's operators watched CPI2 through Google's monitoring stack; this
module is the reproduction's stand-in: a :class:`MetricsRegistry` holding
named counters, gauges, and fixed-bucket histograms, designed so the hot
sampling path pays one dict lookup (or none, if the caller caches the
instrument) plus one float add per increment.

Instruments are identified by a family name plus optional labels, in the
Prometheus style::

    registry.counter("analyses_dropped", reason="rate_limited").inc()
    registry.gauge("caps_active", machine="m3").set(2)
    registry.histogram("victim_cpi").observe(3.7)

Families are untyped until first use; re-using one name with a different
instrument kind raises.  ``registry.total("incidents_by_action")`` sums a
counter family across all label sets — the invariant checked by the CLI's
metrics report (it must equal ``len(pipeline.all_incidents())``).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "export_state",
    "merge_state",
]

#: Generic latency/ratio buckets: fine resolution near the CPI range the
#: paper's Figure 3 covers, coarse above it.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0, 30.0, 60.0, 300.0,
)

#: A label set, normalised to a sorted tuple of (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_key(name: str, labels: LabelKey) -> str:
    """``name{k=v,...}`` — the report/snapshot spelling of an instrument."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def __repr__(self) -> str:
        return f"Counter({render_key(self.name, self.labels)}={self.value})"


class Gauge:
    """A value that can go up and down (e.g. caps currently in force)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:
        return f"Gauge({render_key(self.name, self.labels)}={self.value})"


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf overflow bucket.

    Buckets are cumulative-upper-bound style: ``observe(v)`` lands in the
    first bucket whose bound is >= v.  ``quantile`` interpolates inside the
    winning bucket, which is exact enough for a report and keeps the
    observe path at one bisect + two adds.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, labels: LabelKey = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: One slot per bound plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-interpolated q-quantile (q in [0, 1]); None when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        estimate = self.max
        for i, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = self.bounds[i - 1] if i > 0 else (
                    min(self.min or 0.0, self.bounds[0]))
                hi = self.bounds[i] if i < len(self.bounds) else (
                    self.max if self.max is not None else self.bounds[-1])
                if math.isinf(hi):
                    estimate = lo
                else:
                    fraction = (rank - seen) / bucket_count
                    estimate = lo + (hi - lo) * min(1.0, max(0.0, fraction))
                break
            seen += bucket_count
        if estimate is None:
            return None
        # Interpolation cannot beat the observed extremes.
        if self.min is not None:
            estimate = max(estimate, self.min)
        if self.max is not None:
            estimate = min(estimate, self.max)
        return estimate

    def summary(self) -> dict[str, object]:
        """The report/snapshot view of this histogram."""
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return (f"Histogram({render_key(self.name, self.labels)} "
                f"count={self.count} mean={self.mean:.3g})")


class MetricsRegistry:
    """Owns every instrument for one deployment (usually one pipeline).

    Thread-safe on the create path (first use of a (name, labels) pair);
    increments on the instruments themselves are plain float adds, which is
    what keeps the per-sample cost negligible.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelKey], Histogram] = {}
        self._kinds: dict[str, str] = {}

    # -- instrument lookup / creation -----------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        claimed = self._kinds.setdefault(name, kind)
        if claimed != kind:
            raise ValueError(
                f"metric family {name!r} is a {claimed}, not a {kind}")

    def counter(self, name: str, **labels: object) -> Counter:
        key = (name, _label_key(labels))
        found = self._counters.get(key)
        if found is None:
            with self._lock:
                self._claim(name, "counter")
                found = self._counters.setdefault(key, Counter(*key))
        return found

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = (name, _label_key(labels))
        found = self._gauges.get(key)
        if found is None:
            with self._lock:
                self._claim(name, "gauge")
                found = self._gauges.setdefault(key, Gauge(*key))
        return found

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels: object) -> Histogram:
        key = (name, _label_key(labels))
        found = self._histograms.get(key)
        if found is None:
            with self._lock:
                self._claim(name, "histogram")
                found = self._histograms.setdefault(
                    key, Histogram(*key, buckets=buckets or DEFAULT_BUCKETS))
        return found

    # -- family queries ----------------------------------------------------------

    def counters(self, name: Optional[str] = None) -> list[Counter]:
        """All counters, or one family's, sorted by label key."""
        found = [c for (n, _), c in self._counters.items()
                 if name is None or n == name]
        return sorted(found, key=lambda c: (c.name, c.labels))

    def gauges(self, name: Optional[str] = None) -> list[Gauge]:
        found = [g for (n, _), g in self._gauges.items()
                 if name is None or n == name]
        return sorted(found, key=lambda g: (g.name, g.labels))

    def histograms(self, name: Optional[str] = None) -> list[Histogram]:
        found = [h for (n, _), h in self._histograms.items()
                 if name is None or n == name]
        return sorted(found, key=lambda h: (h.name, h.labels))

    def total(self, name: str) -> float:
        """Sum a counter family across all of its label sets."""
        return sum(c.value for c in self.counters(name))

    def value(self, name: str, **labels: object) -> Optional[float]:
        """One counter/gauge value, or None if it was never touched."""
        key = (name, _label_key(labels))
        found = self._counters.get(key) or self._gauges.get(key)
        return found.value if found is not None else None

    # -- export ----------------------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """A JSON-friendly dump of every instrument."""
        return {
            "counters": {render_key(c.name, c.labels): c.value
                         for c in self.counters()},
            "gauges": {render_key(g.name, g.labels): g.value
                       for g in self.gauges()},
            "histograms": {render_key(h.name, h.labels): h.summary()
                           for h in self.histograms()},
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived default registries)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._kinds.clear()


def export_state(registry: MetricsRegistry,
                 exclude_counters: Iterable[str] = ()) -> dict[str, list]:
    """A picklable dump of every instrument, for shipping across processes.

    Counters with value zero are skipped: instruments created at pipeline
    construction exist symmetrically in every process, so omitting the
    zeros loses nothing and keeps barrier messages small.  Gauges and
    histograms are shipped even at zero — their mere existence shows up in
    reports and expositions, so all sides must agree on the set.
    """
    excluded = frozenset(exclude_counters)
    return {
        "counters": [(c.name, c.labels, c.value) for c in registry.counters()
                     if c.value and c.name not in excluded],
        "gauges": [(g.name, g.labels, g.value) for g in registry.gauges()],
        "histograms": [
            (h.name, h.labels, h.bounds, tuple(h.bucket_counts),
             h.count, h.sum, h.min, h.max)
            for h in registry.histograms()
        ],
    }


def merge_state(registry: MetricsRegistry, state: dict[str, list],
                gauges: str = "add") -> None:
    """Fold an :func:`export_state` dump into ``registry``.

    Counters and histograms add exactly (bucket tallies and counts are
    integers).  ``gauges`` picks the gauge semantics:

    * ``"add"`` (default) — sum contributions.  Correct for shard workers,
      where every gauge writer is either per-machine (each machine's gauge
      has exactly one writing process) or inc/dec-shaped
      (``degraded_agents``), so the sum reconstructs the single-process
      value.
    * ``"set"`` — last write wins.  Correct for fork-pool workers
      (:func:`repro.experiments.registry.run_experiments`,
      :func:`repro.experiments.trials.run_trials`), where each child runs a
      *complete* simulation and the serial baseline would simply overwrite
      the gauge; states must be folded in input order.

    Histogram float sums are added child-total-at-a-time, so they can differ
    from the serial sample-at-a-time accumulation by rounding ulps; every
    byte-parity surface (the TSDB, alerts, the console) therefore sticks to
    the integer bucket counts.
    """
    if gauges not in ("add", "set"):
        raise ValueError(f"gauges must be 'add' or 'set', got {gauges!r}")
    for name, labels, value in state["counters"]:
        if value:
            registry.counter(name, **dict(labels)).inc(value)
    for name, labels, value in state["gauges"]:
        gauge = registry.gauge(name, **dict(labels))
        if gauges == "set":
            gauge.set(value)
        elif value:
            gauge.inc(value)
    for (name, labels, bounds, bucket_counts,
         count, total, low, high) in state["histograms"]:
        hist = registry.histogram(name, buckets=bounds, **dict(labels))
        if hist.bounds != tuple(bounds):
            raise ValueError(
                f"histogram {name!r} bucket bounds differ across processes: "
                f"{hist.bounds} vs {tuple(bounds)}")
        for i, n in enumerate(bucket_counts):
            hist.bucket_counts[i] += n
        hist.count += count
        hist.sum += total
        if low is not None:
            hist.min = low if hist.min is None else min(hist.min, low)
        if high is not None:
            hist.max = high if hist.max is None else max(hist.max, high)
