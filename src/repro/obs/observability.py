"""The observability facade: one handle bundling metrics, events, traces.

Every instrumented component (pipeline, agents, aggregator, detector,
throttler, simulation) takes an optional :class:`Observability` and falls
back to the process-wide default, so ad-hoc scripts get working telemetry
for free while tests and experiments can pass an isolated instance.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.events import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = [
    "Observability",
    "default_observability",
    "set_default_observability",
]


class Observability:
    """Metrics registry + structured event logger + pipeline tracer."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[StructuredLogger] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Callable[[], int]] = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self.events = events or StructuredLogger(clock=clock)
        self.tracer = tracer or Tracer()
        if clock is not None:
            self.events.clock = clock

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Stamp future events with this simulated-time source."""
        self.events.clock = clock


_default: Optional[Observability] = None


def default_observability() -> Observability:
    """The process-wide instance used when no explicit one is passed."""
    global _default
    if _default is None:
        _default = Observability()
    return _default


def set_default_observability(obs: Optional[Observability]
                              ) -> Optional[Observability]:
    """Swap the process default (None re-arms lazy creation); returns the old one."""
    global _default
    previous = _default
    _default = obs
    return previous
