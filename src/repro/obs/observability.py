"""The observability facade: one handle bundling metrics, events, traces.

Every instrumented component (pipeline, agents, aggregator, detector,
throttler, simulation) takes an optional :class:`Observability` and falls
back to the process-wide default, so ad-hoc scripts get working telemetry
for free while tests and experiments can pass an isolated instance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.obs.events import StructuredLogger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

if TYPE_CHECKING:
    from repro.obs.alerts import AlertEngine
    from repro.obs.timeseries import TimeSeriesDB

__all__ = [
    "Observability",
    "default_observability",
    "set_default_observability",
    "telemetry_observability",
]


class Observability:
    """Metrics registry + structured event logger + pipeline tracer.

    The optional telemetry plane (``timeseries`` TSDB + ``alerts`` engine)
    is off by default — attach it with :func:`telemetry_observability` or
    by setting the attributes directly.  When both are None, the scrape
    hook never runs and the instrumented run is bit-identical to a
    pre-telemetry one.
    """

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[StructuredLogger] = None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Callable[[], int]] = None,
    ):
        self.metrics = metrics or MetricsRegistry()
        self.events = events or StructuredLogger(clock=clock)
        self.tracer = tracer or Tracer()
        self.timeseries: Optional["TimeSeriesDB"] = None
        self.alerts: Optional["AlertEngine"] = None
        if clock is not None:
            self.events.clock = clock

    def bind_clock(self, clock: Callable[[], int]) -> None:
        """Stamp future events with this simulated-time source."""
        self.events.clock = clock

    @property
    def telemetry_enabled(self) -> bool:
        return self.timeseries is not None

    def enable_telemetry(self, max_points: int = 4096) -> "Observability":
        """Attach a TSDB and the default alert rules; returns self."""
        from repro.obs.alerts import AlertEngine
        from repro.obs.timeseries import TimeSeriesDB

        if self.timeseries is None:
            self.timeseries = TimeSeriesDB(max_points=max_points)
        if self.alerts is None:
            self.alerts = AlertEngine(events=self.events)
        return self


def telemetry_observability(clock: Optional[Callable[[], int]] = None
                            ) -> Observability:
    """A fresh facade with the telemetry plane already attached."""
    return Observability(clock=clock).enable_telemetry()


_default: Optional[Observability] = None


def default_observability() -> Observability:
    """The process-wide instance used when no explicit one is passed."""
    global _default
    if _default is None:
        _default = Observability()
    return _default


def set_default_observability(obs: Optional[Observability]
                              ) -> Optional[Observability]:
    """Swap the process default (None re-arms lazy creation); returns the old one."""
    global _default
    previous = _default
    _default = obs
    return previous
