"""Render a :class:`~repro.obs.metrics.MetricsRegistry` for the terminal.

The CLI prints this after ``demo`` and ``experiment`` runs: per-stage
counters (samples in, anomalies, drops by reason, incidents by action),
gauges, and histogram summaries — the quick "did the control loop behave"
read an operator wants before reaching for the JSONL event log.
"""

from __future__ import annotations

from repro.obs.metrics import Histogram, MetricsRegistry, render_key

__all__ = ["render_metrics_report", "metrics_lines"]


def _fmt(value: object) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


def _histogram_line(hist: Histogram) -> str:
    summary = hist.summary()
    return (f"count={_fmt(summary['count'])} mean={_fmt(summary['mean'])} "
            f"min={_fmt(summary['min'])} p50={_fmt(summary['p50'])} "
            f"p95={_fmt(summary['p95'])} max={_fmt(summary['max'])}")


def metrics_lines(registry: MetricsRegistry) -> list[str]:
    """The report as a list of lines (joined by :func:`render_metrics_report`)."""
    lines: list[str] = []
    counters = registry.counters()
    gauges = registry.gauges()
    histograms = registry.histograms()
    if not (counters or gauges or histograms):
        return ["(no metrics recorded)"]

    width = max(
        [len(render_key(c.name, c.labels)) for c in counters]
        + [len(render_key(g.name, g.labels)) for g in gauges]
        + [len(render_key(h.name, h.labels)) for h in histograms]
    )

    if counters:
        lines.append("counters:")
        families = sorted({c.name for c in counters})
        for family in families:
            members = registry.counters(family)
            for counter in members:
                key = render_key(counter.name, counter.labels)
                lines.append(f"  {key:<{width}}  {_fmt(counter.value)}")
            if len(members) > 1:
                total_key = f"{family} (total)"
                lines.append(
                    f"  {total_key:<{width}}  {_fmt(registry.total(family))}")
    if gauges:
        lines.append("gauges:")
        for gauge in gauges:
            key = render_key(gauge.name, gauge.labels)
            lines.append(f"  {key:<{width}}  {_fmt(gauge.value)}")
    if histograms:
        lines.append("histograms:")
        for hist in histograms:
            key = render_key(hist.name, hist.labels)
            lines.append(f"  {key:<{width}}  {_histogram_line(hist)}")
    return lines


def render_metrics_report(registry: MetricsRegistry,
                          title: str = "metrics") -> str:
    """A ready-to-print metrics report."""
    return "\n".join([f"== {title} =="] + metrics_lines(registry))
