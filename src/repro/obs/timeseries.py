"""A deterministic, simulated-time ring-buffer TSDB over the metrics plane.

CPI2's operators watched spec drift and throttling as live time series;
this module is that history layer for the reproduction.  A
:class:`TimeSeriesDB` *scrapes* a :class:`~repro.obs.metrics.MetricsRegistry`
(or a set of portable per-shard states) at every sampling-window close:

- **counters** are recorded as per-scrape *deltas* (``increase()`` in
  PromQL terms), so window-rate alert expressions are a sum over points;
- **gauges** are recorded as the value at scrape time (last-write wins);
- **histograms** are recorded Prometheus-style as *cumulative* bucket
  counts — one ``histogram_bucket`` series per ``le`` bound (counting
  observations ``<= le`` since the start of the run) plus one
  ``histogram_count`` series.  Only integer tallies are stored, never the
  float ``sum``, so shard merges are exact and the scraped series is
  byte-identical at any ``--jobs`` count.

Everything is keyed by simulated time and bounded: each series is a ring
buffer of at most ``max_points`` points, so a long-running service-mode
process holds a sliding window, not an unbounded log.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Mapping, Optional, Sequence

from repro.obs.metrics import LabelKey, MetricsRegistry, export_state

__all__ = [
    "KIND_COUNTER",
    "KIND_GAUGE",
    "KIND_HISTOGRAM_BUCKET",
    "KIND_HISTOGRAM_COUNT",
    "RingSeries",
    "TimeSeriesDB",
    "format_le",
]

KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM_BUCKET = "histogram_bucket"
KIND_HISTOGRAM_COUNT = "histogram_count"

#: Synthesized at scrape time (never written to the registry, so a
#: telemetry-off run's metrics report is untouched by this module).
SCRAPE_INTERVAL_GAUGE = "scrape_interval_seconds"


def format_le(bound: float) -> str:
    """The ``le`` label value for one bucket bound (``+Inf`` for overflow)."""
    if bound == float("inf"):
        return "+Inf"
    if bound == int(bound) and abs(bound) < 1e15:
        return str(int(bound))
    return repr(bound)


class RingSeries:
    """One bounded time series: (simulated second, value) pairs."""

    __slots__ = ("kind", "name", "labels", "points")

    def __init__(self, kind: str, name: str, labels: LabelKey,
                 max_points: int):
        self.kind = kind
        self.name = name
        self.labels = labels
        self.points: deque[tuple[int, float]] = deque(maxlen=max_points)

    def append(self, t: int, value: float) -> None:
        self.points.append((t, value))

    def last(self) -> Optional[float]:
        return self.points[-1][1] if self.points else None

    def window_sum(self, now: int, window: int) -> float:
        """Sum of point values with ``t > now - window`` (delta series)."""
        cutoff = now - window
        return sum(v for t, v in self.points if t > cutoff)

    def __repr__(self) -> str:
        return (f"RingSeries({self.kind} {self.name}{dict(self.labels)} "
                f"n={len(self.points)})")


def _merge_states(states: Sequence[dict]) -> tuple[dict, dict, dict]:
    """Sum portable registry states into (counters, gauges, histograms) maps."""
    counters: dict[tuple[str, LabelKey], float] = {}
    gauges: dict[tuple[str, LabelKey], float] = {}
    hists: dict[tuple[str, LabelKey], tuple[tuple[float, ...], list[int]]] = {}
    for state in states:
        for name, labels, value in state["counters"]:
            key = (name, labels)
            counters[key] = counters.get(key, 0.0) + value
        for name, labels, value in state["gauges"]:
            key = (name, labels)
            gauges[key] = gauges.get(key, 0.0) + value
        for name, labels, bounds, bucket_counts, count, _sum, _lo, _hi \
                in state["histograms"]:
            key = (name, labels)
            found = hists.get(key)
            if found is None:
                hists[key] = (tuple(bounds), list(bucket_counts))
            else:
                prior_bounds, tallies = found
                if prior_bounds != tuple(bounds):
                    raise ValueError(
                        f"histogram {name!r} bucket bounds differ across "
                        f"shards: {prior_bounds} vs {tuple(bounds)}")
                for i, n in enumerate(bucket_counts):
                    tallies[i] += n
    return counters, gauges, hists


class TimeSeriesDB:
    """Scrapes registries into bounded, simulated-time series.

    One instance lives on the telemetry-enabled pipeline (and on the shard
    coordinator).  ``scrape_registry`` is the single-process path;
    ``scrape_states`` is the sharded path — both funnel through the same
    recording code so the stored series are identical either way.
    """

    def __init__(self, max_points: int = 4096):
        if max_points < 2:
            raise ValueError("max_points must be at least 2")
        self.max_points = max_points
        self._series: dict[tuple[str, str, LabelKey], RingSeries] = {}
        self._counter_totals: dict[tuple[str, LabelKey], float] = {}
        self.scrapes = 0
        self.last_scrape_t: Optional[int] = None

    # -- scraping ------------------------------------------------------------

    def scrape_registry(self, t: int, registry: MetricsRegistry,
                        extra_gauges: Optional[Mapping[str, float]] = None,
                        exclude_counters: Iterable[str] = ()) -> None:
        """Record one scrape of a live registry at simulated time ``t``."""
        self.scrape_states(t, [export_state(registry, exclude_counters)],
                           extra_gauges)

    def scrape_states(self, t: int, states: Sequence[dict],
                      extra_gauges: Optional[Mapping[str, float]] = None
                      ) -> None:
        """Record one scrape built from portable per-process registry states.

        ``states`` are summed instrument-by-instrument before recording, so
        a coordinator scraping N shard states stores exactly what a single
        process scraping one fused registry would.
        """
        counters, gauges, hists = _merge_states(states)
        for (name, labels) in sorted(counters):
            total = counters[(name, labels)]
            key = (name, labels)
            delta = total - self._counter_totals.get(key, 0.0)
            self._counter_totals[key] = total
            self._record(KIND_COUNTER, name, labels, t, delta)
        for (name, labels) in sorted(gauges):
            self._record(KIND_GAUGE, name, labels, t, gauges[(name, labels)])
        if extra_gauges:
            for name in sorted(extra_gauges):
                self._record(KIND_GAUGE, name, (), t, extra_gauges[name])
        if self.last_scrape_t is not None:
            self._record(KIND_GAUGE, SCRAPE_INTERVAL_GAUGE, (), t,
                         t - self.last_scrape_t)
        for (name, labels) in sorted(hists):
            bounds, tallies = hists[(name, labels)]
            cumulative = 0
            for i, bound in enumerate(tuple(bounds) + (float("inf"),)):
                cumulative += tallies[i]
                le_labels = tuple(sorted(labels + (("le", format_le(bound)),)))
                self._record(KIND_HISTOGRAM_BUCKET, name, le_labels, t,
                             cumulative)
            self._record(KIND_HISTOGRAM_COUNT, name, labels, t, cumulative)
        self.scrapes += 1
        self.last_scrape_t = t

    def _record(self, kind: str, name: str, labels: LabelKey,
                t: int, value: float) -> None:
        key = (kind, name, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = RingSeries(kind, name, labels,
                                                    self.max_points)
        series.append(t, value)

    # -- queries (the alert engine's read API) -------------------------------

    def series(self, kind: Optional[str] = None, name: Optional[str] = None,
               labels: Optional[Mapping[str, object]] = None
               ) -> list[RingSeries]:
        """All series matching kind/name and *containing* the given labels."""
        wanted = None if labels is None else {
            (k, str(v)) for k, v in labels.items()}
        found = [
            s for (k, n, _), s in self._series.items()
            if (kind is None or k == kind) and (name is None or n == name)
            and (wanted is None or wanted <= set(s.labels))
        ]
        return sorted(found, key=lambda s: (s.kind, s.name, s.labels))

    def counter_increase(self, name: str, now: int, window: int,
                         labels: Optional[Mapping[str, object]] = None
                         ) -> float:
        """Total increase of a counter family over the trailing window."""
        return sum(s.window_sum(now, window)
                   for s in self.series(KIND_COUNTER, name, labels))

    def gauge_last(self, name: str,
                   labels: Optional[Mapping[str, object]] = None
                   ) -> Optional[float]:
        """Sum of the latest values across matching gauge series.

        Per-machine gauge families (``caps_active{machine=...}``) sum to the
        fleet value; singleton gauges return their last write.  None when no
        matching series has any points yet.
        """
        values = [s.last() for s in self.series(KIND_GAUGE, name, labels)]
        values = [v for v in values if v is not None]
        return sum(values) if values else None

    def instrument_names(self) -> list[str]:
        """Every metric family name the TSDB has recorded (sorted)."""
        return sorted({name for (_, name, _) in self._series})

    # -- export --------------------------------------------------------------

    def dump_lines(self) -> list[str]:
        """The whole database as sorted JSONL lines (the ``--timeseries-out``
        format and the shard-parity acceptance surface)."""
        lines = []
        for key in sorted(self._series):
            series = self._series[key]
            lines.append(json.dumps({
                "kind": series.kind,
                "name": series.name,
                "labels": dict(series.labels),
                "points": [[t, _jsonable(v)] for t, v in series.points],
            }, sort_keys=True, separators=(",", ":")))
        return lines

    def export_jsonl(self, path: str) -> int:
        """Write :meth:`dump_lines` to ``path``; returns the series count."""
        lines = self.dump_lines()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
        return len(lines)


def _jsonable(value: float) -> object:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return int(value)
    return value
