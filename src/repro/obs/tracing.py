"""Simulated-time span tracing for the detect→actuate→follow-up pipeline.

Each handled anomaly becomes one :class:`PipelineTrace` holding a span per
stage — ``detect`` (first outlier flag to anomaly declaration), ``identify``
(correlation ranking), ``decide`` (policy), ``actuate`` (cap/migrate), and
``followup`` (cap window to recovery check).  Span times are simulated
seconds, so the stage latencies an operator reads off a trace are the ones
the paper's control loop actually exhibits (e.g. a follow-up span is the
5-minute hard-cap duration); wall-clock cost of the analysis itself is
attached as span attributes where it is interesting.

Traces export as JSONL (one trace per line) via :meth:`Tracer.export_jsonl`,
mirroring the structured event log's format so the same tooling greps both.
"""

from __future__ import annotations

import itertools
import json
from collections import deque
from dataclasses import dataclass, field
from typing import IO, Iterable, Optional, Union

__all__ = ["Span", "PipelineTrace", "Tracer"]


@dataclass
class Span:
    """One pipeline stage inside a trace, in simulated seconds."""

    name: str
    start: int
    end: Optional[int] = None
    attributes: dict = field(default_factory=dict)

    def finish(self, t: int, **attributes: object) -> "Span":
        """Close the span at simulated time ``t``; returns self."""
        self.end = t
        self.attributes.update(attributes)
        return self

    @property
    def duration(self) -> Optional[int]:
        """Simulated seconds the stage spanned (None while open)."""
        if self.end is None:
            return None
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


@dataclass
class PipelineTrace:
    """One anomaly's journey through the control loop."""

    trace_id: int
    kind: str
    start: int
    attributes: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)

    def span(self, name: str, start: int, end: Optional[int] = None,
             **attributes: object) -> Span:
        """Open (or record a completed) stage span."""
        created = Span(name=name, start=start, end=end,
                       attributes=dict(attributes))
        self.spans.append(created)
        return created

    def find_span(self, name: str) -> Optional[Span]:
        """The first span with this stage name, if recorded."""
        for span in self.spans:
            if span.name == name:
                return span
        return None

    @property
    def end(self) -> Optional[int]:
        """Latest closed-span end, or None if nothing closed yet."""
        ends = [s.end for s in self.spans if s.end is not None]
        return max(ends) if ends else None

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "spans": [s.to_dict() for s in self.spans],
        }


class Tracer:
    """Collects pipeline traces, bounded so long runs cannot grow unbounded.

    Args:
        max_traces: retain at most this many most-recent traces.
    """

    def __init__(self, max_traces: int = 10_000):
        if max_traces < 1:
            raise ValueError(f"max_traces must be >= 1, got {max_traces}")
        self._ids = itertools.count(1)
        self.traces: deque[PipelineTrace] = deque(maxlen=max_traces)

    def start_trace(self, kind: str, t: int,
                    **attributes: object) -> PipelineTrace:
        """Open a new trace at simulated time ``t``."""
        trace = PipelineTrace(trace_id=next(self._ids), kind=kind, start=t,
                              attributes=dict(attributes))
        self.traces.append(trace)
        return trace

    def find(self, trace_id: int) -> Optional[PipelineTrace]:
        for trace in self.traces:
            if trace.trace_id == trace_id:
                return trace
        return None

    def by_attribute(self, **attributes: object) -> list[PipelineTrace]:
        """Traces whose attributes include every given (key, value) pair."""
        return [t for t in self.traces
                if all(t.attributes.get(k) == v
                       for k, v in attributes.items())]

    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON line per trace; returns the number written."""
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                return self._write(handle, self.traces)
        return self._write(destination, self.traces)

    @staticmethod
    def _write(handle: IO[str], traces: Iterable[PipelineTrace]) -> int:
        written = 0
        for trace in traces:
            handle.write(json.dumps(trace.to_dict(), sort_keys=True,
                                    separators=(",", ":"), default=str))
            handle.write("\n")
            written += 1
        return written
