"""Simulated hardware performance-counter substrate.

The production CPI2 reads ``CPU_CLK_UNHALTED.REF`` and
``INSTRUCTIONS_RETIRED`` through perf_event in *counting* mode, per cgroup,
with counters saved/restored on context switches between cgroups.  We cannot
assume real counters here, so this package provides the same interface backed
by the cluster simulator: per-cgroup monotonically increasing counter sets, a
bank per machine with context-switch overhead accounting, and the sampling
daemon that turns counter deltas into the paper's once-a-minute, 10-second
CPI samples.
"""

from repro.perf.events import CounterEvent
from repro.perf.counters import (CounterSet, CounterBank,
                                 CONTEXT_SWITCH_COST_SECONDS, EVENT_ORDER)
from repro.perf.profiling import StageTimers, profile_call
from repro.perf.sampler import CpiSampler, SamplerConfig

__all__ = [
    "CounterEvent",
    "CounterSet",
    "CounterBank",
    "CONTEXT_SWITCH_COST_SECONDS",
    "EVENT_ORDER",
    "CpiSampler",
    "SamplerConfig",
    "StageTimers",
    "profile_call",
]
