"""Per-cgroup counting-mode performance counters.

Per the paper (Section 3.1): counters are "counted simultaneously, and
collected on a per-cgroup basis.  (Per-CPU counting wouldn't work because
several unrelated tasks frequently timeshare a single CPU.  Per-thread
counting would require too much memory ...)  The counters are saved/restored
when a context switch changes to a thread from a different cgroup, which
costs a couple of microseconds.  Total CPU overhead is less than 0.1%."

:class:`CounterSet` is one cgroup's monotonically increasing counters;
:class:`CounterBank` is a machine's collection of them plus the
context-switch save/restore overhead ledger that lets the overhead benchmark
verify the <0.1% claim against the simulated context-switch rate.

Storage is a small numpy array per cgroup (one slot per
:class:`~repro.perf.events.CounterEvent`), so the simulator's vectorized
tick engine can burn a whole machine-tick's worth of counter increments with
:meth:`CounterBank.burn_batch` — one validation pass over the event matrix
and one array add per cgroup, instead of five validated scalar adds per
task per second.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.perf.events import CounterEvent

__all__ = ["CounterSet", "CounterBank", "CONTEXT_SWITCH_COST_SECONDS",
           "EVENT_ORDER", "delta_matrix"]

#: Cost of one counter save/restore at a cross-cgroup context switch — the
#: paper says "a couple of microseconds".
CONTEXT_SWITCH_COST_SECONDS = 2e-6

#: The fixed event layout of every counter array (enum definition order).
EVENT_ORDER: tuple[CounterEvent, ...] = tuple(CounterEvent)

_EVENT_INDEX: dict[CounterEvent, int] = {e: i for i, e in enumerate(EVENT_ORDER)}


class CounterSet:
    """Monotonic counters for one cgroup.

    Values only increase; sampling works by differencing two snapshots, which
    is exactly how perf_event counting mode is consumed.  Backed by one
    float64 array in :data:`EVENT_ORDER` layout.
    """

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values = np.zeros(len(EVENT_ORDER), dtype=np.float64)

    def add(self, event: CounterEvent, amount: float) -> None:
        """Accumulate ``amount`` onto ``event``.

        Raises:
            ValueError: if ``amount`` is negative (counters are monotonic)
                or non-finite (one NaN would poison every later delta and
                every CPI computed from it).
        """
        if not math.isfinite(amount):
            raise ValueError(
                f"counter increments must be finite, got {amount}")
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._values[_EVENT_INDEX[event]] += amount

    def add_array(self, amounts: np.ndarray) -> None:
        """Accumulate a full event vector (``EVENT_ORDER`` layout) at once.

        The caller is responsible for validation — this is the pre-validated
        inner loop of :meth:`CounterBank.burn_batch`.
        """
        self._values += amounts

    def read(self, event: CounterEvent) -> float:
        """Current cumulative value of ``event``."""
        return float(self._values[_EVENT_INDEX[event]])

    def snapshot(self) -> Mapping[CounterEvent, float]:
        """An immutable copy of all counter values, for later differencing."""
        return dict(zip(EVENT_ORDER, self._values.tolist()))

    def delta_since(self, snapshot: Mapping[CounterEvent, float]
                    ) -> Mapping[CounterEvent, float]:
        """Per-event increase since ``snapshot`` was taken.

        Raises:
            ValueError: if any counter appears to have gone backwards, which
                would indicate a bookkeeping bug.
        """
        deltas: dict[CounterEvent, float] = {}
        values = self._values.tolist()
        for event, now in zip(EVENT_ORDER, values):
            before = snapshot.get(event, 0.0)
            if now < before:
                raise ValueError(
                    f"counter {event.value} went backwards: {before} -> {now}")
            deltas[event] = now - before
        return deltas


def delta_matrix(now: np.ndarray, before: np.ndarray) -> np.ndarray:
    """Per-event increases for many cgroups at once.

    The bulk form of :meth:`CounterSet.delta_since` over the
    :meth:`CounterBank.matrix_view` layout: ``before`` is an earlier copy
    of the matrix (rows aligned to the same cgroups), and the result is the
    elementwise increase — bit-identical to differencing each cgroup's
    snapshot dict, since both are single float64 subtractions per slot.

    Raises:
        ValueError: if any counter went backwards, with the same message
            ``delta_since`` raises for the first offender in row-major
            (cgroup-then-:data:`EVENT_ORDER`) order — the order a scalar
            sweep over the same rows would trip in.
    """
    if now.shape != before.shape:
        raise ValueError(
            f"snapshot shape {before.shape} does not match {now.shape}")
    regressed = np.less(now, before)
    if regressed.any():
        r, c = (int(i) for i in np.argwhere(regressed)[0])
        raise ValueError(
            f"counter {EVENT_ORDER[c].value} went backwards: "
            f"{float(before[r, c])} -> {float(now[r, c])}")
    return now - before


class CounterBank:
    """All cgroup counter sets on one machine, plus overhead accounting."""

    def __init__(self) -> None:
        self._sets: dict[str, CounterSet] = {}
        self._context_switches = 0
        self._overhead_seconds = 0.0

    def counters_for(self, cgroup_name: str) -> CounterSet:
        """The counter set for ``cgroup_name``, created on first use."""
        counters = self._sets.get(cgroup_name)
        if counters is None:
            counters = CounterSet()
            self._sets[cgroup_name] = counters
        return counters

    def drop(self, cgroup_name: str) -> None:
        """Forget a departed cgroup's counters (no-op if unknown)."""
        self._sets.pop(cgroup_name, None)

    def known_cgroups(self) -> list[str]:
        """Names of cgroups with live counter sets."""
        return sorted(self._sets)

    def burn_batch(self, cgroup_names: Sequence[str],
                   events: np.ndarray) -> None:
        """Accumulate one machine-tick of counters for many cgroups at once.

        Args:
            cgroup_names: one cgroup per row of ``events``.
            events: array of shape ``(len(cgroup_names), len(EVENT_ORDER))``
                in :data:`EVENT_ORDER` column layout.

        Raises:
            ValueError: if any increment is negative or non-finite (same
                contract as :meth:`CounterSet.add`, enforced in one pass
                over the whole matrix), or on a shape mismatch.
        """
        if events.shape != (len(cgroup_names), len(EVENT_ORDER)):
            raise ValueError(
                f"event matrix shape {events.shape} does not match "
                f"({len(cgroup_names)}, {len(EVENT_ORDER)})")
        if not np.isfinite(events).all():
            raise ValueError("counter increments must be finite")
        if events.size and float(events.min()) < 0:
            raise ValueError("counter increments must be >= 0")
        sets = self._sets
        for i, name in enumerate(cgroup_names):
            counters = sets.get(name)
            if counters is None:
                counters = CounterSet()
                sets[name] = counters
            counters._values += events[i]

    def matrix_view(self, cgroup_names: Sequence[str]) -> np.ndarray:
        """Re-back the named counter sets with rows of one shared matrix.

        Returns a ``(len(cgroup_names), len(EVENT_ORDER))`` float64 matrix
        whose row ``i`` *is* the storage of ``cgroup_names[i]``'s
        :class:`CounterSet` (current values preserved; sets are created on
        first use).  A whole machine-tick of increments then burns as a
        single ``matrix += events`` (:meth:`burn_matrix`) while every
        existing reader — :meth:`CounterSet.read`, snapshots, deltas — keeps
        working, since they all go through the set's backing array.

        The view stays valid until the next :meth:`matrix_view` call for the
        same names; callers re-request it whenever their task set changes.
        """
        matrix = np.empty((len(cgroup_names), len(EVENT_ORDER)),
                          dtype=np.float64)
        for i, name in enumerate(cgroup_names):
            counters = self.counters_for(name)
            matrix[i] = counters._values
            counters._values = matrix[i]
        return matrix

    def burn_matrix(self, matrix: np.ndarray, events: np.ndarray) -> None:
        """Accumulate a tick's event matrix onto a :meth:`matrix_view` matrix.

        Same validation contract as :meth:`CounterSet.add`, enforced with
        two reductions over the whole matrix (``min`` flags negatives and
        NaN, ``max`` flags +inf).
        """
        if events.shape != matrix.shape:
            raise ValueError(
                f"event matrix shape {events.shape} does not match "
                f"{matrix.shape}")
        if events.size:
            lo = float(events.min())
            if not lo >= 0.0:
                raise ValueError(
                    f"counter increments must be finite and >= 0, got {lo}")
            if float(events.max()) == math.inf:
                raise ValueError("counter increments must be finite")
        matrix += events

    # -- context-switch overhead ledger --------------------------------------

    def record_context_switches(self, count: int) -> None:
        """Charge ``count`` cross-cgroup switches' worth of save/restore cost."""
        if count < 0:
            raise ValueError(f"context switch count must be >= 0, got {count}")
        self._context_switches += count
        self._overhead_seconds += count * CONTEXT_SWITCH_COST_SECONDS

    @property
    def context_switches(self) -> int:
        """Total cross-cgroup context switches recorded."""
        return self._context_switches

    @property
    def overhead_seconds(self) -> float:
        """Cumulative CPU seconds spent saving/restoring counters."""
        return self._overhead_seconds

    def overhead_fraction(self, total_cpu_seconds: float) -> float:
        """Monitoring overhead as a fraction of ``total_cpu_seconds`` burned.

        The paper's claim is that this stays below 0.1%.
        """
        if total_cpu_seconds <= 0:
            raise ValueError(
                f"total_cpu_seconds must be positive, got {total_cpu_seconds}")
        return self._overhead_seconds / total_cpu_seconds
