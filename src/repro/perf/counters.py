"""Per-cgroup counting-mode performance counters.

Per the paper (Section 3.1): counters are "counted simultaneously, and
collected on a per-cgroup basis.  (Per-CPU counting wouldn't work because
several unrelated tasks frequently timeshare a single CPU.  Per-thread
counting would require too much memory ...)  The counters are saved/restored
when a context switch changes to a thread from a different cgroup, which
costs a couple of microseconds.  Total CPU overhead is less than 0.1%."

:class:`CounterSet` is one cgroup's monotonically increasing counters;
:class:`CounterBank` is a machine's collection of them plus the
context-switch save/restore overhead ledger that lets the overhead benchmark
verify the <0.1% claim against the simulated context-switch rate.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.perf.events import CounterEvent

__all__ = ["CounterSet", "CounterBank", "CONTEXT_SWITCH_COST_SECONDS"]

#: Cost of one counter save/restore at a cross-cgroup context switch — the
#: paper says "a couple of microseconds".
CONTEXT_SWITCH_COST_SECONDS = 2e-6


class CounterSet:
    """Monotonic counters for one cgroup.

    Values only increase; sampling works by differencing two snapshots, which
    is exactly how perf_event counting mode is consumed.
    """

    def __init__(self) -> None:
        self._values: dict[CounterEvent, float] = {e: 0.0 for e in CounterEvent}

    def add(self, event: CounterEvent, amount: float) -> None:
        """Accumulate ``amount`` onto ``event``.

        Raises:
            ValueError: if ``amount`` is negative (counters are monotonic)
                or non-finite (one NaN would poison every later delta and
                every CPI computed from it).
        """
        if not math.isfinite(amount):
            raise ValueError(
                f"counter increments must be finite, got {amount}")
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self._values[event] += amount

    def read(self, event: CounterEvent) -> float:
        """Current cumulative value of ``event``."""
        return self._values[event]

    def snapshot(self) -> Mapping[CounterEvent, float]:
        """An immutable copy of all counter values, for later differencing."""
        return dict(self._values)

    def delta_since(self, snapshot: Mapping[CounterEvent, float]
                    ) -> Mapping[CounterEvent, float]:
        """Per-event increase since ``snapshot`` was taken.

        Raises:
            ValueError: if any counter appears to have gone backwards, which
                would indicate a bookkeeping bug.
        """
        deltas: dict[CounterEvent, float] = {}
        for event in CounterEvent:
            before = snapshot.get(event, 0.0)
            now = self._values[event]
            if now < before:
                raise ValueError(
                    f"counter {event.value} went backwards: {before} -> {now}")
            deltas[event] = now - before
        return deltas


class CounterBank:
    """All cgroup counter sets on one machine, plus overhead accounting."""

    def __init__(self) -> None:
        self._sets: dict[str, CounterSet] = {}
        self._context_switches = 0
        self._overhead_seconds = 0.0

    def counters_for(self, cgroup_name: str) -> CounterSet:
        """The counter set for ``cgroup_name``, created on first use."""
        counters = self._sets.get(cgroup_name)
        if counters is None:
            counters = CounterSet()
            self._sets[cgroup_name] = counters
        return counters

    def drop(self, cgroup_name: str) -> None:
        """Forget a departed cgroup's counters (no-op if unknown)."""
        self._sets.pop(cgroup_name, None)

    def known_cgroups(self) -> list[str]:
        """Names of cgroups with live counter sets."""
        return sorted(self._sets)

    # -- context-switch overhead ledger --------------------------------------

    def record_context_switches(self, count: int) -> None:
        """Charge ``count`` cross-cgroup switches' worth of save/restore cost."""
        if count < 0:
            raise ValueError(f"context switch count must be >= 0, got {count}")
        self._context_switches += count
        self._overhead_seconds += count * CONTEXT_SWITCH_COST_SECONDS

    @property
    def context_switches(self) -> int:
        """Total cross-cgroup context switches recorded."""
        return self._context_switches

    @property
    def overhead_seconds(self) -> float:
        """Cumulative CPU seconds spent saving/restoring counters."""
        return self._overhead_seconds

    def overhead_fraction(self, total_cpu_seconds: float) -> float:
        """Monitoring overhead as a fraction of ``total_cpu_seconds`` burned.

        The paper's claim is that this stays below 0.1%.
        """
        if total_cpu_seconds <= 0:
            raise ValueError(
                f"total_cpu_seconds must be positive, got {total_cpu_seconds}")
        return self._overhead_seconds / total_cpu_seconds
