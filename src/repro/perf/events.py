"""Hardware counter event definitions.

The paper's CPI is "the value of the CPU_CLK_UNHALTED.REF counter divided by
the INSTRUCTIONS_RETIRED counter" (Section 3.1); Section 7.2 additionally
examines L2/L3 misses-per-instruction and memory-requests-per-cycle, finding
L3 misses/instruction the best-correlated with CPI improvement.
"""

from __future__ import annotations

import enum

__all__ = ["CounterEvent"]


class CounterEvent(enum.Enum):
    """Events every simulated counter set tracks."""

    #: Reference (unhalted) cycles — the numerator of CPI.
    CPU_CLK_UNHALTED_REF = "cpu_clk_unhalted.ref"
    #: Retired instructions — the denominator of CPI.
    INSTRUCTIONS_RETIRED = "instructions_retired"
    #: L2 cache misses.
    L2_MISSES = "l2_misses"
    #: Last-level (L3) cache misses.
    L3_MISSES = "l3_misses"
    #: Memory controller requests.
    MEMORY_REQUESTS = "memory_requests"
