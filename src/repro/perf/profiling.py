"""Lightweight profiling for the simulation hot path.

Two tools, both dependency-free:

* :class:`StageTimers` — named accumulating wall-clock timers.  The
  benchmark harness wraps each pipeline stage (machine execution, sampling,
  analysis) in a timer so ``BENCH_throughput.json`` can carry a per-stage
  breakdown, and anything else that wants a cheap "where did the time go"
  view can do the same.
* :func:`profile_call` — run a callable under :mod:`cProfile` and return
  (result, stats text).  The CLI's ``--profile`` flag uses it to profile a
  whole demo/experiment run.

See ``docs/performance.md`` for how these fit the perf workflow.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Optional

__all__ = ["StageTimers", "profile_call"]


class StageTimers:
    """Accumulating wall-clock timers keyed by stage name.

    Usage::

        timers = StageTimers()
        with timers.stage("machines"):
            ...  # hot work
        timers.report()   # {"machines": {"seconds": ..., "calls": ...}}

    Overhead is two ``perf_counter`` calls per ``stage`` block, so wrapping
    per-tick stages of a benchmark run is fine; wrapping per-task work is
    not what this is for.
    """

    def __init__(self) -> None:
        self._seconds: dict[str, float] = {}
        self._calls: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one entry into stage ``name`` (re-entrant per name is fine)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed
            self._calls[name] = self._calls.get(name, 0) + 1

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold externally measured time into stage ``name``."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if calls < 0:
            raise ValueError(f"calls must be >= 0, got {calls}")
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._calls[name] = self._calls.get(name, 0) + calls

    def seconds(self, name: str) -> float:
        """Accumulated wall seconds in stage ``name`` (0.0 if never entered)."""
        return self._seconds.get(name, 0.0)

    def total_seconds(self) -> float:
        """Sum across all stages."""
        return sum(self._seconds.values())

    def report(self) -> dict[str, dict[str, float]]:
        """All stages as ``{name: {"seconds": ..., "calls": ...}}``,
        ordered by descending time — ready for JSON serialization."""
        return {
            name: {"seconds": self._seconds[name],
                   "calls": self._calls[name]}
            for name in sorted(self._seconds,
                               key=lambda n: -self._seconds[n])
        }

    def render(self) -> str:
        """A small human-readable table of the report."""
        report = self.report()
        if not report:
            return "(no stages timed)"
        width = max(len(name) for name in report)
        total = self.total_seconds()
        lines = []
        for name, row in report.items():
            share = row["seconds"] / total if total > 0 else 0.0
            lines.append(f"{name:<{width}}  {row['seconds']:10.4f}s "
                         f"{share:6.1%}  ({int(row['calls'])} calls)")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every stage."""
        self._seconds.clear()
        self._calls.clear()


def profile_call(fn: Callable[[], Any], sort: str = "cumulative",
                 limit: int = 30,
                 stats_path: Optional[str] = None) -> tuple[Any, str]:
    """Run ``fn`` under cProfile.

    Args:
        fn: zero-argument callable to profile.
        sort: pstats sort key for the text report.
        limit: number of rows in the text report.
        stats_path: optional path to dump the raw pstats data for later
            inspection with ``python -m pstats``.

    Returns:
        ``(fn's return value, formatted stats text)``.
    """
    if limit < 1:
        raise ValueError(f"limit must be >= 1, got {limit}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn()
    finally:
        profiler.disable()
    if stats_path is not None:
        profiler.dump_stats(stats_path)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    return result, buffer.getvalue()
