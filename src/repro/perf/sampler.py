"""The per-machine CPI sampling daemon.

"The CPI data is sampled periodically by a system daemon using the perf_event
tool in counting mode ... We gather CPI data for a 10 second period once a
minute; we picked this fraction to give other measurement tools time to use
the counters."  (Section 3.1.)

:class:`CpiSampler` is driven by the simulation clock: at the start of each
minute it snapshots every resident cgroup's counters; 10 seconds later it
differences them and emits one :class:`~repro.core.records.CpiSample` per
task that executed instructions during the window.

Two engines implement the window close:

* ``vector`` (default) — snapshots are one array copy of the machine's
  index-aligned counter matrix, window usage is one slice-sum over the
  shared per-task usage-ring matrix, and deltas / validity masks / CPI run
  as full-width ufunc passes that emit a
  :class:`~repro.core.samplebatch.SampleColumns` record directly (wrapped
  in a lazy :class:`~repro.core.samplebatch.WindowSamples`) — no
  ``CpiSample`` objects exist on the clean path.
* ``scalar`` — the original per-task loop, kept verbatim as the
  never-optimized golden reference.

Select per sampler via ``CpiSampler(engine=...)`` or process-wide with
``REPRO_SAMPLER_ENGINE=vector|scalar``.  ``tests/test_sampler_plane.py``
pins byte-identical samples, incidents, counters, and discard events
between the two; the invariants that make this possible are documented in
``docs/performance.md``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from repro.records import MICROSECONDS_PER_SECOND, CpiSample, SpecKey
from repro.perf.events import CounterEvent
from repro.perf.counters import EVENT_ORDER, delta_matrix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine
    from repro.core.samplebatch import SampleColumns, WindowSamples
    from repro.obs import Observability

__all__ = ["SamplerConfig", "CpiSampler", "SAMPLER_ENGINES",
           "SAMPLER_ENGINE_ENV", "default_sampler_engine"]

#: Valid sampler-engine names.
SAMPLER_ENGINES = ("vector", "scalar")

#: Environment variable selecting the process-wide sampler engine.
SAMPLER_ENGINE_ENV = "REPRO_SAMPLER_ENGINE"

#: Fixed column positions of the two events the CPI formula reads.
_CYCLES_COL = EVENT_ORDER.index(CounterEvent.CPU_CLK_UNHALTED_REF)
_INSTRUCTIONS_COL = EVENT_ORDER.index(CounterEvent.INSTRUCTIONS_RETIRED)

_EMPTY_SNAPSHOT = np.empty((0, len(EVENT_ORDER)))


def default_sampler_engine() -> str:
    """The process-wide engine choice: ``REPRO_SAMPLER_ENGINE`` or ``vector``."""
    engine = os.environ.get(SAMPLER_ENGINE_ENV, "vector")
    if engine not in SAMPLER_ENGINES:
        raise ValueError(
            f"{SAMPLER_ENGINE_ENV} must be one of {SAMPLER_ENGINES}, "
            f"got {engine!r}")
    return engine


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling duty cycle (paper Table 2 defaults).

    Attributes:
        duration_seconds: counter-collection window length (10 s).
        period_seconds: one window starts every this many seconds (60 s).
    """

    duration_seconds: int = 10
    period_seconds: int = 60

    def __post_init__(self) -> None:
        if self.duration_seconds < 1:
            raise ValueError(
                f"duration_seconds must be >= 1, got {self.duration_seconds}")
        if self.period_seconds < self.duration_seconds:
            raise ValueError(
                "period_seconds must be >= duration_seconds "
                f"({self.period_seconds} < {self.duration_seconds})")


class CpiSampler:
    """Samples one machine's per-cgroup counters on the paper's duty cycle.

    Call :meth:`tick` once per simulated second, *after* the machine has
    executed that second.  A window opened at time ``t0`` snapshots the
    counters as of the end of second ``t0`` and closes ``duration`` seconds
    later, so its deltas cover exactly seconds ``t0+1 .. t0+duration``.
    """

    def __init__(self, machine: "Machine", config: SamplerConfig | None = None,
                 obs: "Optional[Observability]" = None,
                 engine: str | None = None):
        self.machine = machine
        self.config = config or SamplerConfig()
        #: Telemetry handle; the simulation injects its own when attached.
        self.obs = obs
        engine = engine if engine is not None else default_sampler_engine()
        if engine not in SAMPLER_ENGINES:
            raise ValueError(
                f"engine must be one of {SAMPLER_ENGINES}, got {engine!r}")
        self.engine = engine
        self._window_start: int | None = None
        self._snapshots: dict[str, Mapping[CounterEvent, float]] = {}
        #: Vector-engine snapshot: (cgroup-name tuple, counter-matrix copy).
        self._snapshot_columns: tuple[tuple[str, ...], np.ndarray] | None = None
        # Per-reason discard-counter handles, so a storm of bad windows
        # under heavy chaos doesn't pay a labelled registry lookup per
        # discard.  Keyed by the obs identity the cache was built against:
        # the simulation injects obs after construction (set_observability),
        # and tests swap facades freely.
        self._discard_counters: dict[str, object] = {}
        self._discard_obs: "Optional[Observability]" = None
        #: Per-table emission cache: (table, tasknames, jobnames) — the
        #: name properties chase task -> spec attribute chains, and the
        #: table object is stable between placement changes.
        self._names_cache: tuple = (None, (), ())

    def _discard_window(self, taskname: str, reason: str) -> None:
        """Count a window that produced no sample — bad windows must be
        visible at the source, not discovered downstream."""
        obs = self.obs
        if obs is None:
            return
        if obs is not self._discard_obs:
            self._discard_counters = {}
            self._discard_obs = obs
        counter = self._discard_counters.get(reason)
        if counter is None:
            counter = obs.metrics.counter("sampler_windows_discarded",
                                          reason=reason)
            self._discard_counters[reason] = counter
        counter.inc()
        obs.events.event("sampler_window_discarded", reason=reason,
                         machine=self.machine.name, task=taskname)

    def wants_tick(self, t: int) -> bool:
        """Whether :meth:`tick` would do any work at second ``t``.

        The duty cycle is 10s-on/50s-off: a window closes when it has run
        ``duration`` seconds and a new one opens on period boundaries, so
        for every other second ``tick`` is a no-op.  The simulation's run
        loop uses this to skip those no-op calls entirely.  (The two
        conditions cannot overlap in a skipped second: while a window is
        open, ``t - start`` is in ``(0, duration)`` and therefore ``t`` is
        never on a period boundary, since ``period >= duration``.)
        """
        if self._window_start is not None:
            return t - self._window_start >= self.config.duration_seconds
        return t % self.config.period_seconds == 0

    def tick(self, t: int) -> "Sequence[CpiSample]":
        """Advance to second ``t``; returns the window's samples if one closed.

        The scalar engine returns a plain list; the vector engine returns a
        :class:`~repro.core.samplebatch.WindowSamples` (columns-first, lazy
        object materialization).  Both are sequences of field-identical
        :class:`CpiSample` values.
        """
        samples: "Sequence[CpiSample]" = []
        if (self._window_start is not None
                and t - self._window_start >= self.config.duration_seconds):
            samples = self._close_window(end=t)
            self._window_start = None
            self._snapshots = {}
            self._snapshot_columns = None
        if self._window_start is None and t % self.config.period_seconds == 0:
            self._open_window(t)
        return samples

    def _open_window(self, t: int) -> None:
        self._window_start = t
        if self.engine == "vector":
            # One memcpy of the index-aligned counter matrix instead of one
            # dict per cgroup.  The matrix rows ARE the cgroups' live
            # counter storage (CounterBank.matrix_view), so the copy is the
            # same values a per-cgroup snapshot() sweep would record.
            table = self.machine._task_table()
            matrix = table.counter_matrix
            self._snapshot_columns = (
                table.cgroup_names,
                matrix.copy() if matrix is not None else _EMPTY_SNAPSHOT)
            return
        self._snapshots = {
            name: self.machine.counters.counters_for(name).snapshot()
            for name in self.machine.resident_cgroup_names()
        }

    def _close_window(self, end: int) -> "Sequence[CpiSample]":
        if self.engine == "vector":
            return self._close_window_vector(end)
        assert self._window_start is not None
        start = self._window_start
        samples: list[CpiSample] = []
        for task in self.machine.resident_tasks():
            snapshot = self._snapshots.get(task.cgroup.name)
            if snapshot is None:
                continue  # task arrived mid-window; skip it this round
            deltas = self.machine.counters.counters_for(
                task.cgroup.name).delta_since(snapshot)
            cycles = deltas[CounterEvent.CPU_CLK_UNHALTED_REF]
            instructions = deltas[CounterEvent.INSTRUCTIONS_RETIRED]
            if not (math.isfinite(cycles) and math.isfinite(instructions)):
                # A corrupted counter read; CPI would be NaN/inf and poison
                # every consumer downstream.  Guard at the source.
                self._discard_window(task.name, "non_finite_counters")
                continue
            if instructions <= 0.0:
                # No retired instructions -> CPI undefined; no sample.
                self._discard_window(task.name, "zero_instructions")
                continue
            usage = task.cgroup.usage_between(start + 1, end + 1)
            if not math.isfinite(usage):
                self._discard_window(task.name, "non_finite_usage")
                continue
            samples.append(CpiSample(
                jobname=task.job.name,
                platforminfo=self.machine.platform.name,
                timestamp=end * MICROSECONDS_PER_SECOND,
                cpu_usage=usage,
                cpi=cycles / instructions,
                taskname=task.name,
            ))
        return samples

    # -- the vectorized window close -----------------------------------------
    #
    # Bit-identical to the scalar loop by construction: same task order
    # (the task table is name-sorted, exactly resident_tasks() order), the
    # same float64 subtraction per counter slot, the same IEEE division for
    # CPI, and a window usage summed in the same time order the deque scan
    # adds in (absent seconds contribute + 0.0, and usage is never -0.0,
    # so x + 0.0 == x bitwise).  Discard reasons apply in the same
    # precedence and emit events in the same task order.

    def _close_window_vector(self, end: int) -> "WindowSamples":
        # Deferred import: repro.core pulls in the agent, which imports the
        # machine, which imports this module.
        from repro.core.samplebatch import SampleColumns, WindowSamples

        assert self._window_start is not None
        assert self._snapshot_columns is not None
        start = self._window_start
        machine = self.machine
        snap_names, snap = self._snapshot_columns
        table = machine._task_table()
        names = table.cgroup_names
        if not names:
            return WindowSamples(SampleColumns.empty())
        cached_table, tasknames_all, jobnames_all = self._names_cache
        if cached_table is not table:
            tasknames_all = tuple(task.name for task in table.tasks)
            jobnames_all = tuple(task.job.name for task in table.tasks)
            self._names_cache = (table, tasknames_all, jobnames_all)
        if names == snap_names:
            # The common window: no placement change, rows already aligned.
            current = table.counter_matrix
            snapshot = snap
            row_tasknames = tasknames_all
            row_jobnames = jobnames_all
            cgroups = table.cgroups
            matrix_rows: Optional[np.ndarray] = None
        else:
            # Tasks arrived (no snapshot row: skipped, like the scalar
            # engine) and/or departed (snapshot row no longer resident:
            # simply not iterated) mid-window; align by cgroup name.
            index = {name: j for j, name in enumerate(snap_names)}
            keep = [(i, index[name]) for i, name in enumerate(names)
                    if name in index]
            if not keep:
                return WindowSamples(SampleColumns.empty())
            matrix_rows = np.asarray([i for i, _ in keep], dtype=np.intp)
            current = table.counter_matrix[matrix_rows]
            snapshot = snap[np.asarray([j for _, j in keep], dtype=np.intp)]
            row_tasknames = tuple(tasknames_all[i] for i, _ in keep)
            row_jobnames = tuple(jobnames_all[i] for i, _ in keep)
            cgroups = tuple(table.cgroups[i] for i, _ in keep)
        deltas = delta_matrix(current, snapshot)
        cycles = deltas[:, _CYCLES_COL]
        instructions = deltas[:, _INSTRUCTIONS_COL]
        finite = np.isfinite(cycles) & np.isfinite(instructions)
        positive = instructions > 0.0
        usage = self._window_usage(table, matrix_rows, cgroups, start, end)
        ok = finite & positive & np.isfinite(usage)
        if not ok.all():
            # Discards interleave nothing but their own counters/events, so
            # replaying them row-by-row in task order reproduces exactly
            # the scalar engine's event stream.  Precedence per row matches
            # the scalar guard order: counters, then instructions, then
            # usage.
            for j in np.flatnonzero(~ok).tolist():
                if not finite[j]:
                    self._discard_window(row_tasknames[j],
                                         "non_finite_counters")
                elif not positive[j]:
                    self._discard_window(row_tasknames[j],
                                         "zero_instructions")
                else:
                    self._discard_window(row_tasknames[j],
                                         "non_finite_usage")
        good = np.flatnonzero(ok)
        n = len(good)
        # Emit SampleColumns directly — the same tables from_samples would
        # build over the equivalent sample list: keys in first-appearance
        # order (platform is constant per machine, so keys are distinct
        # jobnames), tasknames unique per machine so the task table is the
        # emission order itself.
        platform = machine.platform.name
        key_index: dict[str, int] = {}
        keys: list[SpecKey] = []
        codes: list[int] = []
        tasknames = []
        for j in good.tolist():
            jobname = row_jobnames[j]
            code = key_index.get(jobname)
            if code is None:
                code = len(keys)
                key_index[jobname] = code
                keys.append(SpecKey(jobname, platform))
            codes.append(code)
            tasknames.append(row_tasknames[j])
        key_code = np.asarray(codes, dtype=np.int32)
        columns = SampleColumns(
            keys, tasknames, key_code,
            np.arange(n, dtype=np.int32),
            np.full(n, end * MICROSECONDS_PER_SECOND, dtype=np.int64),
            usage[good],
            np.divide(cycles[good], instructions[good]))
        return WindowSamples(columns)

    def _window_usage(self, table, matrix_rows: Optional[np.ndarray],
                      cgroups, start: int, end: int) -> np.ndarray:
        """Mean CPU-sec/sec over ``[start+1, end]`` for every candidate row.

        One gather + slice-sum over the shared usage-ring matrix for every
        row whose ring is live and charged through ``end``; anything else
        (ring stood down, history replayed ad hoc by a test) falls back to
        the deque-scanning :meth:`~repro.cluster.cgroup.Cgroup.usage_between`
        per row.  The ledger is flushed once up front so ring state and
        deque state agree.  Computing usage for rows the scalar engine
        would have discarded first is unobservable: the read is pure once
        the ledger is flushed.
        """
        from repro.cluster.cgroup import USAGE_HISTORY_SECONDS

        span = end - start
        lo, hi = start + 1, end + 1
        dc = table.demand_columns
        if dc is not None:
            dc.flush_charges()
        if span > USAGE_HISTORY_SECONDS:
            return np.array([cg.usage_between(lo, hi) for cg in cgroups])
        matrix, rows_ok = table.usage_rings()
        if matrix_rows is not None:
            matrix = matrix[matrix_rows]
            rows_ok = rows_ok[matrix_rows]
        window = matrix[:, np.arange(lo, hi) % USAGE_HISTORY_SECONDS]
        # Sequential column adds from zero: the exact op order of the
        # bracketing fast path's deque sweep (and of the filtered scan,
        # whose missing seconds the ring holds as literal 0.0 slots).
        acc = np.zeros(len(cgroups))
        for column in range(span):
            acc += window[:, column]
        acc /= span
        for j, ok in enumerate(rows_ok.tolist()):
            # Trust a row only if its ring backs the matrix and charges ran
            # consecutively through the window's last second.
            cg = cgroups[j]
            if not (ok and cg._ring_ok and cg._ring_last == end):
                acc[j] = cg.usage_between(lo, hi)
        return acc
