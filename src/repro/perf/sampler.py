"""The per-machine CPI sampling daemon.

"The CPI data is sampled periodically by a system daemon using the perf_event
tool in counting mode ... We gather CPI data for a 10 second period once a
minute; we picked this fraction to give other measurement tools time to use
the counters."  (Section 3.1.)

:class:`CpiSampler` is driven by the simulation clock: at the start of each
minute it snapshots every resident cgroup's counters; 10 seconds later it
differences them and emits one :class:`~repro.core.records.CpiSample` per
task that executed instructions during the window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.records import MICROSECONDS_PER_SECOND, CpiSample
from repro.perf.events import CounterEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine
    from repro.obs import Observability

__all__ = ["SamplerConfig", "CpiSampler"]


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling duty cycle (paper Table 2 defaults).

    Attributes:
        duration_seconds: counter-collection window length (10 s).
        period_seconds: one window starts every this many seconds (60 s).
    """

    duration_seconds: int = 10
    period_seconds: int = 60

    def __post_init__(self) -> None:
        if self.duration_seconds < 1:
            raise ValueError(
                f"duration_seconds must be >= 1, got {self.duration_seconds}")
        if self.period_seconds < self.duration_seconds:
            raise ValueError(
                "period_seconds must be >= duration_seconds "
                f"({self.period_seconds} < {self.duration_seconds})")


class CpiSampler:
    """Samples one machine's per-cgroup counters on the paper's duty cycle.

    Call :meth:`tick` once per simulated second, *after* the machine has
    executed that second.  A window opened at time ``t0`` snapshots the
    counters as of the end of second ``t0`` and closes ``duration`` seconds
    later, so its deltas cover exactly seconds ``t0+1 .. t0+duration``.
    """

    def __init__(self, machine: "Machine", config: SamplerConfig | None = None,
                 obs: "Optional[Observability]" = None):
        self.machine = machine
        self.config = config or SamplerConfig()
        #: Telemetry handle; the simulation injects its own when attached.
        self.obs = obs
        self._window_start: int | None = None
        self._snapshots: dict[str, Mapping[CounterEvent, float]] = {}

    def _discard_window(self, taskname: str, reason: str) -> None:
        """Count a window that produced no sample — bad windows must be
        visible at the source, not discovered downstream."""
        if self.obs is not None:
            self.obs.metrics.counter("sampler_windows_discarded",
                                     reason=reason).inc()
            self.obs.events.event("sampler_window_discarded", reason=reason,
                                  machine=self.machine.name, task=taskname)

    def wants_tick(self, t: int) -> bool:
        """Whether :meth:`tick` would do any work at second ``t``.

        The duty cycle is 10s-on/50s-off: a window closes when it has run
        ``duration`` seconds and a new one opens on period boundaries, so
        for every other second ``tick`` is a no-op.  The simulation's run
        loop uses this to skip those no-op calls entirely.  (The two
        conditions cannot overlap in a skipped second: while a window is
        open, ``t - start`` is in ``(0, duration)`` and therefore ``t`` is
        never on a period boundary, since ``period >= duration``.)
        """
        if self._window_start is not None:
            return t - self._window_start >= self.config.duration_seconds
        return t % self.config.period_seconds == 0

    def tick(self, t: int) -> list[CpiSample]:
        """Advance to second ``t``; returns the window's samples if one closed."""
        samples: list[CpiSample] = []
        if (self._window_start is not None
                and t - self._window_start >= self.config.duration_seconds):
            samples = self._close_window(end=t)
            self._window_start = None
            self._snapshots = {}
        if self._window_start is None and t % self.config.period_seconds == 0:
            self._open_window(t)
        return samples

    def _open_window(self, t: int) -> None:
        self._window_start = t
        self._snapshots = {
            name: self.machine.counters.counters_for(name).snapshot()
            for name in self.machine.resident_cgroup_names()
        }

    def _close_window(self, end: int) -> list[CpiSample]:
        assert self._window_start is not None
        start = self._window_start
        samples: list[CpiSample] = []
        for task in self.machine.resident_tasks():
            snapshot = self._snapshots.get(task.cgroup.name)
            if snapshot is None:
                continue  # task arrived mid-window; skip it this round
            deltas = self.machine.counters.counters_for(
                task.cgroup.name).delta_since(snapshot)
            cycles = deltas[CounterEvent.CPU_CLK_UNHALTED_REF]
            instructions = deltas[CounterEvent.INSTRUCTIONS_RETIRED]
            if not (math.isfinite(cycles) and math.isfinite(instructions)):
                # A corrupted counter read; CPI would be NaN/inf and poison
                # every consumer downstream.  Guard at the source.
                self._discard_window(task.name, "non_finite_counters")
                continue
            if instructions <= 0.0:
                # No retired instructions -> CPI undefined; no sample.
                self._discard_window(task.name, "zero_instructions")
                continue
            usage = task.cgroup.usage_between(start + 1, end + 1)
            if not math.isfinite(usage):
                self._discard_window(task.name, "non_finite_usage")
                continue
            samples.append(CpiSample(
                jobname=task.job.name,
                platforminfo=self.machine.platform.name,
                timestamp=end * MICROSECONDS_PER_SECOND,
                cpu_usage=usage,
                cpi=cycles / instructions,
                taskname=task.name,
            ))
        return samples
