"""The CPI2 wire records (paper Section 3.1).

Two record types cross the pipeline:

1. Per-task samples flowing *up* from machines to the aggregator::

       string jobname;
       string platforminfo;   // e.g., CPU type
       int64  timestamp;      // microsec since epoch
       float  cpu_usage;      // CPU-sec/sec
       float  cpi;

2. Per-(job, platform) specs flowing *down* from the aggregator to machines::

       string jobname;
       string platforminfo;
       int64  num_samples;
       float  cpu_usage_mean;
       float  cpi_mean;
       float  cpi_stddev;

We keep the field names and semantics verbatim (timestamps in microseconds
since the epoch, CPU usage in CPU-sec/sec).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

__all__ = ["SpecKey", "CpiSample", "CpiSpec"]

MICROSECONDS_PER_SECOND = 1_000_000


class SpecKey(NamedTuple):
    """Aggregation key: CPI2 computes specs per job x CPU platform."""

    jobname: str
    platforminfo: str


@dataclass(frozen=True)
class CpiSample:
    """One task's CPI measurement over one sampling window.

    Attributes:
        jobname: owning job (aggregation key part 1).
        platforminfo: CPU platform of the machine (aggregation key part 2).
        timestamp: microseconds since the epoch at the window's *end*.
        cpu_usage: mean CPU-sec/sec over the window.
        cpi: cycles divided by instructions over the window.
        taskname: the specific task (not in the paper's wire record, but
            needed by the local agent to track per-task outlier streaks; it
            never leaves the machine in the upward record semantics).
    """

    jobname: str
    platforminfo: str
    timestamp: int
    cpu_usage: float
    cpi: float
    taskname: str = ""

    def __post_init__(self) -> None:
        if self.cpu_usage < 0:
            raise ValueError(f"cpu_usage must be >= 0, got {self.cpu_usage}")
        if self.cpi < 0:
            raise ValueError(f"cpi must be >= 0, got {self.cpi}")

    @property
    def timestamp_seconds(self) -> float:
        """Timestamp converted to seconds since the epoch."""
        return self.timestamp / MICROSECONDS_PER_SECOND

    def key(self) -> SpecKey:
        """The (job, platform) aggregation key for this sample."""
        return SpecKey(self.jobname, self.platforminfo)


@dataclass(frozen=True)
class CpiSpec:
    """A job's learned CPI behaviour on one platform — its predicted CPI.

    "Since the CPI changes only slowly with time, the CPI spec also acts as a
    predicted CPI for the normal behavior of a job."
    """

    jobname: str
    platforminfo: str
    num_samples: int
    cpu_usage_mean: float
    cpi_mean: float
    cpi_stddev: float

    def __post_init__(self) -> None:
        if self.num_samples < 0:
            raise ValueError(f"num_samples must be >= 0, got {self.num_samples}")
        if self.cpi_mean <= 0:
            raise ValueError(f"cpi_mean must be positive, got {self.cpi_mean}")
        if self.cpi_stddev < 0:
            raise ValueError(f"cpi_stddev must be >= 0, got {self.cpi_stddev}")

    def key(self) -> SpecKey:
        """The (job, platform) key this spec describes."""
        return SpecKey(self.jobname, self.platforminfo)

    def outlier_threshold(self, num_stddevs: float = 2.0) -> float:
        """The CPI above which a sample is flagged (mean + k sigma, k=2 default)."""
        if num_stddevs < 0:
            raise ValueError(f"num_stddevs must be >= 0, got {num_stddevs}")
        return self.cpi_mean + num_stddevs * self.cpi_stddev
