"""Deterministic building blocks for tests and experiments.

Real workloads carry noise by design; experiments that assert exact numbers
need noiseless, scriptable stand-ins.  :class:`ScriptedWorkload` executes an
explicit per-second demand script, and the ``make_*`` helpers assemble
minimal jobs/machines around it with zero randomness (noise sigmas forced to
0 unless asked otherwise).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cluster.interference import InterferenceModel, ResourceProfile
from repro.cluster.job import Job, JobSpec
from repro.cluster.machine import Machine
from repro.cluster.platform import Platform, get_platform
from repro.cluster.task import PriorityBand, SchedulingClass

__all__ = [
    "ScriptedWorkload",
    "QUIET_PROFILE",
    "SENSITIVE_PROFILE",
    "NOISY_NEIGHBOR_PROFILE",
    "make_scripted_job",
    "make_quiet_machine",
]

#: Exerts almost nothing, feels almost nothing.  For inert fillers.
QUIET_PROFILE = ResourceProfile(
    cache_mib_per_cpu=0.01, membw_gbps_per_cpu=0.01,
    cache_sensitivity=0.0, membw_sensitivity=0.0, base_l3_mpki=0.5)

#: Exerts little, feels co-runner pressure strongly.  For victims.
SENSITIVE_PROFILE = ResourceProfile(
    cache_mib_per_cpu=0.5, membw_gbps_per_cpu=0.3,
    cache_sensitivity=1.0, membw_sensitivity=0.8, base_l3_mpki=2.0)

#: Exerts heavy pressure, feels little.  For antagonists.
NOISY_NEIGHBOR_PROFILE = ResourceProfile(
    cache_mib_per_cpu=8.0, membw_gbps_per_cpu=5.0,
    cache_sensitivity=0.1, membw_sensitivity=0.1, base_l3_mpki=15.0)


class ScriptedWorkload:
    """A workload that follows an explicit demand script, deterministically.

    Args:
        script: per-second demand values; behaviour past the end is governed
            by ``repeat``.
        repeat: cycle the script if True, else hold the last value.
        base_cpi: contention-free CPI.
        profile: shared-resource profile.
        threads: constant thread count.
        exit_at: optionally return ``"exited"`` from ``on_tick`` at this time.
        complete_at: optionally return ``"completed"`` at this time.
    """

    def __init__(
        self,
        script: Sequence[float],
        repeat: bool = True,
        base_cpi: float = 1.0,
        profile: ResourceProfile = QUIET_PROFILE,
        threads: int = 4,
        exit_at: Optional[int] = None,
        complete_at: Optional[int] = None,
    ):
        if not script:
            raise ValueError("script must be non-empty")
        if any(v < 0 for v in script):
            raise ValueError("script values must be >= 0")
        self.script = list(script)
        self.repeat = repeat
        self._base_cpi = base_cpi
        self._profile = profile
        self._threads = threads
        self.exit_at = exit_at
        self.complete_at = complete_at
        self.ticks: list[tuple[int, float, bool]] = []

    def cpu_demand(self, t: int) -> float:
        if t < len(self.script):
            return self.script[t]
        if self.repeat:
            return self.script[t % len(self.script)]
        return self.script[-1]

    def base_cpi(self) -> float:
        return self._base_cpi

    def resource_profile(self) -> ResourceProfile:
        return self._profile

    def thread_count(self, t: int) -> int:
        return self._threads

    def on_tick(self, t: int, granted_usage: float, capped: bool) -> Optional[str]:
        self.ticks.append((t, granted_usage, capped))
        if self.exit_at is not None and t >= self.exit_at:
            return "exited"
        if self.complete_at is not None and t >= self.complete_at:
            return "completed"
        return None


def make_scripted_job(
    name: str,
    script: Sequence[float],
    num_tasks: int = 1,
    scheduling_class: SchedulingClass = SchedulingClass.LATENCY_SENSITIVE,
    priority_band: PriorityBand = PriorityBand.PRODUCTION,
    cpu_limit: float = 4.0,
    base_cpi: float = 1.0,
    profile: ResourceProfile = QUIET_PROFILE,
    **workload_kwargs,
) -> Job:
    """A job whose every task runs the same :class:`ScriptedWorkload`."""
    spec = JobSpec(
        name=name,
        num_tasks=num_tasks,
        scheduling_class=scheduling_class,
        priority_band=priority_band,
        cpu_limit_per_task=cpu_limit,
        workload_factory=lambda index: ScriptedWorkload(
            script, base_cpi=base_cpi, profile=profile, **workload_kwargs),
    )
    return Job(spec)


def make_quiet_machine(name: str = "m0",
                       platform: Platform | None = None) -> Machine:
    """A machine with zero CPI noise, for exact-value assertions."""
    return Machine(
        name=name,
        platform=platform or get_platform("westmere-2.6"),
        interference=InterferenceModel(),
        cpi_noise_sigma=0.0,
    )
