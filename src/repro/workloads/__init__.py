"""Workload generators: the applications the paper's evaluation runs.

Production CPI2 watched real web-search tiers, MapReduce jobs, video
processing, scientific simulation and the rest of Google's mix.  These
modules provide synthetic equivalents with the properties each figure
depends on:

* latency-sensitive services whose request latency tracks their CPI
  (Figures 2-4), with diurnal load (Figure 5);
* batch jobs with measurable transaction rates (Figure 2), straggler
  handling, lame-duck mode under hard-capping (case 5) and give-up-and-exit
  behaviour (case 6);
* antagonist archetypes with large shared-cache/memory-bandwidth appetites
  and bursty CPU demand, so victims' CPI rises and falls with antagonist
  activity — the signal Section 4.2's correlation detector consumes.
"""

from repro.workloads.demand import (
    DemandFn,
    constant,
    on_off,
    phased,
    ramp,
    bimodal,
    with_noise,
    scaled,
)
from repro.workloads.diurnal import DiurnalPattern
from repro.workloads.base import SyntheticWorkload, TransactionCounter
from repro.workloads.websearch import (
    SearchTier,
    WebSearchWorkload,
    LatencyModel,
    make_websearch_job_spec,
)
from repro.workloads.batch import (
    BatchWorkload,
    MapReduceWorker,
    MapReduceCoordinator,
    LameDuckBehavior,
    make_batch_job_spec,
    make_mapreduce_job_spec,
)
from repro.workloads.antagonists import (
    AntagonistKind,
    make_antagonist_workload,
    make_antagonist_job_spec,
)
from repro.workloads.mix import ClusterMix, MixStatistics
from repro.workloads.services import (
    make_service_workload,
    make_service_job_spec,
    make_bimodal_frontend_spec,
    make_gc_service_spec,
)

__all__ = [
    "DemandFn",
    "constant",
    "on_off",
    "phased",
    "ramp",
    "bimodal",
    "with_noise",
    "scaled",
    "DiurnalPattern",
    "SyntheticWorkload",
    "TransactionCounter",
    "SearchTier",
    "WebSearchWorkload",
    "LatencyModel",
    "make_websearch_job_spec",
    "BatchWorkload",
    "MapReduceWorker",
    "MapReduceCoordinator",
    "LameDuckBehavior",
    "make_batch_job_spec",
    "make_mapreduce_job_spec",
    "AntagonistKind",
    "make_antagonist_workload",
    "make_antagonist_job_spec",
    "ClusterMix",
    "MixStatistics",
    "make_service_workload",
    "make_service_job_spec",
    "make_bimodal_frontend_spec",
    "make_gc_service_spec",
]
